"""Simulation observability: sampled gauges and end-of-run summaries.

Attach a :class:`MetricsCollector` to a :class:`~repro.sim.runner.Simulation`
before running it and it samples, at a fixed virtual-time cadence:

* per-provider busy slots (→ utilization timelines),
* the broker's pending-tasklet count and queued-replica backlog,
* which providers are up (churn visibility).

After the run, :meth:`summary` reduces the timelines to the numbers
experiments report: mean/peak utilization per provider and pool-wide,
peak backlog, availability ratios.  Sampling at a cadence (instead of
per-event tracing) keeps overhead proportional to virtual time, not to
message volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.ids import NodeId
from .runner import Simulation


@dataclass
class GaugeSeries:
    """One sampled time series."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def peak(self) -> float:
        return max(self.values) if self.values else 0.0

    def __len__(self) -> int:
        return len(self.values)


@dataclass
class ProviderSummary:
    provider_id: NodeId
    mean_utilization: float  # busy slots / capacity, averaged over samples
    peak_utilization: float
    availability: float  # fraction of samples the provider was up
    busy_seconds: float  # from the provider's own accounting
    executed: int


@dataclass
class MetricsSummary:
    """End-of-run reduction of every timeline."""

    providers: dict[NodeId, ProviderSummary]
    pool_mean_utilization: float
    peak_backlog: float
    peak_pending_tasklets: float
    samples: int
    message_type_counts: dict[str, int]

    def busiest_provider(self) -> ProviderSummary | None:
        if not self.providers:
            return None
        return max(self.providers.values(), key=lambda p: p.mean_utilization)

    def publish(self, registry) -> None:
        """Publish this summary into an obs registry (``repro_sim_*``).

        ``registry`` is a :class:`~repro.obs.metrics.MetricsRegistry`; the
        summary lands next to the live instrumentation so one Prometheus
        exposition covers both.
        """
        from ..obs.bridge import publish_summary

        publish_summary(registry, self)


class MetricsCollector:
    """Samples a simulation's state on a virtual-time cadence."""

    def __init__(self, simulation: Simulation, interval: float = 0.05):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.simulation = simulation
        self.interval = interval
        self.utilization: dict[NodeId, GaugeSeries] = {}
        self.availability: dict[NodeId, GaugeSeries] = {}
        self.backlog = GaugeSeries()
        self.pending = GaugeSeries()
        self._stop = simulation.loop.every(interval, self._sample)

    def stop(self) -> None:
        """Stop sampling (timelines are kept)."""
        self._stop()

    # -- sampling ----------------------------------------------------------

    def _sample(self) -> None:
        now = self.simulation.now
        for node_id, sim_provider in self.simulation.providers.items():
            core = sim_provider.core
            capacity = core.config.capacity
            busy = sum(
                1 for free_at in core._slot_free_at if free_at > now
            )
            self.utilization.setdefault(node_id, GaugeSeries()).record(
                now, busy / capacity
            )
            self.availability.setdefault(node_id, GaugeSeries()).record(
                now, 1.0 if sim_provider.up else 0.0
            )
        backlog_size = sum(
            state.pending_replicas
            for state in self.simulation.broker._tasklets.values()
        )
        self.backlog.record(now, backlog_size)
        self.pending.record(now, self.simulation.broker.pending_tasklets)

    # -- reduction ----------------------------------------------------------

    def summary(self) -> MetricsSummary:
        providers: dict[NodeId, ProviderSummary] = {}
        for node_id, series in self.utilization.items():
            sim_provider = self.simulation.providers[node_id]
            availability_series = self.availability[node_id]
            providers[node_id] = ProviderSummary(
                provider_id=node_id,
                mean_utilization=series.mean,
                peak_utilization=series.peak,
                availability=availability_series.mean,
                busy_seconds=sim_provider.core.stats.busy_seconds,
                executed=sim_provider.core.stats.executed,
            )
        pool_mean = (
            sum(p.mean_utilization for p in providers.values()) / len(providers)
            if providers
            else 0.0
        )
        return MetricsSummary(
            providers=providers,
            pool_mean_utilization=pool_mean,
            peak_backlog=self.backlog.peak,
            peak_pending_tasklets=self.pending.peak,
            samples=len(self.backlog),
            message_type_counts=dict(self.simulation.message_type_counts),
        )
