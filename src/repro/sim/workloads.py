"""Workload generators for the evaluation.

Each generator produces a :class:`Workload`: one compiled program plus a
list of argument tuples — the bag-of-tasks shape all Tasklet experiments
use.  Generators are deterministic in their parameters (and seed, where
randomness is involved), so every experiment run sees the same work.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from ..core import kernels
from ..tvm.bytecode import CompiledProgram
from ..tvm.compiler import compile_source


@dataclass
class Workload:
    """A bag of tasks over one program."""

    name: str
    program: CompiledProgram
    entry: str
    args_list: list[list[Any]]
    #: Optional oracle: expected result per task (None when not cheap).
    expected: list[Any] | None = None

    def __len__(self) -> int:
        return len(self.args_list)


_PROGRAM_CACHE: dict[str, CompiledProgram] = {}


def _cached_program(source: str) -> CompiledProgram:
    if source not in _PROGRAM_CACHE:
        _PROGRAM_CACHE[source] = compile_source(source)
    return _PROGRAM_CACHE[source]


def mandelbrot(width: int = 128, height: int = 96, max_iter: int = 64) -> Workload:
    """Fractal rendering: one Tasklet per image row (heterogeneous task
    sizes — rows near the set's interior iterate far more)."""
    program = _cached_program(kernels.MANDELBROT_ROW)
    args_list = [[y, width, height, max_iter] for y in range(height)]
    return Workload(
        name=f"mandelbrot-{width}x{height}i{max_iter}",
        program=program,
        entry="main",
        args_list=args_list,
    )


def monte_carlo_pi(tasks: int = 64, samples_per_task: int = 20_000) -> Workload:
    """Monte-Carlo π: homogeneous task sizes (the load-balancing control)."""
    program = _cached_program(kernels.MONTE_CARLO_PI)
    args_list = [[samples_per_task] for _ in range(tasks)]
    return Workload(
        name=f"mcpi-{tasks}x{samples_per_task}",
        program=program,
        entry="main",
        args_list=args_list,
    )


def matmul_tiles(tiles: int = 32, n: int = 12, seed: int = 0) -> Workload:
    """Dense linear-algebra tiles with random inputs (data-heavy tasks:
    arguments and results dominate message size)."""
    rng = random.Random(seed)
    program = _cached_program(kernels.MATMUL_TILE)
    args_list = []
    expected = []
    for _ in range(tiles):
        a = [rng.uniform(-1, 1) for _ in range(n * n)]
        b = [rng.uniform(-1, 1) for _ in range(n * n)]
        args_list.append([a, b, n])
        expected.append(kernels.python_matmul_tile(a, b, n))
    return Workload(
        name=f"matmul-{tiles}x{n}",
        program=program,
        entry="main",
        args_list=args_list,
        expected=expected,
    )


def prime_count(tasks: int = 32, limit: int = 3000) -> Workload:
    """Pure integer compute, identical task sizes (benchmark kernel)."""
    program = _cached_program(kernels.PRIME_COUNT)
    args_list = [[limit] for _ in range(tasks)]
    return Workload(
        name=f"primes-{tasks}x{limit}",
        program=program,
        entry="main",
        args_list=args_list,
        expected=[kernels.python_prime_count(limit)] * tasks,
    )


def integration(tasks: int = 48, steps: int = 2000) -> Workload:
    """Numeric integration split into per-task subintervals."""
    program = _cached_program(kernels.NUMERIC_INTEGRATION)
    span = 12.0
    width = span / tasks
    args_list = [
        [i * width, (i + 1) * width, steps] for i in range(tasks)
    ]
    return Workload(
        name=f"integration-{tasks}x{steps}",
        program=program,
        entry="main",
        args_list=args_list,
    )


def mixed(seed: int = 0, scale: int = 1) -> Workload:
    """A shuffled mix of small and large prime-count tasks.

    Models the long-tailed task-size distributions of real deployments;
    used by the scheduling experiments to create stragglers.
    """
    rng = random.Random(seed)
    program = _cached_program(kernels.PRIME_COUNT)
    sizes = [800] * (24 * scale) + [4000] * (8 * scale) + [12000] * (2 * scale)
    rng.shuffle(sizes)
    return Workload(
        name=f"mixed-{scale}",
        program=program,
        entry="main",
        args_list=[[size] for size in sizes],
    )


#: Generators by name, for harness configuration.
WORKLOADS = {
    "mandelbrot": mandelbrot,
    "monte_carlo_pi": monte_carlo_pi,
    "matmul_tiles": matmul_tiles,
    "prime_count": prime_count,
    "integration": integration,
    "mixed": mixed,
}
