"""Simulation substrate: event loop, network, devices, churn, workloads."""

from .churn import ChurnModel, ExponentialChurn, NoChurn, TraceChurn
from .devices import DEVICE_CLASSES, DeviceProfile, make_config, make_pool, profile
from .eventloop import EventHandle, EventLoop
from .metrics import GaugeSeries, MetricsCollector, MetricsSummary
from .network import (
    BandwidthLatency,
    ConstantLatency,
    JitteredLatency,
    NetworkModel,
    PerClassLatency,
    wire_size,
)
from .runner import SimConsumer, Simulation
from .workloads import WORKLOADS, Workload

__all__ = [
    "ChurnModel",
    "ExponentialChurn",
    "NoChurn",
    "TraceChurn",
    "DEVICE_CLASSES",
    "DeviceProfile",
    "make_config",
    "make_pool",
    "profile",
    "EventHandle",
    "EventLoop",
    "GaugeSeries",
    "MetricsCollector",
    "MetricsSummary",
    "BandwidthLatency",
    "ConstantLatency",
    "JitteredLatency",
    "NetworkModel",
    "PerClassLatency",
    "wire_size",
    "SimConsumer",
    "Simulation",
    "WORKLOADS",
    "Workload",
]
