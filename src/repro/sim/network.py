"""Network models for the simulator.

The paper's testbed spans a campus LAN plus mobile devices; we model the
network as a per-message delivery delay.  Three models cover the
experiments:

* :class:`ConstantLatency` — fixed one-way delay, the default;
* :class:`JitteredLatency` — uniform jitter around a base delay
  (deterministic via a seeded stream);
* :class:`BandwidthLatency` — base delay plus a size-proportional term,
  used in the overhead-decomposition experiment (F2) where code+data
  transfer matters.

Message size, when a model needs it, is estimated from the actual wire
encoding so code-shipping costs are faithful to the real transport.
"""

from __future__ import annotations

import random
from typing import Protocol

from ..common.ids import NodeId
from ..common.serde import pack_frame
from ..transport.message import Envelope


def wire_size(envelope: Envelope) -> int:
    """Exact size of this envelope on the real TCP transport, in bytes."""
    return len(pack_frame(envelope.to_dict()))


class NetworkModel(Protocol):
    """Maps one message to its delivery delay in seconds."""

    def delay(self, src: NodeId, dst: NodeId, envelope: Envelope) -> float:
        ...


class ConstantLatency:
    """Fixed one-way delay for every message."""

    def __init__(self, latency_s: float = 0.005):
        if latency_s < 0:
            raise ValueError(f"latency must be >= 0, got {latency_s}")
        self.latency_s = latency_s

    def delay(self, src: NodeId, dst: NodeId, envelope: Envelope) -> float:
        return self.latency_s


class JitteredLatency:
    """Uniform jitter in ``[base - jitter, base + jitter]``."""

    def __init__(self, base_s: float = 0.005, jitter_s: float = 0.002, seed: int = 0):
        if base_s - jitter_s < 0:
            raise ValueError("jitter would produce negative delays")
        self.base_s = base_s
        self.jitter_s = jitter_s
        self._rng = random.Random(seed)

    def delay(self, src: NodeId, dst: NodeId, envelope: Envelope) -> float:
        return self.base_s + self._rng.uniform(-self.jitter_s, self.jitter_s)


class BandwidthLatency:
    """Base propagation delay plus serialisation over a shared-class link.

    ``bandwidth_bps`` is applied to the message's actual encoded size, so
    shipping a large compiled program costs proportionally more than a
    heartbeat — the effect the F2 breakdown measures.
    """

    def __init__(self, base_s: float = 0.002, bandwidth_bps: float = 100e6):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        self.base_s = base_s
        self.bandwidth_bps = bandwidth_bps

    def delay(self, src: NodeId, dst: NodeId, envelope: Envelope) -> float:
        return self.base_s + wire_size(envelope) * 8.0 / self.bandwidth_bps


class PerClassLatency:
    """Different delays per (src-class, dst-class) pair.

    Node classes are resolved through a callback so the model stays
    decoupled from the runner's node table.  Unknown pairs fall back to
    ``default``.
    """

    def __init__(self, class_of, delays: dict[tuple[str, str], float], default: float = 0.005):
        self.class_of = class_of
        self.delays = dict(delays)
        self.default = default

    def delay(self, src: NodeId, dst: NodeId, envelope: Envelope) -> float:
        key = (self.class_of(src), self.class_of(dst))
        if key in self.delays:
            return self.delays[key]
        reverse = (key[1], key[0])
        return self.delays.get(reverse, self.default)
