"""Provider availability churn.

Edge providers come and go: laptops close, phones leave WiFi, desktops get
busy.  We model availability as an alternating ON/OFF renewal process with
exponential sojourn times — the standard model for volunteer-computing
availability traces — plus a deterministic trace-driven variant for tests.

The *duty cycle* (fraction of time available) of an exponential model is
``mean_up / (mean_up + mean_down)``; experiment F7 sweeps it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Protocol, Sequence


class ChurnModel(Protocol):
    """Produces alternating up/down durations for one provider."""

    def sessions(self) -> Iterator[tuple[bool, float]]:
        """Yield ``(is_up, duration_s)`` segments, starting with up."""
        ...


@dataclass
class NoChurn:
    """Always available."""

    def sessions(self) -> Iterator[tuple[bool, float]]:
        while True:
            yield (True, float("inf"))


class ExponentialChurn:
    """Exponential ON/OFF process.

    >>> churn = ExponentialChurn(mean_up_s=60, mean_down_s=20, seed=1)
    >>> churn.duty_cycle
    0.75
    """

    def __init__(self, mean_up_s: float, mean_down_s: float, seed: int = 0):
        if mean_up_s <= 0 or mean_down_s < 0:
            raise ValueError(
                f"mean durations must be positive (up={mean_up_s}, down={mean_down_s})"
            )
        self.mean_up_s = mean_up_s
        self.mean_down_s = mean_down_s
        self._rng = random.Random(seed)

    @property
    def duty_cycle(self) -> float:
        return self.mean_up_s / (self.mean_up_s + self.mean_down_s)

    def sessions(self) -> Iterator[tuple[bool, float]]:
        while True:
            yield (True, self._rng.expovariate(1.0 / self.mean_up_s))
            if self.mean_down_s > 0:
                yield (False, self._rng.expovariate(1.0 / self.mean_down_s))

    @classmethod
    def from_duty_cycle(
        cls, duty_cycle: float, cycle_s: float = 80.0, seed: int = 0
    ) -> "ExponentialChurn":
        """Build a model with a target availability fraction.

        ``cycle_s`` is the mean up+down period; F7 keeps it fixed while
        sweeping ``duty_cycle`` so that comparisons isolate availability.
        """
        if not 0.0 < duty_cycle <= 1.0:
            raise ValueError(f"duty cycle must be in (0, 1], got {duty_cycle}")
        mean_up = duty_cycle * cycle_s
        mean_down = (1.0 - duty_cycle) * cycle_s
        return cls(mean_up_s=mean_up, mean_down_s=mean_down, seed=seed)


class TraceChurn:
    """Replay an explicit ``(is_up, duration)`` trace, then stay in the
    final state forever.  Used by tests that need exact churn timing."""

    def __init__(self, trace: Sequence[tuple[bool, float]]):
        if not trace:
            raise ValueError("trace must not be empty")
        for is_up, duration in trace:
            if duration < 0:
                raise ValueError(f"negative duration in trace: {duration}")
        self.trace = list(trace)

    def sessions(self) -> Iterator[tuple[bool, float]]:
        for segment in self.trace:
            yield segment
        final_state = self.trace[-1][0]
        while True:
            yield (final_state, float("inf"))
