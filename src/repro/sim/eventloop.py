"""Discrete-event loop driving the simulated deployments.

A classic calendar queue on a binary heap.  Three properties matter for
reproducibility and for the middleware semantics:

* **deterministic ordering** — simultaneous events fire in scheduling
  order (a monotonically increasing sequence number breaks time ties);
* **virtual time** — the loop owns a :class:`VirtualClock`; no component
  ever sees wall time;
* **foreground/background distinction** — recurring maintenance events
  (heartbeats, broker ticks) are *background*: they keep time moving but
  do not, by themselves, keep the simulation "busy".  ``run_until_idle``
  stops when only background events remain and the caller's completion
  predicate holds.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..common.clock import VirtualClock


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    background: bool = field(compare=False, default=False)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Returned by ``schedule``; allows cancellation."""

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventLoop:
    """The simulation's single source of time and ordering."""

    def __init__(self, start: float = 0.0):
        self.clock = VirtualClock(start)
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self.events_processed = 0

    def now(self) -> float:
        return self.clock.now()

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[[], None], background: bool = False
    ) -> EventHandle:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.clock.now() + delay, callback, background)

    def schedule_at(
        self, time: float, callback: Callable[[], None], background: bool = False
    ) -> EventHandle:
        """Run ``callback`` at absolute virtual ``time``."""
        if time < self.clock.now():
            raise ValueError(
                f"cannot schedule at {time} (now is {self.clock.now()})"
            )
        event = _Event(
            time=time, seq=next(self._seq), callback=callback, background=background
        )
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def every(
        self, interval: float, callback: Callable[[], None], jitter0: float = 0.0
    ) -> Callable[[], None]:
        """Schedule ``callback`` every ``interval`` seconds (background).

        Returns a stop function.  ``jitter0`` offsets the first firing so
        that e.g. many providers do not all heartbeat at the same instant.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        stopped = False

        def fire() -> None:
            if stopped:
                return
            callback()
            self.schedule(interval, fire, background=True)

        self.schedule(jitter0 % interval, fire, background=True)

        def stop() -> None:
            nonlocal stopped
            stopped = True

        return stop

    # -- execution ----------------------------------------------------------

    def _pop_runnable(self) -> _Event | None:
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        event = self._pop_runnable()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        self.events_processed += 1
        event.callback()
        return True

    def run_until(self, deadline: float) -> None:
        """Process every event with ``time <= deadline``; advance to it."""
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > deadline:
                break
            self.step()
        self.clock.advance_to(max(self.clock.now(), deadline))

    def run_until_idle(
        self,
        done: Callable[[], bool] | None = None,
        max_time: float = 1e9,
    ) -> float:
        """Run until ``done()`` holds (checked between events), only
        background events remain, or ``max_time`` is reached.

        Returns the virtual time at which the loop stopped.
        """
        while True:
            if done is not None and done():
                return self.clock.now()
            head = self._next_head()
            if head is None:
                return self.clock.now()
            if head.time > max_time:
                self.clock.advance_to(max_time)
                return max_time
            if done is None and self._only_background_left():
                return self.clock.now()
            self.step()

    def _next_head(self) -> _Event | None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    def _only_background_left(self) -> bool:
        return all(event.background or event.cancelled for event in self._heap)

    @property
    def pending_events(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)
