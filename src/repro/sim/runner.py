"""Full-system simulation: broker + providers + consumers on one event loop.

The same sans-IO cores that run on the real TCP transport are wired here
to a discrete-event loop: messages become events delayed by a network
model, provider execution time becomes virtual delay computed from real
TVM instruction counts, and provider churn toggles nodes off and on.

Typical experiment shape::

    sim = Simulation(seed=1, strategy="qoc")
    for config in make_pool({"desktop": 4, "smartphone": 8}):
        sim.add_provider(config)
    consumer = sim.add_consumer()
    futures = consumer.library.map(workload.program, workload.args_list)
    sim.run()
    values = [future.result(0) for future in futures]

Crash semantics: a provider going down (churn) silently loses everything
in flight *from* it — scheduled results, heartbeats — because those
messages would have been sent after the crash.  The broker's failure
detector notices the missing heartbeats and re-issues.  On return, the
provider re-registers with a fresh incarnation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..broker.journal import WorkJournal
    from ..dag.handle import WorkflowHandle
    from ..dag.spec import WorkflowSpec

from ..broker.core import BrokerConfig, BrokerCore
from ..broker.scheduling import Strategy, make_strategy
from ..common.ids import IdGenerator, NodeId
from ..common.rng import RngRegistry, derive_seed
from ..consumer.core import ConsumerCore
from ..consumer.library import TaskletLibrary
from ..core.futures import TaskletFuture
from ..core.tasklet import Tasklet
from ..obs.telemetry import Telemetry
from ..provider.core import ProviderConfig, ProviderCore
from ..provider.failure import ExecutionFailureModel
from ..sim.churn import ChurnModel
from ..sim.eventloop import EventLoop
from ..sim.network import ConstantLatency, NetworkModel
from ..transport.message import Envelope


@dataclass
class _SimProvider:
    core: ProviderCore
    up: bool = True
    incarnation: int = 0
    churn_iter: object = None  # iterator over (is_up, duration)


class SimConsumer:
    """One consumer node: middleware core + Tasklet Library session."""

    def __init__(self, simulation: "Simulation", node_id: NodeId, base_seed: int):
        self.simulation = simulation
        self.node_id = node_id
        self.core = ConsumerCore(
            node_id=node_id,
            clock=simulation.loop.clock,
            telemetry=simulation.telemetry,
        )
        self.library = TaskletLibrary(session=self, base_seed=base_seed)

    # -- Session protocol ----------------------------------------------------

    def submit_tasklet(self, tasklet: Tasklet) -> TaskletFuture:
        future, envelopes = self.core.submit(tasklet)
        for envelope in envelopes:
            self.simulation.dispatch(envelope)
        return future

    def submit_batch(self, tasklets: "Sequence[Tasklet]") -> list[TaskletFuture]:
        """Submit many Tasklets under one core lock acquisition."""
        futures, envelopes = self.core.submit_many(tasklets)
        for envelope in envelopes:
            self.simulation.dispatch(envelope)
        return futures

    def submit_workflow(self, spec: "WorkflowSpec") -> "WorkflowHandle":
        """Submit a whole DAG; the broker schedules it stage by stage."""
        handle, envelopes = self.core.submit_workflow(spec)
        for envelope in envelopes:
            self.simulation.dispatch(envelope)
        return handle

    def now(self) -> float:
        return self.simulation.loop.now()


class Simulation:
    """The simulated Tasklet deployment (see module docstring)."""

    def __init__(
        self,
        seed: int = 0,
        strategy: Strategy | str = "qoc",
        network: NetworkModel | None = None,
        broker_config: BrokerConfig | None = None,
        tick_interval: float = 0.5,
        telemetry: Telemetry | None = None,
        journal: "WorkJournal | None" = None,
    ):
        self.loop = EventLoop()
        self.rng = RngRegistry(seed)
        self.seed = seed
        self.ids = IdGenerator()
        self.network = network or ConstantLatency(0.005)
        #: Shared by every core in this simulation (one registry, one span
        #: store), so the cross-node span tree lands in one place.
        self.telemetry = telemetry
        if isinstance(strategy, str):
            strategy = make_strategy(strategy, seed=seed)
        self.broker = BrokerCore(
            clock=self.loop.clock,
            strategy=strategy,
            config=broker_config or BrokerConfig(),
            telemetry=telemetry,
            journal=journal,
        )
        self.providers: dict[NodeId, _SimProvider] = {}
        self.consumers: dict[NodeId, SimConsumer] = {}
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: Deliveries by message type, e.g. {"heartbeat": 214, ...}.
        self.message_type_counts: dict[str, int] = {}
        self.loop.every(tick_interval, self._broker_tick)

    # -- topology ----------------------------------------------------------

    def add_provider(
        self,
        config: ProviderConfig | None = None,
        churn: ChurnModel | None = None,
        failure_model: ExecutionFailureModel | None = None,
        name: str | None = None,
    ) -> NodeId:
        """Add one provider; returns its node id."""
        node_id = NodeId(name) if name else self.ids.next_node("prov")
        config = config or ProviderConfig()
        core = ProviderCore(
            node_id=node_id,
            clock=self.loop.clock,
            config=config,
            failure_model=failure_model,
            telemetry=self.telemetry,
        )
        sim_provider = _SimProvider(core=core)
        self.providers[node_id] = sim_provider

        jitter = self.rng.stream("heartbeat-jitter").uniform(
            0, config.heartbeat_interval
        )
        self.loop.every(
            config.heartbeat_interval,
            lambda: self._provider_heartbeat(sim_provider),
            jitter0=jitter,
        )
        self._emit_provider(sim_provider, core.start())

        if churn is not None:
            sim_provider.churn_iter = churn.sessions()
            self._advance_churn(sim_provider, expect_up=True)
        return node_id

    def add_consumer(self, name: str | None = None) -> SimConsumer:
        """Add one consumer node; returns its session wrapper."""
        node_id = NodeId(name) if name else self.ids.next_node("cons")
        consumer = SimConsumer(
            self, node_id, base_seed=derive_seed(self.seed, node_id)
        )
        self.consumers[node_id] = consumer
        return consumer

    # -- churn ----------------------------------------------------------------

    def _advance_churn(self, sim_provider: _SimProvider, expect_up: bool) -> None:
        """Consume the next churn segment and schedule the transition."""
        is_up, duration = next(sim_provider.churn_iter)
        if is_up != expect_up:
            # Model starts in the wrong phase; treat as zero-length segment.
            self._advance_churn(sim_provider, expect_up)
            return
        if duration == float("inf"):
            return  # terminal state: no more transitions
        if is_up:
            self.loop.schedule(
                duration, lambda: self._provider_down(sim_provider), background=True
            )
        else:
            self.loop.schedule(
                duration, lambda: self._provider_up(sim_provider), background=True
            )

    def _provider_down(self, sim_provider: _SimProvider) -> None:
        if not sim_provider.up:
            return
        sim_provider.up = False
        if sim_provider.churn_iter is not None:
            self._advance_churn(sim_provider, expect_up=False)

    def _provider_up(self, sim_provider: _SimProvider) -> None:
        if sim_provider.up:
            return
        sim_provider.up = True
        sim_provider.incarnation += 1
        sim_provider.core.registered = False
        self._emit_provider(sim_provider, sim_provider.core.start())
        if sim_provider.churn_iter is not None:
            self._advance_churn(sim_provider, expect_up=True)

    def set_provider_up(self, node_id: NodeId, up: bool) -> None:
        """Manually toggle a provider (tests and scripted scenarios)."""
        sim_provider = self.providers[node_id]
        if up:
            self._provider_up(sim_provider)
        else:
            self._provider_down(sim_provider)

    # -- message plumbing --------------------------------------------------------

    def dispatch(self, envelope: Envelope, extra_delay: float = 0.0) -> None:
        """Send one envelope through the simulated network."""
        source_provider = self.providers.get(envelope.src)
        incarnation = source_provider.incarnation if source_provider else None
        delay = extra_delay + self.network.delay(
            envelope.src, envelope.dst, envelope
        )
        self.loop.schedule(
            delay, lambda: self._deliver(envelope, incarnation)
        )

    def _deliver(self, envelope: Envelope, src_incarnation: int | None) -> None:
        source_provider = self.providers.get(envelope.src)
        if source_provider is not None:
            # Messages "sent" by a provider that has since crashed (or
            # whose execution spanned a crash) are lost with it.
            if not source_provider.up or (
                src_incarnation is not None
                and source_provider.incarnation != src_incarnation
            ):
                self.messages_dropped += 1
                return
        self.messages_delivered += 1
        self.message_type_counts[envelope.type] = (
            self.message_type_counts.get(envelope.type, 0) + 1
        )

        if envelope.dst == self.broker.node_id:
            for out in self.broker.handle(envelope):
                self.dispatch(out)
            return
        target_provider = self.providers.get(envelope.dst)
        if target_provider is not None:
            if not target_provider.up:
                self.messages_dropped += 1
                return
            self._emit_provider(
                target_provider, target_provider.core.handle(envelope)
            )
            return
        consumer = self.consumers.get(envelope.dst)
        if consumer is not None:
            for out in consumer.core.handle(envelope):
                self.dispatch(out)
            return
        self.messages_dropped += 1  # unknown destination

    def _emit_provider(self, sim_provider: _SimProvider, outbound) -> None:
        for delay, envelope in outbound:
            self.dispatch(envelope, extra_delay=delay)

    def _provider_heartbeat(self, sim_provider: _SimProvider) -> None:
        if sim_provider.up:
            self._emit_provider(sim_provider, sim_provider.core.tick())

    def _broker_tick(self) -> None:
        for out in self.broker.tick():
            self.dispatch(out)

    # -- execution ----------------------------------------------------------

    def _all_settled(self) -> bool:
        return (
            all(consumer.core.pending == 0 for consumer in self.consumers.values())
            and self.broker.pending_tasklets == 0
            and self.broker.pending_workflows == 0
        )

    def run(self, max_time: float = 1e6) -> float:
        """Run until every submitted Tasklet has a final result (or
        ``max_time`` virtual seconds elapse); returns the stop time."""
        return self.loop.run_until_idle(done=self._all_settled, max_time=max_time)

    def run_for(self, duration: float) -> None:
        """Advance virtual time by exactly ``duration`` seconds."""
        self.loop.run_until(self.loop.now() + duration)

    @property
    def now(self) -> float:
        return self.loop.now()
