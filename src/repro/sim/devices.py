"""Heterogeneous device profiles.

This is the substitution for the paper's physical testbed (servers,
office PCs, laptops, smartphones): each class gets a calibrated *virtual*
TVM speed (instructions per virtual second), a slot count, and a price.
The absolute numbers are arbitrary; what the experiments rely on — and
what we calibrated — are the *ratios* between classes, which mirror the
single-core performance spread of 2016-era devices (a server core ~25x a
single-board computer, ~4x a phone).

``make_pool`` builds provider configurations with deterministic per-device
speed jitter, so a pool of 10 "desktops" is realistically non-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.rng import RngRegistry
from ..provider.core import ProviderConfig


@dataclass(frozen=True)
class DeviceProfile:
    """One device class of the simulated testbed."""

    name: str
    speed_ips: float  # TVM instructions per virtual second
    capacity: int  # concurrent TVM slots
    price: float  # cost units per 1e9 instructions
    startup_overhead_s: float  # per-execution fixed overhead


#: The five classes used throughout the evaluation (Table 1).
DEVICE_CLASSES: dict[str, DeviceProfile] = {
    "server": DeviceProfile(
        name="server", speed_ips=200e6, capacity=8, price=8.0, startup_overhead_s=0.001
    ),
    "desktop": DeviceProfile(
        name="desktop", speed_ips=80e6, capacity=4, price=3.0, startup_overhead_s=0.002
    ),
    "laptop": DeviceProfile(
        name="laptop", speed_ips=50e6, capacity=2, price=2.0, startup_overhead_s=0.003
    ),
    "smartphone": DeviceProfile(
        name="smartphone", speed_ips=15e6, capacity=1, price=1.0, startup_overhead_s=0.008
    ),
    "sbc": DeviceProfile(
        name="sbc", speed_ips=8e6, capacity=1, price=0.5, startup_overhead_s=0.010
    ),
}


def profile(name: str) -> DeviceProfile:
    """Look up a device class; raises ``KeyError`` with the known names."""
    if name not in DEVICE_CLASSES:
        raise KeyError(
            f"unknown device class {name!r}; known: {', '.join(sorted(DEVICE_CLASSES))}"
        )
    return DEVICE_CLASSES[name]


def make_config(
    class_name: str,
    speed_jitter: float = 0.0,
    rng_registry: RngRegistry | None = None,
    heartbeat_interval: float = 1.0,
) -> ProviderConfig:
    """Build one provider config from a device class.

    ``speed_jitter`` is the half-width of a uniform multiplicative jitter
    (0.1 = ±10%), drawn from the registry's ``devices`` stream.
    """
    device = profile(class_name)
    speed = device.speed_ips
    if speed_jitter:
        if rng_registry is None:
            raise ValueError("speed_jitter requires an RngRegistry")
        factor = 1.0 + rng_registry.stream("devices").uniform(
            -speed_jitter, speed_jitter
        )
        speed *= factor
    return ProviderConfig(
        device_class=device.name,
        capacity=device.capacity,
        speed_ips=speed,
        price=device.price,
        heartbeat_interval=heartbeat_interval,
        startup_overhead_s=device.startup_overhead_s,
    )


def make_pool(
    spec: dict[str, int],
    speed_jitter: float = 0.05,
    seed: int = 0,
    heartbeat_interval: float = 1.0,
) -> list[ProviderConfig]:
    """Build a heterogeneous pool, e.g. ``{"desktop": 4, "smartphone": 8}``.

    Configurations are returned grouped by class in sorted-name order, so
    a given ``(spec, seed)`` always produces the identical pool.
    """
    registry = RngRegistry(seed)
    configs: list[ProviderConfig] = []
    for class_name in sorted(spec):
        count = spec[class_name]
        if count < 0:
            raise ValueError(f"negative count for class {class_name!r}")
        for _ in range(count):
            configs.append(
                make_config(
                    class_name,
                    speed_jitter=speed_jitter,
                    rng_registry=registry,
                    heartbeat_interval=heartbeat_interval,
                )
            )
    return configs


def pool_speed(configs: list[ProviderConfig]) -> float:
    """Aggregate instructions/second of a pool (capacity-weighted)."""
    return sum(config.speed_ips * config.capacity for config in configs)
