"""Real TCP deployment of the Tasklet middleware.

The same sans-IO cores used by the simulator run here behind threaded
socket plumbing:

* :class:`TcpBroker` — accepts connections from providers and consumers;
  one reader thread per connection feeds :class:`BrokerCore` (behind a
  lock), outbound envelopes are routed by destination node id;
* :class:`TcpProvider` — connects, self-benchmarks, registers, executes
  assignments on a pool of worker threads, heartbeats periodically;
* :class:`TcpConsumer` — a :class:`~repro.consumer.library.Session` over a
  broker connection, so ``TaskletLibrary`` works unchanged.

For *parallel* scaling on one machine (experiment F8) use
:func:`spawn_provider_process`: each provider lives in its own OS process,
so TVM execution escapes the GIL.

Connection lifecycle (documented in detail in ``docs/PROTOCOL.md``):

* A consumer that loses its broker connection fails every pending future
  with a typed :class:`~repro.common.errors.BrokerUnreachable` error —
  nothing hangs — and fires its ``on_disconnect`` hook.
* A provider that loses its broker connection reconnects with
  exponential backoff plus jitter, re-registering with its *cached*
  benchmark score; the broker's flap-recovery path fails the previous
  incarnation's executions so re-issue happens immediately.
* ``TcpProvider.stop(drain=True)`` rejects new assignments, finishes
  in-flight executions, flushes their results, and only then
  unregisters; all stop paths wake their loops through real stop events
  so shutdown returns promptly instead of sleeping out an interval.

Framing is the 4-byte-length-prefixed JSON of :mod:`repro.common.serde`.
"""

from __future__ import annotations

import multiprocessing
import random
import socket
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dag.handle import WorkflowHandle
    from ..dag.spec import WorkflowSpec

from ..broker.core import BrokerConfig, BrokerCore
from ..broker.federation import FederationConfig
from ..broker.journal import WorkJournal
from ..broker.scheduling import make_strategy
from ..common.clock import WallClock
from ..common.errors import (
    ConnectionClosed,
    FederationExhausted,
    TransportError,
)
from ..common.ids import IdGenerator, NodeId, random_id
from ..common.serde import FrameReader, pack_frame
from ..consumer.core import ConsumerCore
from ..consumer.library import TaskletLibrary
from ..core.futures import TaskletFuture
from ..core.tasklet import Tasklet
from ..obs import events as ev
from ..obs.server import ObsServer
from ..obs.telemetry import ProviderMetrics, Telemetry, TransportMetrics
from ..obs.trace import TraceContext
from ..provider.benchmark import run_benchmark
from ..provider.executor import PROGRAM_CACHE_SIZE, TaskletExecutor
from ..transport.message import (
    AssignExecution,
    BROKER_ADDRESS,
    CancelExecution,
    Envelope,
    ExecutionRejected,
    ExecutionResult,
    Heartbeat,
    HeartbeatAck,
    PeerHello,
    REASON_UNKNOWN_PROVIDER,
    RegisterAck,
    RegisterProvider,
    Unregister,
    body_of,
)

_RECV_CHUNK = 65536


class _Connection:
    """One framed, thread-safe TCP connection.

    ``metrics`` is an optional :class:`TransportMetrics` bundle; when
    attached, framed bytes and envelope counts are reported per direction.
    """

    def __init__(
        self, sock: socket.socket, metrics: TransportMetrics | None = None
    ):
        self.sock = sock
        self.reader = FrameReader()
        self._send_lock = threading.Lock()
        self._metrics = metrics
        self.peer_id: NodeId | None = None  # learned from first envelope

    def send(self, envelope: Envelope) -> None:
        data = pack_frame(envelope.to_dict())
        with self._send_lock:
            try:
                self.sock.sendall(data)
            except OSError as exc:
                raise ConnectionClosed(f"send failed: {exc}") from exc
        if self._metrics is not None:
            self._metrics.bytes.labels(direction="out").inc(len(data))
            self._metrics.messages.labels(direction="out").inc()

    def recv_envelopes(self) -> list[Envelope] | None:
        """Block for data; completed envelopes, or ``None`` on EOF/garbage.

        A peer that sends undecodable bytes is indistinguishable from a
        broken one: the connection is reported dead (``None``) and the
        caller drops it.  One bad client must never take down the node.
        """
        try:
            chunk = self.sock.recv(_RECV_CHUNK)
        except OSError:
            return None
        if not chunk:
            return None
        try:
            envelopes = [
                Envelope.from_dict(frame) for frame in self.reader.feed(chunk)
            ]
        except TransportError:
            return None
        if self._metrics is not None:
            self._metrics.bytes.labels(direction="in").inc(len(chunk))
            if envelopes:
                self._metrics.messages.labels(direction="in").inc(len(envelopes))
        return envelopes

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


def _connect(
    host: str,
    port: int,
    timeout: float = 10.0,
    metrics: TransportMetrics | None = None,
) -> _Connection:
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return _Connection(sock, metrics=metrics)


class TcpBroker:
    """The broker as a TCP server (see module docstring).

    Federation: pass ``broker_id`` plus ``peers`` (peer broker id ->
    ``(host, port)``) to join a static peer set.  The broker dials every
    peer (with backoff), introduces itself with a ``PeerHello``, and the
    shared reader loop routes gossip/forward traffic into the core like
    any other connection.  ``peer_journals`` (peer id -> journal path)
    additionally enables journal handoff: when a peer is declared dead
    and this broker is its successor, the peer's journal is adopted.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        strategy: str = "qoc",
        config: BrokerConfig | None = None,
        telemetry: Telemetry | None = None,
        obs_port: int | None = None,
        obs_host: str = "127.0.0.1",
        journal_path: str | None = None,
        journal_sync: bool = False,
        journal_compact_records: int | None = None,
        journal_compact_bytes: int | None = None,
        broker_id: str | None = None,
        peers: dict[str, tuple[str, int]] | None = None,
        peer_journals: dict[str, str] | None = None,
        gossip_interval: float = 1.0,
    ):
        self.config = config or BrokerConfig()
        if obs_port is not None and telemetry is None:
            # An observability endpoint is useless without telemetry;
            # asking for one implies opting in.
            telemetry = Telemetry()
        self.telemetry = telemetry
        self._transport_metrics = (
            TransportMetrics(telemetry.registry) if telemetry else None
        )
        #: Durable work journal (None = volatile broker).  Constructing the
        #: core replays it: pending tasklets are re-admitted (queued until
        #: providers re-register) and completed outcomes become
        #: re-deliverable to reconnecting consumers that resubmit.
        self.journal = (
            WorkJournal(
                journal_path,
                fsync=journal_sync,
                auto_compact_records=journal_compact_records,
                auto_compact_bytes=journal_compact_bytes,
            )
            if journal_path
            else None
        )
        #: Federation peer addresses (empty = standalone broker).
        self._peer_addresses = dict(peers or {})
        federation = (
            FederationConfig(
                peers=list(self._peer_addresses),
                gossip_interval=gossip_interval,
                peer_journals=dict(peer_journals or {}),
            )
            if self._peer_addresses
            else None
        )
        self.core = BrokerCore(
            clock=WallClock(),
            strategy=make_strategy(strategy),
            config=self.config,
            node_id=NodeId(broker_id) if broker_id else BROKER_ADDRESS,
            # Namespaced ids: a restarted broker must never mint an
            # execution id that a previous incarnation already used (a
            # provider could still answer the old one).
            id_generator=IdGenerator(namespace=uuid.uuid4().hex[:8]),
            telemetry=telemetry,
            journal=self.journal,
            federation=federation,
        )
        self._core_lock = threading.Lock()
        self._connections: dict[NodeId, _Connection] = {}
        #: Every accepted connection, registered or not, so ``stop`` can
        #: close them all and wake their reader threads promptly.
        self._accepted: set[_Connection] = set()
        self._connections_lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._running = threading.Event()
        self._stop_event = threading.Event()
        self._threads: list[threading.Thread] = []
        self.obs: ObsServer | None = (
            ObsServer(
                telemetry,
                host=obs_host,
                port=obs_port,
                node=str(self.core.node_id),
                role="broker",
                health=self._health_document,
                ready=self._running.is_set,
            )
            if obs_port is not None and telemetry is not None
            else None
        )

    @property
    def address(self) -> tuple[str, int]:
        return self._listener.getsockname()

    def _health_document(self) -> dict:
        with self._core_lock:
            return self.core.health_snapshot()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "TcpBroker":
        self._running.set()
        self._stop_event.clear()
        if self.obs is not None:
            self.obs.start()
        accept_thread = threading.Thread(
            target=self._accept_loop, name="broker-accept", daemon=True
        )
        tick_thread = threading.Thread(
            target=self._tick_loop, name="broker-tick", daemon=True
        )
        self._threads += [accept_thread, tick_thread]
        accept_thread.start()
        tick_thread.start()
        for peer_id, (peer_host, peer_port) in self._peer_addresses.items():
            peer_thread = threading.Thread(
                target=self._peer_loop,
                args=(peer_id, peer_host, peer_port),
                name=f"broker-peer-{peer_id}",
                daemon=True,
            )
            self._threads.append(peer_thread)
            peer_thread.start()
        return self

    def stop(self) -> None:
        self._running.clear()
        self._stop_event.set()  # wakes the tick loop immediately
        if self.obs is not None:
            self.obs.stop()
        try:
            # shutdown() wakes the thread blocked in accept() — close()
            # alone does not on Linux, which would leave the listening
            # socket alive inside the stuck syscall and the port bound,
            # so a restarted broker could never rebind it.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # not listening / platform refuses shutdown on listeners
        try:
            self._listener.close()
        except OSError:
            pass
        with self._connections_lock:
            connections = list(self._accepted)
            self._accepted.clear()
            self._connections.clear()
        for connection in connections:
            connection.close()
        if self._transport_metrics is not None and connections:
            # Reader threads skip their own dec once a connection left
            # ``_accepted``, so this is the only decrement for these.
            self._transport_metrics.connections.dec(len(connections))
        for thread in self._threads:
            thread.join(timeout=0.1)
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "TcpBroker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- internals ----------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = _Connection(sock, metrics=self._transport_metrics)
            with self._connections_lock:
                self._accepted.add(connection)
            if self._transport_metrics is not None:
                self._transport_metrics.connections.inc()
            thread = threading.Thread(
                target=self._reader_loop, args=(connection,), daemon=True
            )
            thread.start()

    def _reader_loop(self, connection: _Connection) -> None:
        while self._running.is_set():
            envelopes = connection.recv_envelopes()
            if envelopes is None:
                connection.close()
                break
            for envelope in envelopes:
                if connection.peer_id is None:
                    connection.peer_id = envelope.src
                    with self._connections_lock:
                        self._connections[envelope.src] = connection
                try:
                    with self._core_lock:
                        outbound = self.core.handle(envelope)
                except TransportError:
                    continue  # unknown message type: forward compatibility
                self._route(outbound)
        # Connection gone: a provider that drops TCP is handled by the
        # heartbeat failure detector; nothing else to do here.
        with self._connections_lock:
            dropped = connection in self._accepted
            self._accepted.discard(connection)
            if (
                connection.peer_id is not None
                and self._connections.get(connection.peer_id) is connection
            ):
                del self._connections[connection.peer_id]
        if dropped and self._transport_metrics is not None:
            self._transport_metrics.connections.dec()

    def _tick_loop(self) -> None:
        interval = self.config.heartbeat_interval / 2.0
        # Waiting on the real stop event (instead of a throwaway one)
        # means ``stop`` interrupts the sleep instead of riding it out.
        while not self._stop_event.wait(interval):
            with self._core_lock:
                outbound = self.core.tick()
            self._route(outbound)

    def _peer_loop(self, peer_id: str, host: str, port: int) -> None:
        """Maintain the outbound link to one federation peer.

        Dial with capped exponential backoff plus jitter, introduce
        ourselves with a ``PeerHello`` (reply expected, so the peer's
        epoch lands in our table immediately), then hand the connection
        to the shared reader loop.  Both sides dialing each other is
        fine: forwards and gossip are idempotent, and ``_connections``
        keeps whichever link registered last.
        """
        backoff = 0.2
        rng = random.Random(f"{self.core.node_id}->{peer_id}")
        while self._running.is_set():
            try:
                connection = _connect(
                    host, port, timeout=5.0, metrics=self._transport_metrics
                )
            except OSError:
                if self._stop_event.wait(backoff * (1.0 + 0.5 * rng.random())):
                    return
                backoff = min(backoff * 2.0, 5.0)
                continue
            backoff = 0.2
            connection.peer_id = NodeId(peer_id)
            with self._connections_lock:
                self._accepted.add(connection)
                self._connections[NodeId(peer_id)] = connection
            if self._transport_metrics is not None:
                self._transport_metrics.connections.inc()
            hello = PeerHello(
                broker_id=str(self.core.node_id),
                epoch=self.core.federation.epoch,
                reply_expected=True,
            )
            try:
                connection.send(
                    hello.envelope(self.core.node_id, NodeId(peer_id))
                )
            except ConnectionClosed:
                pass  # reader loop below observes the dead link and returns
            self._reader_loop(connection)  # returns when the link dies

    def _route(self, envelopes: list[Envelope]) -> None:
        for envelope in envelopes:
            with self._connections_lock:
                connection = self._connections.get(envelope.dst)
            if connection is None:
                continue  # peer gone; failure detector will clean up
            try:
                connection.send(envelope)
            except ConnectionClosed:
                with self._connections_lock:
                    self._connections.pop(envelope.dst, None)


class TcpProvider:
    """A provider process/thread executing Tasklets over TCP.

    The broker connection is supervised: if it drops while the provider
    is running, the connection loop reconnects with exponential backoff
    (plus jitter, so a provider fleet does not reconnect in lockstep) and
    re-registers using the benchmark score measured at ``start`` — the
    self-benchmark is not repeated on reconnect.
    """

    def __init__(
        self,
        broker_host: str | None = None,
        broker_port: int | None = None,
        capacity: int = 2,
        device_class: str = "host",
        node_id: str | None = None,
        benchmark_score: float | None = None,
        heartbeat_interval: float = 1.0,
        price: float = 0.0,
        reconnect: bool = True,
        reconnect_backoff: float = 0.2,
        reconnect_backoff_max: float = 5.0,
        telemetry: Telemetry | None = None,
        program_cache_size: int = PROGRAM_CACHE_SIZE,
        profile_executions: bool = False,
        obs_port: int | None = None,
        obs_host: str = "127.0.0.1",
        brokers: list[tuple[str, int]] | None = None,
    ):
        self.node_id = NodeId(node_id or random_id("prov"))
        self.capacity = capacity
        self.device_class = device_class
        self.heartbeat_interval = heartbeat_interval
        self.price = price
        self.reconnect = reconnect
        self.reconnect_backoff = reconnect_backoff
        self.reconnect_backoff_max = reconnect_backoff_max
        if obs_port is not None and telemetry is None:
            telemetry = Telemetry()
        self.telemetry = telemetry
        self._metrics = ProviderMetrics(telemetry.registry) if telemetry else None
        self._transport_metrics = (
            TransportMetrics(telemetry.registry) if telemetry else None
        )
        self._tracer = telemetry.tracer if telemetry else None
        self._events = telemetry.events if telemetry else None
        self._score = benchmark_score  # measured once, cached for re-registration
        self._clock = WallClock()
        self._executor = TaskletExecutor(
            cache_size=program_cache_size,
            profile=profile_executions,
            metrics=self._metrics,
        )
        self._pool: ThreadPoolExecutor | None = None
        self._connection: _Connection | None = None
        self._running = threading.Event()
        self._stop_event = threading.Event()
        self._draining = threading.Event()
        self._active = 0
        self._active_lock = threading.Lock()
        #: Executions assigned but not yet terminal, and the subset the
        #: broker cancelled.  Both are touched from the reader thread and
        #: the executor threads, hence the shared lock; entries are purged
        #: when the matching execution finishes so neither set leaks.
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._inflight: set[str] = set()
        self._cancelled: set[str] = set()
        #: Bumped on every (re-)registration.  Any registration voids all
        #: executions assigned before it — the broker fails them on the
        #: flap-recovery path (or never knew them, after a restart) — so
        #: results computed under an older epoch are dropped, not sent:
        #: a restarted broker may have reused their execution ids.
        self._epoch = 0
        self._rng = random.Random(self.node_id)
        #: Brokers to try, in order; reconnects cycle through the list so
        #: a provider survives the death of its home broker (federation).
        if brokers:
            self._brokers = [tuple(address) for address in brokers]
        elif broker_host is not None and broker_port is not None:
            self._brokers = [(broker_host, broker_port)]
        else:
            raise ValueError("either broker_host/broker_port or brokers required")
        self._broker_index = 0
        self._broker = self._brokers[0]
        self.obs: ObsServer | None = (
            ObsServer(
                telemetry,
                host=obs_host,
                port=obs_port,
                node=str(self.node_id),
                role="provider",
                health=self._health_document,
                ready=self._is_connected,
            )
            if obs_port is not None and telemetry is not None
            else None
        )

    def _is_connected(self) -> bool:
        return self._running.is_set() and self._connection is not None

    def _health_document(self) -> dict:
        with self._active_lock:
            active = self._active
        with self._state_lock:
            inflight = len(self._inflight)
        connected = self._is_connected()
        if not self._running.is_set():
            status = "unhealthy"
        elif not connected or self._draining.is_set():
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "role": "provider",
            "node": str(self.node_id),
            "connected": connected,
            "draining": self._draining.is_set(),
            "capacity": self.capacity,
            "active_slots": active,
            "inflight": inflight,
            "epoch": self._epoch,
            "benchmark_score": self._score,
        }

    def start(self) -> "TcpProvider":
        if self._score is None:
            self._score = run_benchmark().score
        self._connection = _connect(
            *self._broker, metrics=self._transport_metrics
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.capacity, thread_name_prefix=f"{self.node_id}-exec"
        )
        self._running.set()
        self._stop_event.clear()
        self._draining.clear()
        self._register()
        if self.obs is not None:
            self.obs.start()
        connection_thread = threading.Thread(
            target=self._connection_loop, name=f"{self.node_id}-conn", daemon=True
        )
        heart = threading.Thread(
            target=self._heartbeat_loop, name=f"{self.node_id}-heart", daemon=True
        )
        connection_thread.start()
        heart.start()
        return self

    def stop(self, drain: bool = False, drain_timeout: float = 30.0) -> None:
        """Disconnect from the broker and shut down.

        With ``drain=True`` the provider first stops accepting work
        (rejecting new assignments so the broker re-issues them
        elsewhere), waits up to ``drain_timeout`` for in-flight
        executions to finish and flush their results, and only then
        unregisters.  Without it, shutdown is immediate and the broker's
        flap/failure handling re-issues whatever was outstanding.
        """
        if not self._running.is_set():
            return
        if drain:
            self._draining.set()
            self._wait_drained(drain_timeout)
        self._running.clear()
        self._stop_event.set()  # wakes heartbeat + reconnect waits promptly
        try:
            self._send(
                Unregister(provider_id=self.node_id).envelope(
                    self.node_id, BROKER_ADDRESS
                )
            )
        except (ConnectionClosed, TransportError):
            pass
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        if self._connection is not None:
            self._connection.close()
        if self.obs is not None:
            self.obs.stop()

    def __enter__(self) -> "TcpProvider":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- internals ----------------------------------------------------------

    def _send(self, envelope: Envelope) -> None:
        connection = self._connection
        if connection is None:
            raise TransportError("provider not connected")
        connection.send(envelope)

    def _register(self) -> None:
        self._epoch += 1
        register = RegisterProvider(
            provider_id=self.node_id,
            device_class=self.device_class,
            capacity=self.capacity,
            benchmark_score=self._score,
            price=self.price,
            heartbeat_interval=self.heartbeat_interval,
        )
        self._send(register.envelope(self.node_id, BROKER_ADDRESS))

    def _jittered(self, delay: float) -> float:
        return delay * (1.0 + 0.5 * self._rng.random())

    def _connection_loop(self) -> None:
        """Read from the broker; on EOF, reconnect with backoff."""
        connection = self._connection
        backoff = self.reconnect_backoff
        while self._running.is_set():
            if connection is not None:
                self._read_connection(connection)
                connection.close()
                if self._connection is connection:
                    self._connection = None
                connection = None
                if self._events is not None and self._running.is_set():
                    self._events.record(
                        ev.DISCONNECT,
                        node=str(self.node_id),
                        reason="broker link lost",
                        will_reconnect=self.reconnect,
                    )
            if not self._running.is_set() or not self.reconnect:
                return
            if self._stop_event.wait(self._jittered(backoff)):
                return
            backoff = min(backoff * 2.0, self.reconnect_backoff_max)
            candidate = None
            for offset in range(len(self._brokers)):
                index = (self._broker_index + offset) % len(self._brokers)
                try:
                    candidate = _connect(
                        *self._brokers[index],
                        timeout=5.0,
                        metrics=self._transport_metrics,
                    )
                except OSError:
                    continue
                if index != self._broker_index and self._events is not None:
                    host, port = self._brokers[index]
                    self._events.record(
                        ev.BROKER_FAILOVER,
                        node=str(self.node_id),
                        broker=f"{host}:{port}",
                    )
                self._broker_index = index
                self._broker = self._brokers[index]
                break
            if candidate is None:
                continue
            self._connection = candidate
            try:
                self._register()
            except (ConnectionClosed, TransportError):
                self._connection = None
                candidate.close()
                continue
            if self._transport_metrics is not None:
                self._transport_metrics.reconnects.inc()
            if self._events is not None:
                self._events.record(
                    ev.RECONNECT, node=str(self.node_id), epoch=self._epoch
                )
            connection = candidate
            backoff = self.reconnect_backoff

    def _read_connection(self, connection: _Connection) -> None:
        while self._running.is_set():
            envelopes = connection.recv_envelopes()
            if envelopes is None:
                return
            for envelope in envelopes:
                try:
                    body = body_of(envelope)
                except TransportError:
                    continue  # unknown message type: forward compatibility
                if not self._on_broker_message(body, envelope.trace):
                    return

    def _on_broker_message(
        self, body, trace: dict[str, str] | None = None
    ) -> bool:
        """Dispatch one decoded broker message; False = stop reading."""
        if isinstance(body, AssignExecution):
            self._on_assign(body, trace)
        elif isinstance(body, HeartbeatAck):
            if self._transport_metrics is not None:
                if body.echo_sent_at:
                    self._transport_metrics.heartbeat_rtt.observe(
                        max(0.0, time.monotonic() - body.echo_sent_at)
                    )
                else:
                    # An ack without the echo gives no RTT sample; count
                    # it so silent RTT gaps are visible, not just absent.
                    self._transport_metrics.heartbeats_unechoed.inc()
        elif isinstance(body, CancelExecution):
            with self._state_lock:
                # Only executions still in flight can be cancelled;
                # anything else (already finished, or assigned to a
                # previous incarnation) would leak in the set forever.
                if body.execution_id in self._inflight:
                    self._cancelled.add(body.execution_id)
        elif isinstance(body, RegisterAck):
            if not body.accepted and body.reason == REASON_UNKNOWN_PROVIDER:
                # The broker restarted and lost our registration: it
                # answers our heartbeat with this rejection to ask us
                # back.
                try:
                    self._register()
                except (ConnectionClosed, TransportError):
                    return False
        return True

    def _on_assign(
        self, request: AssignExecution, trace: dict[str, str] | None = None
    ) -> None:
        if self._draining.is_set() or self._pool is None:
            if self._metrics is not None:
                self._metrics.rejected.inc()
            rejection = ExecutionRejected(
                execution_id=request.execution_id,
                tasklet_id=request.tasklet_id,
                provider_id=self.node_id,
                reason="provider draining",
            )
            try:
                self._send(rejection.envelope(self.node_id, BROKER_ADDRESS))
            except (ConnectionClosed, TransportError):
                pass
            return
        with self._state_lock:
            self._inflight.add(request.execution_id)
        self._pool.submit(self._execute, request, self._epoch, trace)

    def _heartbeat_loop(self) -> None:
        while not self._stop_event.wait(self.heartbeat_interval):
            with self._active_lock:
                active = self._active
                free = max(0, self.capacity - active)
            if self._metrics is not None:
                self._metrics.busy_slots.labels(provider=str(self.node_id)).set(
                    active
                )
            # A non-zero timestamp asks the broker for an ack (RTT
            # telemetry); without telemetry the flows stay ack-free.
            sent_at = (
                time.monotonic() if self._transport_metrics is not None else 0.0
            )
            heartbeat = Heartbeat(
                provider_id=self.node_id, free_slots=free, sent_at=sent_at
            )
            try:
                self._send(heartbeat.envelope(self.node_id, BROKER_ADDRESS))
            except (ConnectionClosed, TransportError):
                continue  # disconnected; the connection loop is reconnecting

    def _finish_execution(self, execution_id: str) -> bool:
        """Purge bookkeeping for a terminal execution; True if cancelled."""
        with self._state_lock:
            cancelled = execution_id in self._cancelled
            self._cancelled.discard(execution_id)
            self._inflight.discard(execution_id)
            if not self._inflight:
                self._idle.notify_all()
        return cancelled

    def _wait_drained(self, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        with self._state_lock:
            while self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def _execute(
        self,
        request: AssignExecution,
        epoch: int,
        trace: dict[str, str] | None = None,
    ) -> None:
        with self._state_lock:
            if request.execution_id in self._cancelled:
                self._cancelled.discard(request.execution_id)
                self._inflight.discard(request.execution_id)
                if not self._inflight:
                    self._idle.notify_all()
                return
        with self._active_lock:
            self._active += 1
        started = self._clock.now()
        try:
            outcome = self._executor.execute(request)
        finally:
            with self._active_lock:
                self._active -= 1
        finished = self._clock.now()
        if self._metrics is not None:
            self._metrics.executions.labels(status=outcome.status.value).inc()
            self._metrics.execution_seconds.observe(finished - started)
        if self._tracer is not None:
            parent = TraceContext.from_dict(trace)
            if parent is not None:
                self._tracer.record(
                    name="provider.execute",
                    context=self._tracer.child(parent),
                    node=str(self.node_id),
                    start=started,
                    end=finished,
                    parent_id=parent.span_id,
                    status="ok" if outcome.ok else outcome.status.value,
                    attrs={
                        "execution_id": str(request.execution_id),
                        "instructions": outcome.instructions,
                    },
                )
        with self._state_lock:
            cancelled = request.execution_id in self._cancelled
        # Send before purging bookkeeping: a draining stop() waits on
        # ``_inflight`` emptying, and its unregister must not be able to
        # overtake this result on the wire.
        if not cancelled and epoch == self._epoch:
            result = ExecutionResult(
                execution_id=request.execution_id,
                tasklet_id=request.tasklet_id,
                provider_id=self.node_id,
                status=outcome.status.value,
                value=outcome.value,
                error=outcome.error,
                instructions=outcome.instructions,
                started_at=started,
                finished_at=finished,
            )
            try:
                self._send(result.envelope(self.node_id, BROKER_ADDRESS))
            except (ConnectionClosed, TransportError):
                pass  # broker gone; re-registration will fail this execution
        self._finish_execution(request.execution_id)


class TcpConsumer:
    """Consumer session over TCP; plug into :class:`TaskletLibrary`.

    If the broker connection drops, every pending future is failed with
    :class:`~repro.common.errors.BrokerUnreachable` (typed, immediate — no
    caller is left hanging until its timeout) and the optional
    ``on_disconnect`` hook is invoked with a human-readable reason.

    Federation: pass ``brokers=[(host, port), ...]`` instead of a single
    address and the consumer fails over automatically — when the link
    dies it cycles the list with capped exponential backoff plus jitter,
    reconnects to the first broker that answers, and fires a
    ``broker_failover`` event.  Pending futures are still failed on the
    drop (resubmitting with the same tasklet ids is idempotent); once the
    attempt cap is exhausted a typed
    :class:`~repro.common.errors.FederationExhausted` (a
    ``BrokerUnreachable`` subclass) names every broker tried.
    """

    def __init__(
        self,
        broker_host: str | None = None,
        broker_port: int | None = None,
        node_id: str | None = None,
        base_seed: int = 0,
        on_disconnect=None,
        telemetry: Telemetry | None = None,
        brokers: list[tuple[str, int]] | None = None,
        failover_backoff: float = 0.2,
        failover_backoff_max: float = 2.0,
        max_failover_attempts: int = 12,
    ):
        self.node_id = NodeId(node_id or random_id("cons"))
        self._clock = WallClock()
        self.telemetry = telemetry
        self._transport_metrics = (
            TransportMetrics(telemetry.registry) if telemetry else None
        )
        self._events = telemetry.events if telemetry else None
        self.core = ConsumerCore(
            node_id=self.node_id, clock=self._clock, telemetry=telemetry
        )
        self.library = TaskletLibrary(session=self, base_seed=base_seed)
        self.on_disconnect = on_disconnect
        #: Auto-failover is enabled only by the ``brokers`` list; the
        #: single-address form keeps the explicit-``reconnect()`` contract.
        self._failover_enabled = brokers is not None
        if brokers:
            self._brokers = [tuple(address) for address in brokers]
        elif broker_host is not None and broker_port is not None:
            self._brokers = [(broker_host, broker_port)]
        else:
            raise ValueError("either broker_host/broker_port or brokers required")
        self._broker = self._brokers[0]
        self.failover_backoff = failover_backoff
        self.failover_backoff_max = failover_backoff_max
        self.max_failover_attempts = max_failover_attempts
        self._exhausted: FederationExhausted | None = None
        self._rng = random.Random(self.node_id)
        self._connection: _Connection | None = None
        self._reader: threading.Thread | None = None
        self._running = threading.Event()
        self._disconnected = threading.Event()

    def start(self) -> "TcpConsumer":
        # _running first: _connect_any uses it as its abort signal.
        self._running.set()
        if self._failover_enabled:
            self._connection = self._connect_any()
        else:
            self._connection = _connect(
                *self._broker, metrics=self._transport_metrics
            )
        self._start_reader(self._connection)
        return self

    def reconnect(self) -> "TcpConsumer":
        """Re-establish a lost broker connection on the same node id.

        Pending futures were already failed with
        :class:`~repro.common.errors.BrokerUnreachable` when the link
        died; after reconnecting, resubmitting with the *same* tasklet
        ids is idempotent — the broker (re-)acks in-flight work, and a
        journal-backed broker re-delivers completed outcomes instead of
        re-executing them.
        """
        old_connection = self._connection
        old_reader = self._reader
        if old_connection is not None:
            old_connection.close()
        if old_reader is not None and old_reader is not threading.current_thread():
            old_reader.join(timeout=5.0)
        self._connection = _connect(
            *self._broker, metrics=self._transport_metrics
        )
        self._disconnected.clear()
        self._running.set()
        self._start_reader(self._connection)
        return self

    def _start_reader(self, connection: _Connection) -> None:
        self._reader = threading.Thread(
            target=self._reader_loop,
            args=(connection,),
            name=f"{self.node_id}-reader",
            daemon=True,
        )
        self._reader.start()

    def stop(self) -> None:
        was_running = self._running.is_set()
        self._running.clear()
        if self._connection is not None:
            self._connection.close()
        if was_running:
            # Nothing can resolve once the connection is gone; anyone
            # still waiting gets a typed error instead of a hang.
            self.core.fail_all_pending("consumer stopped")

    def __enter__(self) -> "TcpConsumer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- Session protocol ----------------------------------------------------

    def submit_tasklet(self, tasklet: Tasklet) -> TaskletFuture:
        self._check_ready()
        future, envelopes = self.core.submit(tasklet)
        self._send_submission(envelopes)
        return future

    def submit_batch(self, tasklets: Sequence[Tasklet]) -> list[TaskletFuture]:
        """Submit many Tasklets under one core lock acquisition."""
        self._check_ready()
        futures, envelopes = self.core.submit_many(tasklets)
        self._send_submission(envelopes)
        return futures

    def submit_workflow(self, spec: "WorkflowSpec") -> "WorkflowHandle":
        """Submit a whole DAG in one message; the broker owns the graph."""
        self._check_ready()
        handle, envelopes = self.core.submit_workflow(spec)
        self._send_submission(envelopes)
        return handle

    def _check_ready(self) -> None:
        if self._exhausted is not None:
            raise self._exhausted
        if self._connection is None:
            raise TransportError("consumer not started")

    def _send_submission(self, envelopes: Sequence[Envelope]) -> None:
        if self._disconnected.is_set():
            # The reader already saw EOF. A send() here could still
            # "succeed" (TCP buffers one write after a peer close), so
            # don't trust it — fail the futures typed right away.
            self.core.fail_all_pending("connection to broker lost")
            return
        try:
            for envelope in envelopes:
                self._connection.send(envelope)
        except ConnectionClosed as exc:
            # The submission never left this host; the futures (and any
            # other pending ones — the connection is dead for all of
            # them) resolve with a typed error rather than hanging.
            self.core.fail_all_pending(f"send failed: {exc}")

    def now(self) -> float:
        return self._clock.now()

    # -- internals ----------------------------------------------------------

    def _reader_loop(self, connection: _Connection) -> None:
        while self._running.is_set():
            envelopes = connection.recv_envelopes()
            if envelopes is None:
                break
            for envelope in envelopes:
                try:
                    self.core.handle(envelope)
                except TransportError:
                    continue  # unknown message type: forward compatibility
        if not self._running.is_set():
            return  # deliberate stop(); it fails pending futures itself
        if self._connection is not connection:
            # reconnect() superseded this link while we were blocked on
            # the dying socket; the new reader owns the futures now.
            return
        # Flag first, then snapshot-and-fail: a submit racing this either
        # sees the flag (fails itself) or registered in time to be caught
        # by the snapshot below. No window where a future can slip through.
        self._disconnected.set()
        connection.close()
        self.core.fail_all_pending("connection to broker lost")
        hook = self.on_disconnect
        if hook is not None:
            hook("connection to broker lost")
        if self._failover_enabled and self._running.is_set():
            self._try_failover()

    def _connect_any(self) -> _Connection:
        """Connect to the first answering broker in the list.

        Cycles the whole list per round with capped exponential backoff
        plus jitter between rounds; gives up with a typed
        :class:`FederationExhausted` once ``max_failover_attempts``
        connection attempts have failed.
        """
        attempts = 0
        backoff = self.failover_backoff
        while self._running.is_set():
            for host, port in self._brokers:
                attempts += 1
                try:
                    connection = _connect(
                        host, port, timeout=5.0,
                        metrics=self._transport_metrics,
                    )
                except OSError:
                    continue
                self._broker = (host, port)
                return connection
            if attempts >= self.max_failover_attempts:
                break
            time.sleep(backoff * (1.0 + 0.5 * self._rng.random()))
            backoff = min(backoff * 2.0, self.failover_backoff_max)
        raise FederationExhausted(
            f"no broker reachable after {attempts} attempts",
            brokers=[f"{host}:{port}" for host, port in self._brokers],
            attempts=attempts,
        )

    def _try_failover(self) -> None:
        """Runs in the dying reader thread: find a live broker or give up."""
        try:
            connection = self._connect_any()
        except FederationExhausted as exc:
            self._exhausted = exc
            if self._events is not None:
                self._events.record(
                    ev.FEDERATION_EXHAUSTED,
                    node=str(self.node_id),
                    brokers=exc.brokers,
                    attempts=exc.attempts,
                )
            return
        self._connection = connection
        self._disconnected.clear()
        if self._events is not None:
            host, port = self._broker
            self._events.record(
                ev.BROKER_FAILOVER,
                node=str(self.node_id),
                broker=f"{host}:{port}",
            )
        self._start_reader(connection)


def _provider_process_main(
    broker_host: str,
    port: int,
    capacity: int,
    device_class: str,
    node_id: str,
    benchmark_score: float | None,
    stop_event,
) -> None:
    provider = TcpProvider(
        broker_host,
        port,
        capacity=capacity,
        device_class=device_class,
        node_id=node_id,
        benchmark_score=benchmark_score,
    )
    provider.start()
    stop_event.wait()
    provider.stop()


class ProviderProcess:
    """A provider running in its own OS process (GIL-free parallelism)."""

    def __init__(
        self,
        broker_host: str,
        broker_port: int,
        capacity: int = 1,
        device_class: str = "host",
        node_id: str | None = None,
        benchmark_score: float | None = None,
    ):
        self.node_id = node_id or random_id("prov")
        self._stop_event = multiprocessing.Event()
        self._process = multiprocessing.Process(
            target=_provider_process_main,
            args=(
                broker_host,
                broker_port,
                capacity,
                device_class,
                self.node_id,
                benchmark_score,
                self._stop_event,
            ),
            daemon=True,
        )

    def start(self) -> "ProviderProcess":
        self._process.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop_event.set()
        self._process.join(timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout)

    def kill(self) -> None:
        """Crash the provider process: no unregister, no drain, no goodbye.

        Fault-injection helper — from the broker's point of view this is a
        provider dying mid-execution, recovered by the heartbeat failure
        detector (or by flap recovery if the same node id returns).
        """
        if self._process.is_alive():
            self._process.kill()
        self._process.join(5.0)

    def __enter__(self) -> "ProviderProcess":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def spawn_provider_processes(
    broker_host: str,
    broker_port: int,
    count: int,
    capacity: int = 1,
    benchmark_score: float | None = None,
) -> list[ProviderProcess]:
    """Start ``count`` single-capacity provider processes; caller stops them."""
    processes = [
        ProviderProcess(
            broker_host,
            broker_port,
            capacity=capacity,
            device_class="host",
            node_id=f"prov-p{i}",
            benchmark_score=benchmark_score,
        )
        for i in range(count)
    ]
    for process in processes:
        process.start()
    return processes
