"""Real TCP deployment of the Tasklet middleware.

The same sans-IO cores used by the simulator run here behind threaded
socket plumbing:

* :class:`TcpBroker` — accepts connections from providers and consumers;
  one reader thread per connection feeds :class:`BrokerCore` (behind a
  lock), outbound envelopes are routed by destination node id;
* :class:`TcpProvider` — connects, self-benchmarks, registers, executes
  assignments on a pool of worker threads, heartbeats periodically;
* :class:`TcpConsumer` — a :class:`~repro.consumer.library.Session` over a
  broker connection, so ``TaskletLibrary`` works unchanged.

For *parallel* scaling on one machine (experiment F8) use
:func:`spawn_provider_process`: each provider lives in its own OS process,
so TVM execution escapes the GIL.

Framing is the 4-byte-length-prefixed JSON of :mod:`repro.common.serde`.
"""

from __future__ import annotations

import multiprocessing
import socket
import threading
from concurrent.futures import ThreadPoolExecutor

from ..broker.core import BrokerConfig, BrokerCore
from ..broker.scheduling import make_strategy
from ..common.clock import WallClock
from ..common.errors import ConnectionClosed, TransportError
from ..common.ids import NodeId, random_id
from ..common.serde import FrameReader, pack_frame
from ..consumer.core import ConsumerCore
from ..consumer.library import TaskletLibrary
from ..core.futures import TaskletFuture
from ..core.tasklet import Tasklet
from ..provider.benchmark import run_benchmark
from ..provider.executor import TaskletExecutor
from ..transport.message import (
    AssignExecution,
    BROKER_ADDRESS,
    CancelExecution,
    Envelope,
    ExecutionResult,
    Heartbeat,
    RegisterProvider,
    Unregister,
    body_of,
)

_RECV_CHUNK = 65536


class _Connection:
    """One framed, thread-safe TCP connection."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.reader = FrameReader()
        self._send_lock = threading.Lock()
        self.peer_id: NodeId | None = None  # learned from first envelope

    def send(self, envelope: Envelope) -> None:
        data = pack_frame(envelope.to_dict())
        with self._send_lock:
            try:
                self.sock.sendall(data)
            except OSError as exc:
                raise ConnectionClosed(f"send failed: {exc}") from exc

    def recv_envelopes(self) -> list[Envelope] | None:
        """Block for data; completed envelopes, or ``None`` on EOF/garbage.

        A peer that sends undecodable bytes is indistinguishable from a
        broken one: the connection is reported dead (``None``) and the
        caller drops it.  One bad client must never take down the node.
        """
        try:
            chunk = self.sock.recv(_RECV_CHUNK)
        except OSError:
            return None
        if not chunk:
            return None
        try:
            return [Envelope.from_dict(frame) for frame in self.reader.feed(chunk)]
        except TransportError:
            return None

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


def _connect(host: str, port: int, timeout: float = 10.0) -> _Connection:
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return _Connection(sock)


class TcpBroker:
    """The broker as a TCP server (see module docstring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        strategy: str = "qoc",
        config: BrokerConfig | None = None,
    ):
        self.config = config or BrokerConfig()
        self.core = BrokerCore(
            clock=WallClock(),
            strategy=make_strategy(strategy),
            config=self.config,
        )
        self._core_lock = threading.Lock()
        self._connections: dict[NodeId, _Connection] = {}
        self._connections_lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._running = threading.Event()
        self._threads: list[threading.Thread] = []

    @property
    def address(self) -> tuple[str, int]:
        return self._listener.getsockname()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "TcpBroker":
        self._running.set()
        accept_thread = threading.Thread(
            target=self._accept_loop, name="broker-accept", daemon=True
        )
        tick_thread = threading.Thread(
            target=self._tick_loop, name="broker-tick", daemon=True
        )
        self._threads += [accept_thread, tick_thread]
        accept_thread.start()
        tick_thread.start()
        return self

    def stop(self) -> None:
        self._running.clear()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._connections_lock:
            connections = list(self._connections.values())
            self._connections.clear()
        for connection in connections:
            connection.close()

    def __enter__(self) -> "TcpBroker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- internals ----------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running.is_set():
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = _Connection(sock)
            thread = threading.Thread(
                target=self._reader_loop, args=(connection,), daemon=True
            )
            thread.start()

    def _reader_loop(self, connection: _Connection) -> None:
        while self._running.is_set():
            envelopes = connection.recv_envelopes()
            if envelopes is None:
                connection.close()
                break
            for envelope in envelopes:
                if connection.peer_id is None:
                    connection.peer_id = envelope.src
                    with self._connections_lock:
                        self._connections[envelope.src] = connection
                with self._core_lock:
                    outbound = self.core.handle(envelope)
                self._route(outbound)
        # Connection gone: a provider that drops TCP is handled by the
        # heartbeat failure detector; nothing else to do here.
        if connection.peer_id is not None:
            with self._connections_lock:
                if self._connections.get(connection.peer_id) is connection:
                    del self._connections[connection.peer_id]

    def _tick_loop(self) -> None:
        interval = self.config.heartbeat_interval / 2.0
        while self._running.is_set():
            self._running.wait(0)  # fast exit check
            threading.Event().wait(interval)  # plain sleep, interrupt-free
            if not self._running.is_set():
                return
            with self._core_lock:
                outbound = self.core.tick()
            self._route(outbound)

    def _route(self, envelopes: list[Envelope]) -> None:
        for envelope in envelopes:
            with self._connections_lock:
                connection = self._connections.get(envelope.dst)
            if connection is None:
                continue  # peer gone; failure detector will clean up
            try:
                connection.send(envelope)
            except ConnectionClosed:
                with self._connections_lock:
                    self._connections.pop(envelope.dst, None)


class TcpProvider:
    """A provider process/thread executing Tasklets over TCP."""

    def __init__(
        self,
        broker_host: str,
        broker_port: int,
        capacity: int = 2,
        device_class: str = "host",
        node_id: str | None = None,
        benchmark_score: float | None = None,
        heartbeat_interval: float = 1.0,
        price: float = 0.0,
    ):
        self.node_id = NodeId(node_id or random_id("prov"))
        self.capacity = capacity
        self.device_class = device_class
        self.heartbeat_interval = heartbeat_interval
        self.price = price
        self._given_score = benchmark_score
        self._clock = WallClock()
        self._executor = TaskletExecutor()
        self._pool: ThreadPoolExecutor | None = None
        self._connection: _Connection | None = None
        self._running = threading.Event()
        self._active = 0
        self._active_lock = threading.Lock()
        self._cancelled: set[str] = set()
        self._broker = (broker_host, broker_port)

    def start(self) -> "TcpProvider":
        score = self._given_score
        if score is None:
            score = run_benchmark().score
        self._connection = _connect(*self._broker)
        self._pool = ThreadPoolExecutor(
            max_workers=self.capacity, thread_name_prefix=f"{self.node_id}-exec"
        )
        self._running.set()
        register = RegisterProvider(
            provider_id=self.node_id,
            device_class=self.device_class,
            capacity=self.capacity,
            benchmark_score=score,
            price=self.price,
            heartbeat_interval=self.heartbeat_interval,
        )
        self._send(register.envelope(self.node_id, BROKER_ADDRESS))
        reader = threading.Thread(target=self._reader_loop, daemon=True)
        heart = threading.Thread(target=self._heartbeat_loop, daemon=True)
        reader.start()
        heart.start()
        return self

    def stop(self) -> None:
        if not self._running.is_set():
            return
        self._running.clear()
        try:
            self._send(
                Unregister(provider_id=self.node_id).envelope(
                    self.node_id, BROKER_ADDRESS
                )
            )
        except (ConnectionClosed, TransportError):
            pass
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        if self._connection is not None:
            self._connection.close()

    def __enter__(self) -> "TcpProvider":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- internals ----------------------------------------------------------

    def _send(self, envelope: Envelope) -> None:
        if self._connection is None:
            raise TransportError("provider not started")
        self._connection.send(envelope)

    def _reader_loop(self) -> None:
        assert self._connection is not None
        while self._running.is_set():
            envelopes = self._connection.recv_envelopes()
            if envelopes is None:
                return
            for envelope in envelopes:
                body = body_of(envelope)
                if isinstance(body, AssignExecution):
                    assert self._pool is not None
                    self._pool.submit(self._execute, body)
                elif isinstance(body, CancelExecution):
                    self._cancelled.add(body.execution_id)

    def _heartbeat_loop(self) -> None:
        while self._running.is_set():
            threading.Event().wait(self.heartbeat_interval)
            if not self._running.is_set():
                return
            with self._active_lock:
                free = max(0, self.capacity - self._active)
            heartbeat = Heartbeat(provider_id=self.node_id, free_slots=free)
            try:
                self._send(heartbeat.envelope(self.node_id, BROKER_ADDRESS))
            except (ConnectionClosed, TransportError):
                return

    def _execute(self, request: AssignExecution) -> None:
        if request.execution_id in self._cancelled:
            self._cancelled.discard(request.execution_id)
            return
        with self._active_lock:
            self._active += 1
        started = self._clock.now()
        try:
            outcome = self._executor.execute(request)
        finally:
            with self._active_lock:
                self._active -= 1
        finished = self._clock.now()
        if request.execution_id in self._cancelled:
            self._cancelled.discard(request.execution_id)
            return
        result = ExecutionResult(
            execution_id=request.execution_id,
            tasklet_id=request.tasklet_id,
            provider_id=self.node_id,
            status=outcome.status.value,
            value=outcome.value,
            error=outcome.error,
            instructions=outcome.instructions,
            started_at=started,
            finished_at=finished,
        )
        try:
            self._send(result.envelope(self.node_id, BROKER_ADDRESS))
        except (ConnectionClosed, TransportError):
            pass  # broker gone; nothing sensible to do


class TcpConsumer:
    """Consumer session over TCP; plug into :class:`TaskletLibrary`."""

    def __init__(
        self,
        broker_host: str,
        broker_port: int,
        node_id: str | None = None,
        base_seed: int = 0,
    ):
        self.node_id = NodeId(node_id or random_id("cons"))
        self._clock = WallClock()
        self.core = ConsumerCore(node_id=self.node_id, clock=self._clock)
        self.library = TaskletLibrary(session=self, base_seed=base_seed)
        self._broker = (broker_host, broker_port)
        self._connection: _Connection | None = None
        self._running = threading.Event()

    def start(self) -> "TcpConsumer":
        self._connection = _connect(*self._broker)
        self._running.set()
        threading.Thread(target=self._reader_loop, daemon=True).start()
        return self

    def stop(self) -> None:
        self._running.clear()
        if self._connection is not None:
            self._connection.close()

    def __enter__(self) -> "TcpConsumer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- Session protocol ----------------------------------------------------

    def submit_tasklet(self, tasklet: Tasklet) -> TaskletFuture:
        if self._connection is None:
            raise TransportError("consumer not started")
        future, envelopes = self.core.submit(tasklet)
        for envelope in envelopes:
            self._connection.send(envelope)
        return future

    def now(self) -> float:
        return self._clock.now()

    # -- internals ----------------------------------------------------------

    def _reader_loop(self) -> None:
        assert self._connection is not None
        while self._running.is_set():
            envelopes = self._connection.recv_envelopes()
            if envelopes is None:
                return
            for envelope in envelopes:
                self.core.handle(envelope)


def _provider_process_main(
    broker_host: str,
    port: int,
    capacity: int,
    device_class: str,
    node_id: str,
    benchmark_score: float | None,
    stop_event,
) -> None:
    provider = TcpProvider(
        broker_host,
        port,
        capacity=capacity,
        device_class=device_class,
        node_id=node_id,
        benchmark_score=benchmark_score,
    )
    provider.start()
    stop_event.wait()
    provider.stop()


class ProviderProcess:
    """A provider running in its own OS process (GIL-free parallelism)."""

    def __init__(
        self,
        broker_host: str,
        broker_port: int,
        capacity: int = 1,
        device_class: str = "host",
        node_id: str | None = None,
        benchmark_score: float | None = None,
    ):
        self.node_id = node_id or random_id("prov")
        self._stop_event = multiprocessing.Event()
        self._process = multiprocessing.Process(
            target=_provider_process_main,
            args=(
                broker_host,
                broker_port,
                capacity,
                device_class,
                self.node_id,
                benchmark_score,
                self._stop_event,
            ),
            daemon=True,
        )

    def start(self) -> "ProviderProcess":
        self._process.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop_event.set()
        self._process.join(timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout)

    def __enter__(self) -> "ProviderProcess":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def spawn_provider_processes(
    broker_host: str,
    broker_port: int,
    count: int,
    capacity: int = 1,
    benchmark_score: float | None = None,
) -> list[ProviderProcess]:
    """Start ``count`` single-capacity provider processes; caller stops them."""
    processes = [
        ProviderProcess(
            broker_host,
            broker_port,
            capacity=capacity,
            device_class="host",
            node_id=f"prov-p{i}",
            benchmark_score=benchmark_score,
        )
        for i in range(count)
    ]
    for process in processes:
        process.start()
    return processes
