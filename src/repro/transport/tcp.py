"""Real TCP deployment of the Tasklet middleware.

The same sans-IO cores used by the simulator run here behind real
sockets:

* :class:`TcpBroker` — a **single-threaded asyncio event loop** (see
  :mod:`repro.transport.aio`) serving every peer — providers, consumers,
  and federation peer brokers — with one reader/writer pair per
  connection instead of a thread per connection.  Outbound envelopes are
  write-coalesced: everything routed while a previous flush is draining
  goes out in one socket write.
* :class:`TcpProvider` — connects, self-benchmarks, registers, executes
  assignments on a pool of worker threads, heartbeats periodically;
* :class:`TcpConsumer` — a :class:`~repro.consumer.library.Session` over a
  broker connection, so ``TaskletLibrary`` works unchanged.

Framing is the dual-codec format of :mod:`repro.transport.codec`: every
connection starts on length-prefixed JSON; a ``hello`` handshake
negotiates the compact ``bin1`` binary codec per link (JSON remains the
debug fallback and the interop path for old peers).  Receivers decode
both codecs frame-by-frame, so negotiation never races decoding.

For *parallel* scaling on one machine (experiment F8) use
:func:`spawn_provider_processes`: each provider lives in its own OS
process, so TVM execution escapes the GIL.

Connection lifecycle (documented in detail in ``docs/PROTOCOL.md``):

* A consumer that loses its broker connection fails every pending future
  with a typed :class:`~repro.common.errors.BrokerUnreachable` error —
  nothing hangs — and fires its ``on_disconnect`` hook.
* A provider that loses its broker connection reconnects with
  exponential backoff plus jitter, re-registering with its *cached*
  benchmark score; the broker's flap-recovery path fails the previous
  incarnation's executions so re-issue happens immediately.
* ``TcpProvider.stop(drain=True)`` rejects new assignments, finishes
  in-flight executions, flushes their results, and only then
  unregisters; results and the unregister share one FIFO send queue, so
  the unregister can never overtake the final result on the wire.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import random
import socket
import threading
import time
import uuid
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dag.handle import WorkflowHandle
    from ..dag.spec import WorkflowSpec

from ..broker.core import BrokerConfig, BrokerCore
from ..broker.federation import FederationConfig
from ..broker.journal import WorkJournal
from ..broker.scheduling import make_strategy
from ..common.clock import WallClock
from ..common.errors import (
    ConnectionClosed,
    FederationExhausted,
    TransportError,
)
from ..common.ids import IdGenerator, NodeId, random_id
from ..consumer.core import ConsumerCore
from ..consumer.library import TaskletLibrary
from ..core.futures import TaskletFuture
from ..core.tasklet import Tasklet
from ..obs import events as ev
from ..obs.server import ObsServer
from ..obs.telemetry import ProviderMetrics, Telemetry, TransportMetrics
from ..obs.trace import TraceContext
from ..provider.benchmark import run_benchmark
from ..provider.executor import PROGRAM_CACHE_SIZE, TaskletExecutor
from ..transport.aio import AioConnection, LoopThread
from ..transport.codec import (
    CODEC_JSON,
    SUPPORTED_CODECS,
    EnvelopeDecoder,
    Stamp,
    choose_codec,
    encode_batch,
)
from ..transport.message import (
    AssignExecution,
    BROKER_ADDRESS,
    CancelExecution,
    Envelope,
    ExecutionRejected,
    ExecutionResult,
    Heartbeat,
    HeartbeatAck,
    Hello,
    HelloAck,
    PeerHello,
    REASON_UNKNOWN_PROVIDER,
    RegisterAck,
    RegisterProvider,
    Unregister,
    body_of,
)

_RECV_CHUNK = 65536


def _offered_codecs(codec: str) -> tuple[str, ...]:
    """Map the ``codec=`` tuning knob onto an advertised-codec list."""
    if codec == "json":
        return (CODEC_JSON,)
    if codec in ("binary", "auto"):
        return SUPPORTED_CODECS
    raise ValueError(f"codec must be 'binary' or 'json', got {codec!r}")


class _Connection:
    """One framed, thread-safe TCP connection (client side).

    Writes are *coalesced* through a combining lock: ``send`` enqueues
    and, if no other thread is currently flushing, becomes the flusher —
    draining everything queued (its own envelope plus whatever piled up
    behind a slow ``sendall``) into one socket write.  Contending threads
    just enqueue and return, so a heartbeat never blocks behind a large
    result payload; their envelopes ride the active flusher's next batch
    in FIFO order.

    Per-envelope ``stamp`` hooks run at flush time, immediately before
    encoding — that keeps ``Heartbeat.sent_at`` honest under coalescing.

    ``metrics`` is an optional :class:`TransportMetrics` bundle; framed
    bytes and envelope counts are reported per direction and codec.
    """

    def __init__(
        self, sock: socket.socket, metrics: TransportMetrics | None = None
    ):
        self.sock = sock
        self.decoder = EnvelopeDecoder()
        #: Codec for the send direction; flipped by the hello handshake.
        self.send_codec = CODEC_JSON
        self._send_lock = threading.Lock()
        self._queue: deque[tuple[Envelope, Stamp | None]] = deque()
        self._flushing = False
        self._closed = False
        self._metrics = metrics
        self.peer_id: NodeId | None = None  # learned from first envelope

    def send(self, envelope: Envelope, stamp: Stamp | None = None) -> None:
        self.send_many(((envelope, stamp),))

    def send_many(
        self, entries: Sequence[tuple[Envelope, Stamp | None]]
    ) -> None:
        """Enqueue envelopes and flush unless another thread already is."""
        with self._send_lock:
            if self._closed:
                raise ConnectionClosed("connection closed")
            self._queue.extend(entries)
            if self._flushing:
                return  # the active flusher drains our entries too
            self._flushing = True
        try:
            while True:
                with self._send_lock:
                    if not self._queue:
                        self._flushing = False
                        return
                    batch = list(self._queue)
                    self._queue.clear()
                    codec = self.send_codec
                data = encode_batch(batch, codec)
                self.sock.sendall(data)
                if self._metrics is not None:
                    self._metrics.bytes.labels(
                        direction="out", codec=codec
                    ).inc(len(data))
                    self._metrics.messages.labels(
                        direction="out", codec=codec
                    ).inc(len(batch))
                    self._metrics.flushes.inc()
        except OSError as exc:
            with self._send_lock:
                self._flushing = False
                self._queue.clear()
            raise ConnectionClosed(f"send failed: {exc}") from exc

    def recv_envelopes(self) -> list[Envelope] | None:
        """Block for data; completed envelopes, or ``None`` on EOF/garbage.

        A peer that sends undecodable bytes is indistinguishable from a
        broken one: the connection is reported dead (``None``) and the
        caller drops it.  One bad peer must never take down the node.
        """
        try:
            chunk = self.sock.recv(_RECV_CHUNK)
        except OSError:
            return None
        if not chunk:
            return None
        try:
            frames = self.decoder.feed(chunk)
        except TransportError:
            return None
        if self._metrics is not None and frames:
            for _envelope, codec, size in frames:
                self._metrics.bytes.labels(direction="in", codec=codec).inc(
                    size
                )
                self._metrics.messages.labels(
                    direction="in", codec=codec
                ).inc()
        return [envelope for envelope, _codec, _size in frames]

    def close(self) -> None:
        with self._send_lock:
            self._closed = True
            self._queue.clear()
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


def _connect(
    host: str,
    port: int,
    timeout: float = 10.0,
    metrics: TransportMetrics | None = None,
) -> _Connection:
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return _Connection(sock, metrics=metrics)


class TcpBroker:
    """The broker as an asyncio TCP server (see module docstring).

    One event-loop thread owns every connection: acceptance, reads,
    coalesced writes, the periodic tick, and the federation peer dials.
    ``codec='binary'`` (the default) negotiates the compact binary wire
    codec with every peer that advertises it; ``codec='json'`` pins the
    debug fallback for the whole node.

    Federation: pass ``broker_id`` plus ``peers`` (peer broker id ->
    ``(host, port)``) to join a static peer set.  The broker dials every
    peer (with backoff), introduces itself with a transport ``hello``
    followed by a ``PeerHello``, and the shared reader path routes
    gossip/forward traffic into the core like any other connection.
    ``peer_journals`` (peer id -> journal path) additionally enables
    journal handoff: when a peer is declared dead and this broker is its
    successor, the peer's journal is adopted.  ``peer_obs_urls`` (peer id
    -> ObsServer base URL) lets this broker's ``/traces?workflow_id=``
    endpoint merge peer spans, so federated workflow traces render whole.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        strategy: str = "qoc",
        config: BrokerConfig | None = None,
        telemetry: Telemetry | None = None,
        obs_port: int | None = None,
        obs_host: str = "127.0.0.1",
        journal_path: str | None = None,
        journal_sync: bool = False,
        journal_compact_records: int | None = None,
        journal_compact_bytes: int | None = None,
        broker_id: str | None = None,
        peers: dict[str, tuple[str, int]] | None = None,
        peer_journals: dict[str, str] | None = None,
        peer_obs_urls: dict[str, str] | None = None,
        gossip_interval: float = 1.0,
        codec: str = "binary",
    ):
        self.config = config or BrokerConfig()
        self._offered = _offered_codecs(codec)
        if obs_port is not None and telemetry is None:
            # An observability endpoint is useless without telemetry;
            # asking for one implies opting in.
            telemetry = Telemetry()
        self.telemetry = telemetry
        self._transport_metrics = (
            TransportMetrics(telemetry.registry) if telemetry else None
        )
        #: Durable work journal (None = volatile broker).  Constructing the
        #: core replays it: pending tasklets are re-admitted (queued until
        #: providers re-register) and completed outcomes become
        #: re-deliverable to reconnecting consumers that resubmit.
        self.journal = (
            WorkJournal(
                journal_path,
                fsync=journal_sync,
                auto_compact_records=journal_compact_records,
                auto_compact_bytes=journal_compact_bytes,
            )
            if journal_path
            else None
        )
        #: Federation peer addresses (empty = standalone broker).
        self._peer_addresses = dict(peers or {})
        federation = (
            FederationConfig(
                peers=list(self._peer_addresses),
                gossip_interval=gossip_interval,
                peer_journals=dict(peer_journals or {}),
            )
            if self._peer_addresses
            else None
        )
        self.core = BrokerCore(
            clock=WallClock(),
            strategy=make_strategy(strategy),
            config=self.config,
            node_id=NodeId(broker_id) if broker_id else BROKER_ADDRESS,
            # Namespaced ids: a restarted broker must never mint an
            # execution id that a previous incarnation already used (a
            # provider could still answer the old one).
            id_generator=IdGenerator(namespace=uuid.uuid4().hex[:8]),
            telemetry=telemetry,
            journal=self.journal,
            federation=federation,
        )
        self._core_lock = threading.Lock()
        self._connections: dict[NodeId, AioConnection] = {}
        #: Every live connection, registered or not, so ``stop`` can
        #: close them all promptly.
        self._accepted: set[AioConnection] = set()
        self._connections_lock = threading.Lock()
        # The listener is bound synchronously so ``address`` is valid
        # immediately (and bind failures raise here, where the restart
        # retry loops expect them); asyncio adopts the socket at start.
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._running = threading.Event()
        self._aio: LoopThread | None = None
        self._server: asyncio.base_events.Server | None = None
        self._tasks: list[asyncio.Task] = []
        self.obs: ObsServer | None = (
            ObsServer(
                telemetry,
                host=obs_host,
                port=obs_port,
                node=str(self.core.node_id),
                role="broker",
                health=self._health_document,
                ready=self._running.is_set,
                peer_obs_urls=list((peer_obs_urls or {}).values()),
            )
            if obs_port is not None and telemetry is not None
            else None
        )

    @property
    def address(self) -> tuple[str, int]:
        return self._listener.getsockname()

    def _health_document(self) -> dict:
        with self._core_lock:
            document = self.core.health_snapshot()
        with self._connections_lock:
            connections = list(self._accepted)
        codecs: dict[str, int] = {}
        for connection in connections:
            codecs[connection.send_codec] = (
                codecs.get(connection.send_codec, 0) + 1
            )
        document["transport"] = {
            "loop": "asyncio",
            "connections": len(connections),
            "codecs": codecs,
        }
        return document

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "TcpBroker":
        self._running.set()
        if self.obs is not None:
            self.obs.start()
        self._aio = LoopThread("broker-aio").start()
        self._aio.submit(self._start_on_loop()).result(timeout=10.0)
        return self

    def stop(self) -> None:
        self._running.clear()
        if self.obs is not None:
            self.obs.stop()
        if self._aio is not None:
            try:
                self._aio.submit(self._shutdown_on_loop()).result(timeout=5.0)
            except Exception:
                pass  # loop already dead; the thread join below cleans up
            self._aio.stop()
            self._aio = None
        try:
            # Normally the asyncio server owns (and closed) this socket;
            # closing again is a no-op but covers the never-started case.
            self._listener.close()
        except OSError:
            pass
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "TcpBroker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- event-loop internals ------------------------------------------------

    async def _start_on_loop(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_client, sock=self._listener
        )
        loop = asyncio.get_running_loop()
        self._tasks = [loop.create_task(self._tick_task())]
        for peer_id, (peer_host, peer_port) in self._peer_addresses.items():
            self._tasks.append(
                loop.create_task(self._peer_task(peer_id, peer_host, peer_port))
            )

    async def _shutdown_on_loop(self) -> None:
        for task in self._tasks:
            task.cancel()
        self._tasks = []
        # Yield once so handler tasks for just-accepted connections get to
        # run their first statements and register in ``_accepted`` — an
        # unregistered transport would otherwise never be closed and its
        # peer never see EOF.  Stragglers after this cycle self-close on
        # the ``_running`` guard in ``_serve_client``.
        await asyncio.sleep(0)
        with self._connections_lock:
            connections = list(self._accepted)
            self._accepted.clear()
            self._connections.clear()
        for connection in connections:
            connection.close()
        if self._transport_metrics is not None and connections:
            # Reader tasks skip their own dec once a connection left
            # ``_accepted``, so this is the only decrement for these.
            self._transport_metrics.connections.dec(len(connections))
        if self._server is not None:
            self._server.close()
            try:
                # On 3.12+ this also waits for handler tasks; connections
                # are closed above, so their readers exit promptly.
                await asyncio.wait_for(self._server.wait_closed(), timeout=2.0)
            except asyncio.TimeoutError:
                pass
            self._server = None

    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if not self._running.is_set():
            # Accepted during shutdown (after the close sweep snapshotted
            # ``_accepted``): close here or the peer never sees EOF.
            writer.close()
            return
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
        connection = AioConnection(
            self._aio, reader, writer, metrics=self._transport_metrics
        )
        with self._connections_lock:
            self._accepted.add(connection)
        if self._transport_metrics is not None:
            self._transport_metrics.connections.inc()
        await connection.run_reader(self._on_envelope)
        self._drop_connection(connection)

    async def _tick_task(self) -> None:
        interval = self.config.heartbeat_interval / 2.0
        while True:
            await asyncio.sleep(interval)
            with self._core_lock:
                outbound = self.core.tick()
            self._route(outbound)

    async def _peer_task(self, peer_id: str, host: str, port: int) -> None:
        """Maintain the outbound link to one federation peer.

        Dial with capped exponential backoff plus jitter, introduce
        ourselves with a transport ``hello`` (codec negotiation) and a
        ``PeerHello`` (reply expected, so the peer's epoch lands in our
        table immediately), then read the link like any other
        connection.  Both sides dialing each other is fine: forwards and
        gossip are idempotent, and ``_connections`` keeps whichever link
        registered last.
        """
        backoff = 0.2
        rng = random.Random(f"{self.core.node_id}->{peer_id}")
        while self._running.is_set():
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port), timeout=5.0
                )
            except (OSError, asyncio.TimeoutError):
                await asyncio.sleep(backoff * (1.0 + 0.5 * rng.random()))
                backoff = min(backoff * 2.0, 5.0)
                continue
            backoff = 0.2
            sock = writer.get_extra_info("socket")
            if sock is not None:
                try:
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                except OSError:
                    pass
            connection = AioConnection(
                self._aio, reader, writer, metrics=self._transport_metrics
            )
            connection.peer_id = NodeId(peer_id)
            with self._connections_lock:
                self._accepted.add(connection)
                self._connections[NodeId(peer_id)] = connection
            if self._transport_metrics is not None:
                self._transport_metrics.connections.inc()
            hello = Hello(
                node_id=str(self.core.node_id),
                codecs=list(self._offered),
                role="broker",
            )
            peer_hello = PeerHello(
                broker_id=str(self.core.node_id),
                epoch=self.core.federation.epoch,
                reply_expected=True,
            )
            try:
                connection.send(
                    hello.envelope(self.core.node_id, NodeId(peer_id))
                )
                connection.send(
                    peer_hello.envelope(self.core.node_id, NodeId(peer_id))
                )
            except ConnectionClosed:
                pass  # the reader below observes the dead link and returns
            await connection.run_reader(self._on_envelope)
            self._drop_connection(connection)

    def _drop_connection(self, connection: AioConnection) -> None:
        with self._connections_lock:
            dropped = connection in self._accepted
            self._accepted.discard(connection)
            if (
                connection.peer_id is not None
                and self._connections.get(connection.peer_id) is connection
            ):
                del self._connections[connection.peer_id]
        if dropped and self._transport_metrics is not None:
            self._transport_metrics.connections.dec()
        # A provider that drops TCP is handled by the heartbeat failure
        # detector; nothing else to do here.

    def _on_envelope(
        self, connection: AioConnection, envelope: Envelope
    ) -> None:
        """Dispatch one inbound envelope (runs on the event loop)."""
        if envelope.type == Hello.TYPE:
            self._on_hello(connection, envelope)
            return
        if envelope.type == HelloAck.TYPE:
            # A peer broker we dialed answered our hello.
            try:
                ack = body_of(envelope)
            except TransportError:
                return
            if ack.codec in self._offered and ack.codec in SUPPORTED_CODECS:
                connection.send_codec = ack.codec
            return
        if connection.peer_id is None:
            connection.peer_id = envelope.src
            with self._connections_lock:
                self._connections[envelope.src] = connection
        try:
            with self._core_lock:
                outbound = self.core.handle(envelope)
        except TransportError:
            return  # unknown message type: forward compatibility
        self._route(outbound)

    def _on_hello(
        self, connection: AioConnection, envelope: Envelope
    ) -> None:
        try:
            hello = body_of(envelope)
        except TransportError:
            return
        connection.peer_codecs = tuple(hello.codecs)
        if connection.peer_id is None:
            connection.peer_id = envelope.src
            with self._connections_lock:
                self._connections[envelope.src] = connection
        chosen = choose_codec(
            [codec for codec in hello.codecs if codec in self._offered]
        )
        ack = HelloAck(codec=chosen, codecs=list(self._offered))
        try:
            connection.send(ack.envelope(self.core.node_id, envelope.src))
        except ConnectionClosed:
            return
        # The peer decodes every codec it advertised, so this side may
        # switch immediately — even the ack itself may go out binary.
        connection.send_codec = chosen

    def _route(self, envelopes: list[Envelope]) -> None:
        for envelope in envelopes:
            with self._connections_lock:
                connection = self._connections.get(envelope.dst)
            if connection is None:
                continue  # peer gone; failure detector will clean up
            try:
                connection.send(envelope)
            except ConnectionClosed:
                with self._connections_lock:
                    if self._connections.get(envelope.dst) is connection:
                        del self._connections[envelope.dst]


class TcpProvider:
    """A provider process/thread executing Tasklets over TCP.

    The broker connection is supervised: if it drops while the provider
    is running, the connection loop reconnects with exponential backoff
    (plus jitter, so a provider fleet does not reconnect in lockstep) and
    re-registers using the benchmark score measured at ``start`` — the
    self-benchmark is not repeated on reconnect.  Every (re)connection
    opens with a transport ``hello`` so the binary codec is renegotiated
    per link; ``codec='json'`` pins the debug fallback.
    """

    def __init__(
        self,
        broker_host: str | None = None,
        broker_port: int | None = None,
        capacity: int = 2,
        device_class: str = "host",
        node_id: str | None = None,
        benchmark_score: float | None = None,
        heartbeat_interval: float = 1.0,
        price: float = 0.0,
        reconnect: bool = True,
        reconnect_backoff: float = 0.2,
        reconnect_backoff_max: float = 5.0,
        telemetry: Telemetry | None = None,
        program_cache_size: int = PROGRAM_CACHE_SIZE,
        profile_executions: bool = False,
        obs_port: int | None = None,
        obs_host: str = "127.0.0.1",
        brokers: list[tuple[str, int]] | None = None,
        codec: str = "binary",
    ):
        self.node_id = NodeId(node_id or random_id("prov"))
        self.capacity = capacity
        self.device_class = device_class
        self.heartbeat_interval = heartbeat_interval
        self.price = price
        self.reconnect = reconnect
        self.reconnect_backoff = reconnect_backoff
        self.reconnect_backoff_max = reconnect_backoff_max
        self._offered = _offered_codecs(codec)
        if obs_port is not None and telemetry is None:
            telemetry = Telemetry()
        self.telemetry = telemetry
        self._metrics = ProviderMetrics(telemetry.registry) if telemetry else None
        self._transport_metrics = (
            TransportMetrics(telemetry.registry) if telemetry else None
        )
        self._tracer = telemetry.tracer if telemetry else None
        self._events = telemetry.events if telemetry else None
        self._score = benchmark_score  # measured once, cached for re-registration
        self._clock = WallClock()
        self._executor = TaskletExecutor(
            cache_size=program_cache_size,
            profile=profile_executions,
            metrics=self._metrics,
        )
        self._pool: ThreadPoolExecutor | None = None
        self._connection: _Connection | None = None
        self._running = threading.Event()
        self._stop_event = threading.Event()
        self._draining = threading.Event()
        self._active = 0
        self._active_lock = threading.Lock()
        #: Executions assigned but not yet terminal, and the subset the
        #: broker cancelled.  Both are touched from the reader thread and
        #: the executor threads, hence the shared lock; entries are purged
        #: when the matching execution finishes so neither set leaks.
        self._state_lock = threading.Lock()
        self._idle = threading.Condition(self._state_lock)
        self._inflight: set[str] = set()
        self._cancelled: set[str] = set()
        #: Bumped on every (re-)registration.  Any registration voids all
        #: executions assigned before it — the broker fails them on the
        #: flap-recovery path (or never knew them, after a restart) — so
        #: results computed under an older epoch are dropped, not sent:
        #: a restarted broker may have reused their execution ids.
        self._epoch = 0
        self._rng = random.Random(self.node_id)
        #: Brokers to try, in order; reconnects cycle through the list so
        #: a provider survives the death of its home broker (federation).
        if brokers:
            self._brokers = [tuple(address) for address in brokers]
        elif broker_host is not None and broker_port is not None:
            self._brokers = [(broker_host, broker_port)]
        else:
            raise ValueError("either broker_host/broker_port or brokers required")
        self._broker_index = 0
        self._broker = self._brokers[0]
        self.obs: ObsServer | None = (
            ObsServer(
                telemetry,
                host=obs_host,
                port=obs_port,
                node=str(self.node_id),
                role="provider",
                health=self._health_document,
                ready=self._is_connected,
            )
            if obs_port is not None and telemetry is not None
            else None
        )

    def _is_connected(self) -> bool:
        return self._running.is_set() and self._connection is not None

    def _health_document(self) -> dict:
        with self._active_lock:
            active = self._active
        with self._state_lock:
            inflight = len(self._inflight)
        connection = self._connection
        connected = self._is_connected()
        if not self._running.is_set():
            status = "unhealthy"
        elif not connected or self._draining.is_set():
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "role": "provider",
            "node": str(self.node_id),
            "connected": connected,
            "draining": self._draining.is_set(),
            "capacity": self.capacity,
            "active_slots": active,
            "inflight": inflight,
            "epoch": self._epoch,
            "benchmark_score": self._score,
            "codec": connection.send_codec if connection else None,
        }

    def start(self) -> "TcpProvider":
        if self._score is None:
            self._score = run_benchmark().score
        self._connection = _connect(
            *self._broker, metrics=self._transport_metrics
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.capacity, thread_name_prefix=f"{self.node_id}-exec"
        )
        self._running.set()
        self._stop_event.clear()
        self._draining.clear()
        self._handshake(self._connection)
        self._register()
        if self.obs is not None:
            self.obs.start()
        connection_thread = threading.Thread(
            target=self._connection_loop, name=f"{self.node_id}-conn", daemon=True
        )
        heart = threading.Thread(
            target=self._heartbeat_loop, name=f"{self.node_id}-heart", daemon=True
        )
        connection_thread.start()
        heart.start()
        return self

    def stop(self, drain: bool = False, drain_timeout: float = 30.0) -> None:
        """Disconnect from the broker and shut down.

        With ``drain=True`` the provider first stops accepting work
        (rejecting new assignments so the broker re-issues them
        elsewhere), waits up to ``drain_timeout`` for in-flight
        executions to finish and flush their results, and only then
        unregisters.  Without it, shutdown is immediate and the broker's
        flap/failure handling re-issues whatever was outstanding.
        """
        if not self._running.is_set():
            return
        if drain:
            self._draining.set()
            self._wait_drained(drain_timeout)
        self._running.clear()
        self._stop_event.set()  # wakes heartbeat + reconnect waits promptly
        try:
            self._send(
                Unregister(provider_id=self.node_id).envelope(
                    self.node_id, BROKER_ADDRESS
                )
            )
        except (ConnectionClosed, TransportError):
            pass
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        if self._connection is not None:
            self._connection.close()
        if self.obs is not None:
            self.obs.stop()

    def __enter__(self) -> "TcpProvider":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- internals ----------------------------------------------------------

    def _send(self, envelope: Envelope, stamp: Stamp | None = None) -> None:
        connection = self._connection
        if connection is None:
            raise TransportError("provider not connected")
        connection.send(envelope, stamp)

    def _handshake(self, connection: _Connection) -> None:
        """Open codec negotiation; the broker answers with a HelloAck."""
        hello = Hello(
            node_id=str(self.node_id),
            codecs=list(self._offered),
            role="provider",
        )
        connection.send(hello.envelope(self.node_id, BROKER_ADDRESS))

    def _register(self) -> None:
        self._epoch += 1
        register = RegisterProvider(
            provider_id=self.node_id,
            device_class=self.device_class,
            capacity=self.capacity,
            benchmark_score=self._score,
            price=self.price,
            heartbeat_interval=self.heartbeat_interval,
        )
        self._send(register.envelope(self.node_id, BROKER_ADDRESS))

    def _jittered(self, delay: float) -> float:
        return delay * (1.0 + 0.5 * self._rng.random())

    def _connection_loop(self) -> None:
        """Read from the broker; on EOF, reconnect with backoff."""
        connection = self._connection
        backoff = self.reconnect_backoff
        while self._running.is_set():
            if connection is not None:
                self._read_connection(connection)
                connection.close()
                if self._connection is connection:
                    self._connection = None
                connection = None
                if self._events is not None and self._running.is_set():
                    self._events.record(
                        ev.DISCONNECT,
                        node=str(self.node_id),
                        reason="broker link lost",
                        will_reconnect=self.reconnect,
                    )
            if not self._running.is_set() or not self.reconnect:
                return
            if self._stop_event.wait(self._jittered(backoff)):
                return
            backoff = min(backoff * 2.0, self.reconnect_backoff_max)
            candidate = None
            for offset in range(len(self._brokers)):
                index = (self._broker_index + offset) % len(self._brokers)
                try:
                    candidate = _connect(
                        *self._brokers[index],
                        timeout=5.0,
                        metrics=self._transport_metrics,
                    )
                except OSError:
                    continue
                if index != self._broker_index and self._events is not None:
                    host, port = self._brokers[index]
                    self._events.record(
                        ev.BROKER_FAILOVER,
                        node=str(self.node_id),
                        broker=f"{host}:{port}",
                    )
                self._broker_index = index
                self._broker = self._brokers[index]
                break
            if candidate is None:
                continue
            self._connection = candidate
            try:
                self._handshake(candidate)
                self._register()
            except (ConnectionClosed, TransportError):
                self._connection = None
                candidate.close()
                continue
            if self._transport_metrics is not None:
                self._transport_metrics.reconnects.inc()
            if self._events is not None:
                self._events.record(
                    ev.RECONNECT, node=str(self.node_id), epoch=self._epoch
                )
            connection = candidate
            backoff = self.reconnect_backoff

    def _read_connection(self, connection: _Connection) -> None:
        while self._running.is_set():
            envelopes = connection.recv_envelopes()
            if envelopes is None:
                return
            for envelope in envelopes:
                try:
                    body = body_of(envelope)
                except TransportError:
                    continue  # unknown message type: forward compatibility
                if not self._on_broker_message(body, envelope.trace, connection):
                    return

    def _on_broker_message(
        self,
        body,
        trace: dict[str, str] | None = None,
        connection: _Connection | None = None,
    ) -> bool:
        """Dispatch one decoded broker message; False = stop reading."""
        if isinstance(body, AssignExecution):
            self._on_assign(body, trace)
        elif isinstance(body, HeartbeatAck):
            if self._transport_metrics is not None:
                if body.echo_sent_at:
                    self._transport_metrics.heartbeat_rtt.observe(
                        max(0.0, time.monotonic() - body.echo_sent_at)
                    )
                else:
                    # An ack without the echo gives no RTT sample; count
                    # it so silent RTT gaps are visible, not just absent.
                    self._transport_metrics.heartbeats_unechoed.inc()
        elif isinstance(body, HelloAck):
            if (
                connection is not None
                and body.codec in self._offered
                and body.codec in SUPPORTED_CODECS
            ):
                connection.send_codec = body.codec
        elif isinstance(body, CancelExecution):
            with self._state_lock:
                # Only executions still in flight can be cancelled;
                # anything else (already finished, or assigned to a
                # previous incarnation) would leak in the set forever.
                if body.execution_id in self._inflight:
                    self._cancelled.add(body.execution_id)
        elif isinstance(body, RegisterAck):
            if not body.accepted and body.reason == REASON_UNKNOWN_PROVIDER:
                # The broker restarted and lost our registration: it
                # answers our heartbeat with this rejection to ask us
                # back.
                try:
                    self._register()
                except (ConnectionClosed, TransportError):
                    return False
        return True

    def _on_assign(
        self, request: AssignExecution, trace: dict[str, str] | None = None
    ) -> None:
        if self._draining.is_set() or self._pool is None:
            if self._metrics is not None:
                self._metrics.rejected.inc()
            rejection = ExecutionRejected(
                execution_id=request.execution_id,
                tasklet_id=request.tasklet_id,
                provider_id=self.node_id,
                reason="provider draining",
            )
            try:
                self._send(rejection.envelope(self.node_id, BROKER_ADDRESS))
            except (ConnectionClosed, TransportError):
                pass
            return
        with self._state_lock:
            self._inflight.add(request.execution_id)
        self._pool.submit(self._execute, request, self._epoch, trace)

    def _heartbeat_loop(self) -> None:
        while not self._stop_event.wait(self.heartbeat_interval):
            with self._active_lock:
                active = self._active
                free = max(0, self.capacity - active)
            if self._metrics is not None:
                self._metrics.busy_slots.labels(provider=str(self.node_id)).set(
                    active
                )
            # A non-zero timestamp asks the broker for an ack (RTT
            # telemetry); without telemetry the flows stay ack-free.  The
            # placeholder is re-stamped *at flush time* by the hook below
            # — under write coalescing a heartbeat can sit behind a batch
            # for milliseconds, and enqueue-time stamps would bill that
            # wait as network RTT, poisoning the EWMA straggler watchdog.
            want_rtt = self._transport_metrics is not None
            heartbeat = Heartbeat(
                provider_id=self.node_id,
                free_slots=free,
                sent_at=time.monotonic() if want_rtt else 0.0,
            )
            try:
                self._send(
                    heartbeat.envelope(self.node_id, BROKER_ADDRESS),
                    stamp=_stamp_heartbeat if want_rtt else None,
                )
            except (ConnectionClosed, TransportError):
                continue  # disconnected; the connection loop is reconnecting

    def _finish_execution(self, execution_id: str) -> bool:
        """Purge bookkeeping for a terminal execution; True if cancelled."""
        with self._state_lock:
            cancelled = execution_id in self._cancelled
            self._cancelled.discard(execution_id)
            self._inflight.discard(execution_id)
            if not self._inflight:
                self._idle.notify_all()
        return cancelled

    def _wait_drained(self, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        with self._state_lock:
            while self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def _execute(
        self,
        request: AssignExecution,
        epoch: int,
        trace: dict[str, str] | None = None,
    ) -> None:
        with self._state_lock:
            if request.execution_id in self._cancelled:
                self._cancelled.discard(request.execution_id)
                self._inflight.discard(request.execution_id)
                if not self._inflight:
                    self._idle.notify_all()
                return
        with self._active_lock:
            self._active += 1
        started = self._clock.now()
        try:
            outcome = self._executor.execute(request)
        finally:
            with self._active_lock:
                self._active -= 1
        finished = self._clock.now()
        if self._metrics is not None:
            self._metrics.executions.labels(status=outcome.status.value).inc()
            self._metrics.execution_seconds.observe(finished - started)
        if self._tracer is not None:
            parent = TraceContext.from_dict(trace)
            if parent is not None:
                self._tracer.record(
                    name="provider.execute",
                    context=self._tracer.child(parent),
                    node=str(self.node_id),
                    start=started,
                    end=finished,
                    parent_id=parent.span_id,
                    status="ok" if outcome.ok else outcome.status.value,
                    attrs={
                        "execution_id": str(request.execution_id),
                        "instructions": outcome.instructions,
                    },
                )
        with self._state_lock:
            cancelled = request.execution_id in self._cancelled
        # Send before purging bookkeeping: a draining stop() waits on
        # ``_inflight`` emptying, and its unregister must not be able to
        # overtake this result on the wire (the shared FIFO send queue
        # preserves the order even when another thread is flushing).
        if not cancelled and epoch == self._epoch:
            result = ExecutionResult(
                execution_id=request.execution_id,
                tasklet_id=request.tasklet_id,
                provider_id=self.node_id,
                status=outcome.status.value,
                value=outcome.value,
                error=outcome.error,
                instructions=outcome.instructions,
                started_at=started,
                finished_at=finished,
            )
            try:
                self._send(result.envelope(self.node_id, BROKER_ADDRESS))
            except (ConnectionClosed, TransportError):
                pass  # broker gone; re-registration will fail this execution
        self._finish_execution(request.execution_id)


def _stamp_heartbeat(envelope: Envelope) -> None:
    """Flush-time hook: the RTT clock starts when the bytes leave."""
    envelope.payload["sent_at"] = time.monotonic()


class TcpConsumer:
    """Consumer session over TCP; plug into :class:`TaskletLibrary`.

    If the broker connection drops, every pending future is failed with
    :class:`~repro.common.errors.BrokerUnreachable` (typed, immediate — no
    caller is left hanging until its timeout) and the optional
    ``on_disconnect`` hook is invoked with a human-readable reason.

    Every connection opens with a transport ``hello`` negotiating the
    binary wire codec (``codec='json'`` pins the debug fallback); batch
    submissions are flushed as one coalesced socket write.

    Federation: pass ``brokers=[(host, port), ...]`` instead of a single
    address and the consumer fails over automatically — when the link
    dies it cycles the list with capped exponential backoff plus jitter,
    reconnects to the first broker that answers, and fires a
    ``broker_failover`` event.  Pending futures are still failed on the
    drop (resubmitting with the same tasklet ids is idempotent); once the
    attempt cap is exhausted a typed
    :class:`~repro.common.errors.FederationExhausted` (a
    ``BrokerUnreachable`` subclass) names every broker tried.
    """

    def __init__(
        self,
        broker_host: str | None = None,
        broker_port: int | None = None,
        node_id: str | None = None,
        base_seed: int = 0,
        on_disconnect=None,
        telemetry: Telemetry | None = None,
        brokers: list[tuple[str, int]] | None = None,
        failover_backoff: float = 0.2,
        failover_backoff_max: float = 2.0,
        max_failover_attempts: int = 12,
        codec: str = "binary",
    ):
        self.node_id = NodeId(node_id or random_id("cons"))
        self._clock = WallClock()
        self.telemetry = telemetry
        self._transport_metrics = (
            TransportMetrics(telemetry.registry) if telemetry else None
        )
        self._events = telemetry.events if telemetry else None
        self._offered = _offered_codecs(codec)
        self.core = ConsumerCore(
            node_id=self.node_id, clock=self._clock, telemetry=telemetry
        )
        self.library = TaskletLibrary(session=self, base_seed=base_seed)
        self.on_disconnect = on_disconnect
        #: Auto-failover is enabled only by the ``brokers`` list; the
        #: single-address form keeps the explicit-``reconnect()`` contract.
        self._failover_enabled = brokers is not None
        if brokers:
            self._brokers = [tuple(address) for address in brokers]
        elif broker_host is not None and broker_port is not None:
            self._brokers = [(broker_host, broker_port)]
        else:
            raise ValueError("either broker_host/broker_port or brokers required")
        self._broker = self._brokers[0]
        self.failover_backoff = failover_backoff
        self.failover_backoff_max = failover_backoff_max
        self.max_failover_attempts = max_failover_attempts
        self._exhausted: FederationExhausted | None = None
        self._rng = random.Random(self.node_id)
        self._connection: _Connection | None = None
        self._reader: threading.Thread | None = None
        self._running = threading.Event()
        self._disconnected = threading.Event()

    def start(self) -> "TcpConsumer":
        # _running first: _connect_any uses it as its abort signal.
        self._running.set()
        if self._failover_enabled:
            self._connection = self._connect_any()
        else:
            self._connection = _connect(
                *self._broker, metrics=self._transport_metrics
            )
        self._handshake(self._connection)
        self._start_reader(self._connection)
        return self

    def reconnect(self) -> "TcpConsumer":
        """Re-establish a lost broker connection on the same node id.

        Pending futures were already failed with
        :class:`~repro.common.errors.BrokerUnreachable` when the link
        died; after reconnecting, resubmitting with the *same* tasklet
        ids is idempotent — the broker (re-)acks in-flight work, and a
        journal-backed broker re-delivers completed outcomes instead of
        re-executing them.
        """
        old_connection = self._connection
        old_reader = self._reader
        if old_connection is not None:
            old_connection.close()
        if old_reader is not None and old_reader is not threading.current_thread():
            old_reader.join(timeout=5.0)
        self._connection = _connect(
            *self._broker, metrics=self._transport_metrics
        )
        self._disconnected.clear()
        self._running.set()
        self._handshake(self._connection)
        self._start_reader(self._connection)
        return self

    def _handshake(self, connection: _Connection) -> None:
        hello = Hello(
            node_id=str(self.node_id),
            codecs=list(self._offered),
            role="consumer",
        )
        try:
            connection.send(hello.envelope(self.node_id, BROKER_ADDRESS))
        except ConnectionClosed:
            pass  # the reader loop observes the dead link and recovers

    def _start_reader(self, connection: _Connection) -> None:
        self._reader = threading.Thread(
            target=self._reader_loop,
            args=(connection,),
            name=f"{self.node_id}-reader",
            daemon=True,
        )
        self._reader.start()

    def stop(self) -> None:
        was_running = self._running.is_set()
        self._running.clear()
        if self._connection is not None:
            self._connection.close()
        if was_running:
            # Nothing can resolve once the connection is gone; anyone
            # still waiting gets a typed error instead of a hang.
            self.core.fail_all_pending("consumer stopped")

    def __enter__(self) -> "TcpConsumer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- Session protocol ----------------------------------------------------

    def submit_tasklet(self, tasklet: Tasklet) -> TaskletFuture:
        self._check_ready()
        future, envelopes = self.core.submit(tasklet)
        self._send_submission(envelopes)
        return future

    def submit_batch(self, tasklets: Sequence[Tasklet]) -> list[TaskletFuture]:
        """Submit many Tasklets under one core lock acquisition.

        The whole batch is encoded and flushed as one coalesced socket
        write — at high submission rates this is the difference between
        one syscall and hundreds.
        """
        self._check_ready()
        futures, envelopes = self.core.submit_many(tasklets)
        self._send_submission(envelopes)
        return futures

    def submit_workflow(self, spec: "WorkflowSpec") -> "WorkflowHandle":
        """Submit a whole DAG in one message; the broker owns the graph."""
        self._check_ready()
        handle, envelopes = self.core.submit_workflow(spec)
        self._send_submission(envelopes)
        return handle

    def _check_ready(self) -> None:
        if self._exhausted is not None:
            raise self._exhausted
        if self._connection is None:
            raise TransportError("consumer not started")

    def _send_submission(self, envelopes: Sequence[Envelope]) -> None:
        if self._disconnected.is_set():
            # The reader already saw EOF. A send() here could still
            # "succeed" (TCP buffers one write after a peer close), so
            # don't trust it — fail the futures typed right away.
            self.core.fail_all_pending("connection to broker lost")
            return
        try:
            self._connection.send_many(
                [(envelope, None) for envelope in envelopes]
            )
        except ConnectionClosed as exc:
            # The submission never left this host; the futures (and any
            # other pending ones — the connection is dead for all of
            # them) resolve with a typed error rather than hanging.
            self.core.fail_all_pending(f"send failed: {exc}")

    def now(self) -> float:
        return self._clock.now()

    # -- internals ----------------------------------------------------------

    def _reader_loop(self, connection: _Connection) -> None:
        while self._running.is_set():
            envelopes = connection.recv_envelopes()
            if envelopes is None:
                break
            for envelope in envelopes:
                if envelope.type == HelloAck.TYPE:
                    try:
                        ack = body_of(envelope)
                    except TransportError:
                        continue
                    if (
                        ack.codec in self._offered
                        and ack.codec in SUPPORTED_CODECS
                    ):
                        connection.send_codec = ack.codec
                    continue
                try:
                    self.core.handle(envelope)
                except TransportError:
                    continue  # unknown message type: forward compatibility
        if not self._running.is_set():
            return  # deliberate stop(); it fails pending futures itself
        if self._connection is not connection:
            # reconnect() superseded this link while we were blocked on
            # the dying socket; the new reader owns the futures now.
            return
        # Flag first, then snapshot-and-fail: a submit racing this either
        # sees the flag (fails itself) or registered in time to be caught
        # by the snapshot below. No window where a future can slip through.
        self._disconnected.set()
        connection.close()
        self.core.fail_all_pending("connection to broker lost")
        hook = self.on_disconnect
        if hook is not None:
            hook("connection to broker lost")
        if self._failover_enabled and self._running.is_set():
            self._try_failover()

    def _connect_any(self) -> _Connection:
        """Connect to the first answering broker in the list.

        Cycles the whole list per round with capped exponential backoff
        plus jitter between rounds; gives up with a typed
        :class:`FederationExhausted` once ``max_failover_attempts``
        connection attempts have failed.
        """
        attempts = 0
        backoff = self.failover_backoff
        while self._running.is_set():
            for host, port in self._brokers:
                attempts += 1
                try:
                    connection = _connect(
                        host, port, timeout=5.0,
                        metrics=self._transport_metrics,
                    )
                except OSError:
                    continue
                self._broker = (host, port)
                return connection
            if attempts >= self.max_failover_attempts:
                break
            time.sleep(backoff * (1.0 + 0.5 * self._rng.random()))
            backoff = min(backoff * 2.0, self.failover_backoff_max)
        raise FederationExhausted(
            f"no broker reachable after {attempts} attempts",
            brokers=[f"{host}:{port}" for host, port in self._brokers],
            attempts=attempts,
        )

    def _try_failover(self) -> None:
        """Runs in the dying reader thread: find a live broker or give up."""
        try:
            connection = self._connect_any()
        except FederationExhausted as exc:
            self._exhausted = exc
            if self._events is not None:
                self._events.record(
                    ev.FEDERATION_EXHAUSTED,
                    node=str(self.node_id),
                    brokers=exc.brokers,
                    attempts=exc.attempts,
                )
            return
        self._connection = connection
        self._disconnected.clear()
        self._handshake(connection)
        if self._events is not None:
            host, port = self._broker
            self._events.record(
                ev.BROKER_FAILOVER,
                node=str(self.node_id),
                broker=f"{host}:{port}",
            )
        self._start_reader(connection)


def _provider_process_main(
    broker_host: str,
    port: int,
    capacity: int,
    device_class: str,
    node_id: str,
    benchmark_score: float | None,
    stop_event,
) -> None:
    provider = TcpProvider(
        broker_host,
        port,
        capacity=capacity,
        device_class=device_class,
        node_id=node_id,
        benchmark_score=benchmark_score,
    )
    provider.start()
    stop_event.wait()
    provider.stop()


class ProviderProcess:
    """A provider running in its own OS process (GIL-free parallelism)."""

    def __init__(
        self,
        broker_host: str,
        broker_port: int,
        capacity: int = 1,
        device_class: str = "host",
        node_id: str | None = None,
        benchmark_score: float | None = None,
    ):
        self.node_id = node_id or random_id("prov")
        self._stop_event = multiprocessing.Event()
        self._process = multiprocessing.Process(
            target=_provider_process_main,
            args=(
                broker_host,
                broker_port,
                capacity,
                device_class,
                self.node_id,
                benchmark_score,
                self._stop_event,
            ),
            daemon=True,
        )

    def start(self) -> "ProviderProcess":
        self._process.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop_event.set()
        self._process.join(timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout)

    def kill(self) -> None:
        """Crash the provider process: no unregister, no drain, no goodbye.

        Fault-injection helper — from the broker's point of view this is a
        provider dying mid-execution, recovered by the heartbeat failure
        detector (or by flap recovery if the same node id returns).
        """
        if self._process.is_alive():
            self._process.kill()
        self._process.join(5.0)

    def __enter__(self) -> "ProviderProcess":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def spawn_provider_processes(
    broker_host: str,
    broker_port: int,
    count: int,
    capacity: int = 1,
    benchmark_score: float | None = None,
) -> list[ProviderProcess]:
    """Start ``count`` single-capacity provider processes; caller stops them."""
    processes = [
        ProviderProcess(
            broker_host,
            broker_port,
            capacity=capacity,
            device_class="host",
            node_id=f"prov-p{i}",
            benchmark_score=benchmark_score,
        )
        for i in range(count)
    ]
    for process in processes:
        process.start()
    return processes
