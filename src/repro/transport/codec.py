"""Wire codecs: negotiated binary framing next to the JSON debug fallback.

Every frame on a TCP link is ``4-byte big-endian length || body``.  The
first body byte makes each frame self-describing:

* ``0x7B`` (``{``) — the legacy UTF-8 JSON encoding of
  ``Envelope.to_dict()`` (see :mod:`repro.common.serde`); every peer can
  read and write it, which makes it the negotiation-free fallback.
* ``0xB1`` — the compact binary codec defined here (``bin1``): a one-byte
  message-type tag, varint/struct-packed envelope header, and — for the
  hot message types — *field-packed* bodies that drop the JSON key
  strings entirely (field order is the dataclass field order, pinned by
  :data:`FIELD_TABLES`).

Because decoding is self-describing, a receiver never needs negotiation:
:class:`EnvelopeDecoder` handles both codecs on one stream, frame by
frame.  Negotiation (the ``hello``/``register`` handshake, see
``docs/PROTOCOL.md`` "Wire format") only gates what a sender may *emit*:
binary is sent exclusively to peers that advertised it.

The value encoding is deliberately the same closed set as the JSON layer
(None, bool, int, float, str, bytes, list, str-keyed dict) with the same
reserved-key rule, so any payload that round-trips one codec round-trips
the other bit-identically — the property the codec test suite enforces
for every registered message type.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, Callable, Iterator

from ..common.errors import CodecError, TransportError
from ..common.ids import NodeId
from ..common.serde import MAX_FRAME_BYTES, loads, pack_frame
from .message import MESSAGE_TYPES, Envelope

#: Codec names as they appear in hello handshakes and metric labels.
CODEC_JSON = "json"
CODEC_BINARY = "bin1"

#: Codecs this build can decode, in sender-preference order.
SUPPORTED_CODECS: tuple[str, ...] = (CODEC_BINARY, CODEC_JSON)

#: First body byte of a binary frame.  JSON bodies always start with
#: ``{`` (0x7B), so the two encodings can never be confused.
MAGIC_BINARY = 0xB1

_HEADER = struct.Struct(">I")
_FLOAT = struct.Struct(">d")

#: Stable one-byte wire tags for registered message types.  Tag 0 is the
#: generic escape: the type name travels as a string (forward
#: compatibility for types minted after this table was frozen).
WIRE_TAGS: dict[str, int] = {
    "register_provider": 1,
    "register_ack": 2,
    "unregister": 3,
    "heartbeat": 4,
    "heartbeat_ack": 5,
    "assign_execution": 6,
    "execution_result": 7,
    "execution_rejected": 8,
    "cancel_execution": 9,
    "submit_tasklet": 10,
    "submit_ack": 11,
    "tasklet_complete": 12,
    "submit_workflow": 13,
    "workflow_ack": 14,
    "workflow_update": 15,
    "workflow_complete": 16,
    "peer_hello": 17,
    "gossip_digest": 18,
    "forward_tasklet": 19,
    "forward_ack": 20,
    "forward_complete": 21,
    "hello": 22,
    "hello_ack": 23,
}
_TAG_TO_TYPE = {tag: name for name, tag in WIRE_TAGS.items()}

#: Message types whose bodies are field-packed (keys omitted on the
#: wire).  These are the hot-path messages; everything else ships its
#: payload as a packed dict.  Field order comes from the dataclass
#: definition, which is therefore part of the ``bin1`` wire contract —
#: changing it means minting ``bin2``.
_PACKED_TYPE_NAMES = (
    "heartbeat",
    "heartbeat_ack",
    "assign_execution",
    "execution_result",
    "execution_rejected",
    "cancel_execution",
    "submit_tasklet",
    "submit_ack",
    "tasklet_complete",
    "submit_workflow",
    "workflow_ack",
    "workflow_update",
    "workflow_complete",
    "forward_tasklet",
    "forward_ack",
    "forward_complete",
)
FIELD_TABLES: dict[str, tuple[str, ...]] = {
    name: tuple(f.name for f in dataclasses.fields(MESSAGE_TYPES[name]))
    for name in _PACKED_TYPE_NAMES
}

_FLAG_TRACE = 0x01
_FLAG_FIELD_PACKED = 0x02


def choose_codec(offered) -> str:
    """Pick the preferred mutually-supported codec; JSON if none match."""
    for codec in SUPPORTED_CODECS:
        if codec in offered:
            return codec
    return CODEC_JSON


# ---------------------------------------------------------------------------
# Value packing (tag byte + varint-framed payloads)
# ---------------------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_DICT = 0x08


def _pack_varint(n: int, out: bytearray) -> None:
    if n < 0x80:  # the overwhelmingly common case: one byte
        out.append(n)
        return
    while True:
        byte = n & 0x7F
        n >>= 7
        if n:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _unpack_varint(buf: bytes, pos: int) -> tuple[int, int]:
    try:
        byte = buf[pos]
    except IndexError:
        raise CodecError("truncated varint") from None
    pos += 1
    if not byte & 0x80:  # single-byte fast path
        return byte, pos
    result = byte & 0x7F
    shift = 7
    while True:
        if pos >= len(buf):
            raise CodecError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _pack_str(text: str, out: bytearray) -> None:
    data = text.encode("utf-8")
    _pack_varint(len(data), out)
    out += data


def _unpack_str(buf: bytes, pos: int) -> tuple[str, int]:
    length, pos = _unpack_varint(buf, pos)
    end = pos + length
    if end > len(buf):
        raise CodecError("truncated string")
    try:
        return buf[pos:end].decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise CodecError(f"bad utf-8 on the wire: {exc}") from exc


def pack_value(value: Any, out: bytearray) -> None:
    """Append the binary encoding of ``value`` to ``out``.

    The accepted type set (and the reserved ``__x__`` dict-key rule) is
    identical to :func:`repro.common.serde.encode_value`, so a payload is
    binary-encodable exactly when it is JSON-encodable.
    """
    # Hot path first: payload fields are mostly strings and small ints.
    if isinstance(value, str):
        out.append(_T_STR)
        data = value.encode("utf-8")
        _pack_varint(len(data), out)
        out += data
    elif value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        out.append(_T_INT)
        # Zigzag maps signed to unsigned; the varint then handles
        # arbitrary-precision Python ints without a separate bigint tag.
        _pack_varint(value << 1 if value >= 0 else ((-value) << 1) - 1, out)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _FLOAT.pack(value)
    elif isinstance(value, bytes):
        out.append(_T_BYTES)
        _pack_varint(len(value), out)
        out += value
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST)
        _pack_varint(len(value), out)
        for item in value:
            pack_value(item, out)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        _pack_varint(len(value), out)
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
            if key.startswith("__") and key.endswith("__"):
                raise CodecError(f"reserved key name {key!r}")
            _pack_str(key, out)
            pack_value(item, out)
    else:
        raise CodecError(f"unsupported value type {type(value).__name__}")


def unpack_value(buf: bytes, pos: int) -> tuple[Any, int]:
    """Decode one value at ``pos``; returns ``(value, next_pos)``."""
    try:
        tag = buf[pos]
    except IndexError:
        raise CodecError("truncated value") from None
    pos += 1
    if tag == _T_STR:  # hot path: payload fields are mostly strings
        return _unpack_str(buf, pos)
    if tag == _T_INT:
        zigzag, pos = _unpack_varint(buf, pos)
        return (zigzag >> 1) if not zigzag & 1 else -((zigzag + 1) >> 1), pos
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_FLOAT:
        end = pos + _FLOAT.size
        if end > len(buf):
            raise CodecError("truncated float")
        return _FLOAT.unpack_from(buf, pos)[0], end
    if tag == _T_BYTES:
        length, pos = _unpack_varint(buf, pos)
        end = pos + length
        if end > len(buf):
            raise CodecError("truncated bytes")
        return bytes(buf[pos:end]), end
    if tag == _T_LIST:
        count, pos = _unpack_varint(buf, pos)
        items = []
        for _ in range(count):
            item, pos = unpack_value(buf, pos)
            items.append(item)
        return items, pos
    if tag == _T_DICT:
        count, pos = _unpack_varint(buf, pos)
        result: dict[str, Any] = {}
        for _ in range(count):
            key, pos = _unpack_str(buf, pos)
            result[key], pos = unpack_value(buf, pos)
        return result, pos
    raise CodecError(f"unknown value tag 0x{tag:02x}")


# ---------------------------------------------------------------------------
# Envelope encoding
# ---------------------------------------------------------------------------


def encode_envelope(envelope: Envelope, codec: str = CODEC_JSON) -> bytes:
    """Serialise one envelope to a complete length-prefixed frame."""
    if codec == CODEC_JSON:
        return pack_frame(envelope.to_dict())
    if codec != CODEC_BINARY:
        raise CodecError(f"unknown codec {codec!r}")
    body = bytearray((MAGIC_BINARY,))
    tag = WIRE_TAGS.get(envelope.type, 0)
    body.append(tag)
    if tag == 0:
        _pack_str(envelope.type, body)
    # NodeId subclasses str, so src/dst pack without a copy.
    _pack_str(envelope.src, body)
    _pack_str(envelope.dst, body)
    _pack_varint(envelope.seq, body)
    fields = FIELD_TABLES.get(envelope.type)
    payload = envelope.payload
    # Field-pack only when the payload carries exactly the pinned field
    # set; anything else (hand-built payloads, future extra keys) falls
    # back to the keyed dict form so nothing is silently dropped.
    packed = fields is not None and len(payload) == len(fields) and all(
        name in payload for name in fields
    )
    flags = 0
    if envelope.trace is not None:
        flags |= _FLAG_TRACE
    if packed:
        flags |= _FLAG_FIELD_PACKED
    body.append(flags)
    if envelope.trace is not None:
        pack_value(envelope.trace, body)
    if packed:
        for name in fields:  # type: ignore[union-attr]
            pack_value(payload[name], body)
    else:
        pack_value(payload, body)
    if len(body) > MAX_FRAME_BYTES:
        raise CodecError(f"frame too large: {len(body)} bytes")
    return _HEADER.pack(len(body)) + bytes(body)


def decode_binary_body(body: bytes) -> Envelope:
    """Decode one binary frame body (starting at the magic byte)."""
    if not body or body[0] != MAGIC_BINARY:
        raise CodecError("not a binary frame")
    pos = 1
    if pos >= len(body):
        raise CodecError("truncated binary envelope")
    tag = body[pos]
    pos += 1
    if tag == 0:
        type_name, pos = _unpack_str(body, pos)
    else:
        type_name = _TAG_TO_TYPE.get(tag)
        if type_name is None:
            raise CodecError(f"unknown message tag 0x{tag:02x}")
    src, pos = _unpack_str(body, pos)
    dst, pos = _unpack_str(body, pos)
    seq, pos = _unpack_varint(body, pos)
    if pos >= len(body):
        raise CodecError("truncated binary envelope")
    flags = body[pos]
    pos += 1
    trace = None
    if flags & _FLAG_TRACE:
        trace, pos = unpack_value(body, pos)
        if not isinstance(trace, dict):
            raise CodecError("trace must be a dict")
    if flags & _FLAG_FIELD_PACKED:
        fields = FIELD_TABLES.get(type_name)
        if fields is None:
            raise CodecError(f"no field table for {type_name!r}")
        payload = {}
        for name in fields:
            payload[name], pos = unpack_value(body, pos)
    else:
        payload, pos = unpack_value(body, pos)
        if not isinstance(payload, dict):
            raise CodecError("payload must be a dict")
    if pos != len(body):
        raise CodecError(f"{len(body) - pos} trailing bytes in frame")
    return Envelope(
        type=type_name,
        src=NodeId(src),
        dst=NodeId(dst),
        payload=payload,
        seq=seq,
        trace=trace,
    )


def decode_body(body: bytes) -> tuple[Envelope, str]:
    """Decode one frame body of either codec; returns the codec seen."""
    if body[:1] == bytes((MAGIC_BINARY,)):
        return decode_binary_body(body), CODEC_BINARY
    return Envelope.from_dict(loads(body)), CODEC_JSON


class EnvelopeDecoder:
    """Incremental dual-codec frame decoder for one byte stream.

    Feed arbitrary chunks with :meth:`feed`; complete envelopes come back
    in order as ``(envelope, codec, frame_bytes)`` so the transport can
    attribute byte/message counters per codec.  Raises
    :class:`~repro.common.errors.TransportError` (or its
    :class:`~repro.common.errors.CodecError` subclass) on garbage — the
    caller treats the connection as broken, exactly like the JSON-only
    reader did.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> list[tuple[Envelope, str, int]]:
        self._buffer.extend(chunk)
        frames: list[tuple[Envelope, str, int]] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return frames
            (length,) = _HEADER.unpack_from(self._buffer, 0)
            if length > MAX_FRAME_BYTES:
                raise CodecError(f"incoming frame too large: {length} bytes")
            total = _HEADER.size + length
            if len(self._buffer) < total:
                return frames
            body = bytes(self._buffer[_HEADER.size:total])
            del self._buffer[:total]
            envelope, codec = decode_body(body)
            frames.append((envelope, codec, total))

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


def iter_frames(data: bytes) -> Iterator[Envelope]:
    """Decode a complete byte string of frames (tests and tools)."""
    decoder = EnvelopeDecoder()
    for envelope, _codec, _size in decoder.feed(data):
        yield envelope
    if decoder.pending_bytes:
        raise TransportError(f"{decoder.pending_bytes} trailing bytes")


#: Type of the optional per-envelope flush hook: called with the
#: envelope immediately before encoding, at actual flush time.  Used to
#: stamp ``Heartbeat.sent_at`` so write coalescing cannot skew RTTs.
Stamp = Callable[[Envelope], None]


def encode_batch(
    batch: list[tuple[Envelope, Stamp | None]], codec: str
) -> bytes:
    """Encode a coalesced write: many envelopes, one byte string."""
    chunks: list[bytes] = []
    for envelope, stamp in batch:
        if stamp is not None:
            stamp(envelope)
        chunks.append(encode_envelope(envelope, codec))
    return b"".join(chunks)
