"""Typed messages exchanged between consumers, brokers, and providers.

Every message travels inside an :class:`Envelope` — a routable record with
source, destination, message type, and a JSON-safe payload dict.  Bodies
are typed dataclasses registered in :data:`MESSAGE_TYPES`; ``body_of``
reconstructs the typed body from an envelope.

The protocol (arrows show direction; B=broker, P=provider, C=consumer)::

    P -> B   REGISTER_PROVIDER      join the provider pool
    B -> P   REGISTER_ACK           accept/reject
    P -> B   HEARTBEAT              liveness + load report
    B -> P   HEARTBEAT_ACK          timestamp echo (RTT telemetry, optional)
    P -> B   UNREGISTER             graceful leave
    C -> B   SUBMIT_TASKLET         new Tasklet with QoC goals
    B -> C   SUBMIT_ACK             accepted / no provider / bad request
    B -> P   ASSIGN_EXECUTION       one replica of a Tasklet
    P -> B   EXECUTION_RESULT       success or VM failure, with stats
    P -> B   EXECUTION_REJECTED     provider refuses (full/leaving)
    B -> P   CANCEL_EXECUTION       replica no longer needed
    B -> C   TASKLET_COMPLETE       final voted result

Federation adds broker-to-broker peer messages (see docs/PROTOCOL.md,
"Federation"):

    B -> B   PEER_HELLO             announce id + incarnation epoch
    B -> B   GOSSIP_DIGEST          periodic registry/health/load summary
    B -> B   FORWARD_TASKLET        place one tasklet on a peer's pool
    B -> B   FORWARD_ACK            peer accepted/rejected the forward
    B -> B   FORWARD_COMPLETE       terminal outcome flows back to origin

Workflows add DAG submission (see docs/PROTOCOL.md, "Workflows"):

    C -> B   SUBMIT_WORKFLOW        whole DAG of tasklets with dependencies
    B -> C   WORKFLOW_ACK           accepted / rejected (validation)
    B -> C   WORKFLOW_UPDATE        one node changed state (advisory)
    B -> C   WORKFLOW_COMPLETE      terminal outcome with sink outputs
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Type

from ..common.errors import TransportError
from ..common.ids import NodeId

#: Broadcast / well-known addresses.
BROKER_ADDRESS = NodeId("broker")

#: ``register_ack.reason`` a broker uses to reject a heartbeat from a
#: provider it does not know (it restarted and lost its registry): the
#: provider answers by re-registering.  Part of the wire contract — see
#: docs/PROTOCOL.md, "Connection lifecycle".
REASON_UNKNOWN_PROVIDER = "unknown provider"

_envelope_counter = itertools.count()


@dataclass
class Envelope:
    """Routable wrapper around one message body.

    ``trace`` is the optional telemetry trace context —
    ``{"trace_id": ..., "span_id": ...}`` — that lets receivers parent
    their spans on the sender's (see :mod:`repro.obs.trace`).  ``None``
    (telemetry disabled, or an untraced message type) is omitted from
    the wire form entirely, so the disabled path costs zero bytes.
    """

    type: str
    src: NodeId
    dst: NodeId
    payload: dict[str, Any]
    seq: int = field(default_factory=lambda: next(_envelope_counter))
    trace: dict[str, str] | None = None

    def to_dict(self) -> dict[str, Any]:
        data = {
            "type": self.type,
            "src": self.src,
            "dst": self.dst,
            "payload": self.payload,
            "seq": self.seq,
        }
        if self.trace is not None:
            data["trace"] = self.trace
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Envelope":
        try:
            trace = data.get("trace")
            return cls(
                type=str(data["type"]),
                src=NodeId(data["src"]),
                dst=NodeId(data["dst"]),
                payload=dict(data["payload"]),
                seq=int(data.get("seq", 0)),
                trace=dict(trace) if trace else None,
            )
        except (KeyError, TypeError) as exc:
            raise TransportError(f"malformed envelope: {exc}") from exc


#: type-name -> body class registry, filled by ``_message`` below.
MESSAGE_TYPES: dict[str, Type["MessageBody"]] = {}


class MessageBody:
    """Base class for typed message bodies.

    Subclasses are dataclasses whose fields are JSON-safe values; the
    default ``to_payload``/``from_payload`` just use ``__dict__``.
    """

    TYPE: ClassVar[str] = ""

    def to_payload(self) -> dict[str, Any]:
        return dict(self.__dict__)

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "MessageBody":
        # Unknown-field tolerance: a newer peer may send fields this
        # version does not know.  Dropping them (instead of raising) is
        # what lets mixed-version clusters — and the codec-negotiation
        # fields added over time — interoperate.
        known = {f.name for f in fields(cls)}
        if payload.keys() - known:
            payload = {k: v for k, v in payload.items() if k in known}
        return cls(**payload)

    def envelope(self, src: NodeId, dst: NodeId) -> Envelope:
        """Wrap this body for transmission."""
        return Envelope(type=self.TYPE, src=src, dst=dst, payload=self.to_payload())


def _message(type_name: str):
    """Class decorator: set TYPE and register in :data:`MESSAGE_TYPES`."""

    def wrap(cls):
        cls.TYPE = type_name
        MESSAGE_TYPES[type_name] = cls
        return cls

    return wrap


def body_of(envelope: Envelope) -> MessageBody:
    """Reconstruct the typed body of an envelope."""
    body_class = MESSAGE_TYPES.get(envelope.type)
    if body_class is None:
        raise TransportError(f"unknown message type {envelope.type!r}")
    try:
        return body_class.from_payload(envelope.payload)
    except TypeError as exc:
        raise TransportError(
            f"malformed {envelope.type} payload: {exc}"
        ) from exc


# ---------------------------------------------------------------------------
# Transport-level (any peer <-> broker)
# ---------------------------------------------------------------------------


@_message("hello")
@dataclass
class Hello(MessageBody):
    """Transport handshake: the dialing peer's first message.

    ``codecs`` lists every wire codec the sender can *decode*, in
    preference order (see :mod:`repro.transport.codec`).  A broker that
    understands the hello answers with :class:`HelloAck` naming the
    codec it chose; both sides may then switch their *send* direction to
    it.  A peer that never sends (or never answers) a hello simply stays
    on length-prefixed JSON — the handshake is advisory, which is what
    lets old and new peers share a cluster.
    """

    node_id: str
    codecs: list[str] = field(default_factory=list)
    role: str = ""  # "provider" | "consumer" | "broker" (diagnostic only)


@_message("hello_ack")
@dataclass
class HelloAck(MessageBody):
    """Broker's answer to a :class:`Hello`: the negotiated codec."""

    codec: str
    codecs: list[str] = field(default_factory=list)  # what the broker accepts


# ---------------------------------------------------------------------------
# Provider <-> broker
# ---------------------------------------------------------------------------


@_message("register_provider")
@dataclass
class RegisterProvider(MessageBody):
    """A provider joins the pool, reporting its capabilities."""

    provider_id: str
    device_class: str
    capacity: int  # concurrent execution slots
    benchmark_score: float  # instructions/second from self-benchmark
    price: float = 0.0  # cost units per 1e9 instructions (cost QoC)
    #: How often this provider promises to heartbeat; the broker's failure
    #: detector scales its per-provider horizon accordingly.
    heartbeat_interval: float = 1.0


@_message("register_ack")
@dataclass
class RegisterAck(MessageBody):
    accepted: bool
    reason: str = ""


@_message("unregister")
@dataclass
class Unregister(MessageBody):
    provider_id: str


@_message("heartbeat")
@dataclass
class Heartbeat(MessageBody):
    """Periodic liveness + load report; also the failure detector input.

    ``sent_at`` is the sender's monotonic send timestamp; when non-zero
    the broker echoes it back in a :class:`HeartbeatAck` so the provider
    can measure its heartbeat round-trip time.  Zero (the default, used
    by the simulator) requests no ack, keeping simulated message flows
    unchanged.
    """

    provider_id: str
    free_slots: int
    queue_length: int = 0
    sent_at: float = 0.0


@_message("heartbeat_ack")
@dataclass
class HeartbeatAck(MessageBody):
    """Echo of a timestamped heartbeat (RTT measurement, telemetry only).

    Peers that predate this message ignore unknown envelope types, so
    the ack is safe to send to any provider that asked for it.
    """

    provider_id: str
    echo_sent_at: float


@_message("assign_execution")
@dataclass
class AssignExecution(MessageBody):
    """One replica of a Tasklet, shipped to one provider."""

    execution_id: str
    tasklet_id: str
    consumer_id: str
    program: dict[str, Any]  # CompiledProgram.to_dict()
    entry: str
    args: list[Any]
    seed: int
    fuel: int
    #: Content hash of ``program``; lets the provider's program cache hit
    #: without deserialising the payload.  Verified on every cache miss.
    program_fingerprint: str = ""


@_message("execution_result")
@dataclass
class ExecutionResult(MessageBody):
    """Terminal outcome of one execution attempt."""

    execution_id: str
    tasklet_id: str
    provider_id: str
    status: str  # ExecutionStatus.value
    value: Any = None
    error: str | None = None
    instructions: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0


@_message("execution_rejected")
@dataclass
class ExecutionRejected(MessageBody):
    execution_id: str
    tasklet_id: str
    provider_id: str
    reason: str = ""


@_message("cancel_execution")
@dataclass
class CancelExecution(MessageBody):
    """Sent when a replica's result is no longer needed (vote decided)."""

    execution_id: str


# ---------------------------------------------------------------------------
# Consumer <-> broker
# ---------------------------------------------------------------------------


@_message("submit_tasklet")
@dataclass
class SubmitTasklet(MessageBody):
    """A consumer hands a Tasklet to the broker."""

    tasklet: dict[str, Any]  # Tasklet.to_dict()


@_message("submit_ack")
@dataclass
class SubmitAck(MessageBody):
    tasklet_id: str
    accepted: bool
    reason: str = ""


@_message("tasklet_complete")
@dataclass
class TaskletComplete(MessageBody):
    """Final, voted outcome delivered to the consumer."""

    tasklet_id: str
    ok: bool
    value: Any = None
    error: str | None = None
    attempts: int = 0
    cost: float = 0.0  # total billed across all executions (cost QoC)
    executions: list[dict[str, Any]] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Consumer <-> broker (workflows)
# ---------------------------------------------------------------------------


@_message("submit_workflow")
@dataclass
class SubmitWorkflow(MessageBody):
    """A consumer hands a whole DAG of tasklets to the broker.

    ``workflow`` is a :class:`repro.dag.WorkflowSpec` wire dict: node
    templates referencing deduplicated program fingerprints, with
    ``$from``/``$gather`` placeholders in node args naming predecessor
    outputs.  The broker owns the graph from here — successors are
    released and their arguments materialised broker-side, with no
    consumer round-trip between stages.
    """

    workflow: dict[str, Any]  # WorkflowSpec.to_dict()


@_message("workflow_ack")
@dataclass
class WorkflowAck(MessageBody):
    """Broker's admission decision for one submitted workflow."""

    workflow_id: str
    accepted: bool
    reason: str = ""


@_message("workflow_update")
@dataclass
class WorkflowUpdate(MessageBody):
    """Advisory progress report: one node changed state.

    Sent when a node starts running and when it reaches a terminal
    state.  Consumers may ignore these; the terminal
    :class:`WorkflowComplete` carries everything that matters.
    """

    workflow_id: str
    node_id: str
    state: str  # repro.dag node state constant
    attempts: int = 0
    error: str | None = None


@_message("workflow_complete")
@dataclass
class WorkflowComplete(MessageBody):
    """Terminal outcome of a workflow.

    On success ``outputs`` maps each sink node id to its value.  On
    failure ``failed_node`` names the node that exhausted its retries
    and ``dependents`` the downstream nodes that could no longer run.
    ``nodes_memoized`` counts nodes short-circuited by the broker's
    result cache (zero executions).
    """

    workflow_id: str
    ok: bool
    outputs: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    failed_node: str = ""
    dependents: list[str] = field(default_factory=list)
    nodes_total: int = 0
    nodes_memoized: int = 0


# ---------------------------------------------------------------------------
# Broker <-> broker (federation)
# ---------------------------------------------------------------------------


@_message("peer_hello")
@dataclass
class PeerHello(MessageBody):
    """A broker announces itself to a configured peer.

    ``epoch`` is the sender's incarnation id (fresh per process start): a
    peer observing a *changed* epoch knows the broker restarted and that
    any work forwarded to the previous incarnation is gone.  The dialing
    side sets ``reply_expected`` so the listener answers with its own
    hello (with ``reply_expected=False``, terminating the exchange).
    """

    broker_id: str
    epoch: str
    reply_expected: bool = False


@_message("gossip_digest")
@dataclass
class GossipDigest(MessageBody):
    """Periodic peer summary: registry size, load, health grade counts.

    Doubles as the peer liveness signal — a peer whose digests stop
    arriving is declared dead after the configured tolerance.  ``grades``
    maps health grade -> provider count (empty when the sending broker
    runs without telemetry).
    """

    broker_id: str
    epoch: str
    sent_at: float = 0.0
    providers_total: int = 0
    providers_alive: int = 0
    free_slots: int = 0
    pending_tasklets: int = 0
    backlog_replicas: int = 0
    grades: dict[str, int] = field(default_factory=dict)


@_message("forward_tasklet")
@dataclass
class ForwardTasklet(MessageBody):
    """One tasklet placed on a peer broker's provider pool.

    The origin broker stays responsible to its consumer: the peer
    executes and returns a :class:`ForwardComplete` to ``origin_broker``
    rather than talking to the consumer directly.  Re-sending the same
    forward is idempotent (the peer re-acks in-flight work and re-answers
    completed work), which is how forwards survive a dropped peer link.
    ``hops`` guards against forwarding chains: a forwarded tasklet is
    never forwarded again.
    """

    origin_broker: str
    consumer_id: str
    tasklet: dict[str, Any]  # Tasklet.to_dict()
    hops: int = 1


@_message("forward_ack")
@dataclass
class ForwardAck(MessageBody):
    """Peer's admission decision for one forwarded tasklet."""

    tasklet_id: str
    consumer_id: str
    accepted: bool
    broker_id: str = ""
    reason: str = ""


@_message("forward_complete")
@dataclass
class ForwardComplete(MessageBody):
    """Terminal outcome of a forwarded tasklet, returned to the origin.

    ``executed_by`` names the broker whose providers actually executed
    the work ("" when the peer answered from its journal or result
    cache), so exactly-once accounting is auditable across the
    federation's journals.
    """

    tasklet_id: str
    consumer_id: str
    broker_id: str
    ok: bool
    value: Any = None
    error: str | None = None
    attempts: int = 0
    cost: float = 0.0
    executions: list[dict[str, Any]] = field(default_factory=list)
    executed_by: str = ""
