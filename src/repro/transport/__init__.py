"""Transport: typed messages plus the real TCP deployment (see tcp.py)."""

from .message import (
    AssignExecution,
    BROKER_ADDRESS,
    CancelExecution,
    Envelope,
    ExecutionRejected,
    ExecutionResult,
    Heartbeat,
    MESSAGE_TYPES,
    MessageBody,
    RegisterAck,
    RegisterProvider,
    SubmitAck,
    SubmitTasklet,
    TaskletComplete,
    Unregister,
    body_of,
)

__all__ = [
    "AssignExecution",
    "BROKER_ADDRESS",
    "CancelExecution",
    "Envelope",
    "ExecutionRejected",
    "ExecutionResult",
    "Heartbeat",
    "MESSAGE_TYPES",
    "MessageBody",
    "RegisterAck",
    "RegisterProvider",
    "SubmitAck",
    "SubmitTasklet",
    "TaskletComplete",
    "Unregister",
    "body_of",
]
