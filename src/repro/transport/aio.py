"""Asyncio event-loop transport core (broker side).

The broker used to run one reader thread per accepted connection; at
high fan-in that is a wall of thread stacks, GIL churn, and per-envelope
``sendall`` syscalls.  This module replaces it with a single-threaded
``asyncio`` event loop owned by :class:`LoopThread`:

* :class:`AioConnection` — one reader/writer pair per peer.  Writes are
  *coalesced*: ``send`` (callable from any thread) enqueues and schedules
  a flush on the loop; every envelope queued by the time the flush runs —
  including everything that accumulates while the previous ``drain()``
  awaits — is encoded and written in **one** socket write.  Under load
  the batch size grows automatically; idle links flush per message, so
  latency is never traded away when there is nothing to batch.
* :class:`LoopThread` — owns the loop on a daemon thread and bridges the
  synchronous public API (``start``/``stop``/``submit``) into it.

Frames are the dual-codec format of :mod:`repro.transport.codec`: the
reader accepts JSON and binary interleaved on one stream; the writer
emits whatever ``send_codec`` was negotiated for the peer (JSON until a
``hello`` advertises better).

Per-envelope *stamps* run at flush time, immediately before encoding —
that is what keeps ``Heartbeat.sent_at`` honest under coalescing: a
heartbeat that sat behind a large batch is stamped when it actually hits
the socket, not when it was enqueued, so RTT telemetry (and the EWMA
straggler watchdog fed by it) never sees batching delay as network
delay.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from typing import Callable

from ..common.errors import ConnectionClosed, TransportError
from ..common.ids import NodeId
from .codec import (
    CODEC_JSON,
    EnvelopeDecoder,
    Stamp,
    encode_batch,
)
from .message import Envelope

RECV_CHUNK = 262144

#: A flush larger than this is split across writes; bounds per-batch
#: encode latency so one huge program payload cannot starve small acks.
FLUSH_MAX_ENVELOPES = 512


class LoopThread:
    """One asyncio event loop running on a dedicated daemon thread."""

    def __init__(self, name: str = "aio"):
        self.loop = asyncio.new_event_loop()
        self._name = name
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    def start(self) -> "LoopThread":
        self._thread = threading.Thread(
            target=self._run, name=self._name, daemon=True
        )
        self._thread.start()
        self._started.wait(5.0)
        return self

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.call_soon(self._started.set)
        try:
            self.loop.run_forever()
            # Drain: give cancelled tasks one cycle to unwind before the
            # loop closes, so shutdown never leaks "pending task" noise.
            pending = asyncio.all_tasks(self.loop)
            for task in pending:
                task.cancel()
            if pending:
                self.loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
        finally:
            self.loop.close()

    def stop(self, timeout: float = 5.0) -> None:
        thread = self._thread
        if thread is None or not thread.is_alive():
            return
        try:
            self.loop.call_soon_threadsafe(self.loop.stop)
        except RuntimeError:
            return  # loop already closed
        thread.join(timeout)

    def submit(self, coro) -> "asyncio.Future":
        """Run a coroutine on the loop; returns a concurrent future."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def call_soon(self, fn: Callable, *args) -> None:
        """Schedule ``fn`` on the loop from any thread (loop-safe)."""
        thread = self._thread
        if thread is not None and threading.get_ident() == thread.ident:
            self.loop.call_soon(fn, *args)
        else:
            self.loop.call_soon_threadsafe(fn, *args)

    def on_loop(self) -> bool:
        thread = self._thread
        return thread is not None and threading.get_ident() == thread.ident


class AioConnection:
    """One framed peer link on the event loop, with write coalescing.

    ``metrics`` is the optional ``TransportMetrics`` bundle; bytes and
    envelope counts are reported per direction *and* per codec, flushes
    per flush, so a mixed-codec cluster is visible in the exposition.
    """

    def __init__(
        self,
        loop_thread: LoopThread,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        metrics=None,
    ):
        self._loop_thread = loop_thread
        self._reader = reader
        self._writer = writer
        self._metrics = metrics
        self.decoder = EnvelopeDecoder()
        #: Codec used for the *send* direction; flipped by negotiation.
        self.send_codec = CODEC_JSON
        #: Codecs the peer advertised in its hello ("" = never said).
        self.peer_codecs: tuple[str, ...] = ()
        self.peer_id: NodeId | None = None  # learned from hello/first envelope
        self._queue: deque[tuple[Envelope, Stamp | None]] = deque()
        self._queue_lock = threading.Lock()
        self._flush_scheduled = False
        self._closed = False

    # -- write path ---------------------------------------------------------

    def send(self, envelope: Envelope, stamp: Stamp | None = None) -> None:
        """Enqueue one envelope; thread-safe, never blocks on the socket.

        Raises :class:`ConnectionClosed` only when the link is already
        known dead; write errors discovered later surface through the
        reader loop's close path (the caller's failure detector).
        """
        with self._queue_lock:
            if self._closed:
                raise ConnectionClosed("connection closed")
            self._queue.append((envelope, stamp))
            if self._flush_scheduled:
                return
            self._flush_scheduled = True
        self._loop_thread.call_soon(self._spawn_flush)

    def _spawn_flush(self) -> None:
        if self._closed:
            return
        self._loop_thread.loop.create_task(self._flush())

    async def _flush(self) -> None:
        try:
            while True:
                with self._queue_lock:
                    if not self._queue or self._closed:
                        self._flush_scheduled = False
                        return
                    batch = []
                    while self._queue and len(batch) < FLUSH_MAX_ENVELOPES:
                        batch.append(self._queue.popleft())
                codec = self.send_codec
                data = encode_batch(batch, codec)
                self._writer.write(data)
                await self._writer.drain()
                if self._metrics is not None:
                    self._metrics.bytes.labels(
                        direction="out", codec=codec
                    ).inc(len(data))
                    self._metrics.messages.labels(
                        direction="out", codec=codec
                    ).inc(len(batch))
                    self._metrics.flushes.inc()
        except (OSError, asyncio.CancelledError, TransportError):
            # Encoding failures and dead sockets end the link; the reader
            # loop (or its absence) reports the close upstream.
            self._close_on_loop()

    # -- read path ----------------------------------------------------------

    async def run_reader(
        self,
        on_envelope: Callable[["AioConnection", Envelope], None],
    ) -> None:
        """Read frames until EOF/garbage; dispatch on the loop thread."""
        try:
            while True:
                chunk = await self._reader.read(RECV_CHUNK)
                if not chunk:
                    return
                try:
                    frames = self.decoder.feed(chunk)
                except TransportError:
                    # Undecodable peer == broken peer: drop the link; one
                    # bad client must never take down the node.
                    return
                if self._metrics is not None and frames:
                    for envelope, codec, size in frames:
                        self._metrics.bytes.labels(
                            direction="in", codec=codec
                        ).inc(size)
                        self._metrics.messages.labels(
                            direction="in", codec=codec
                        ).inc()
                for envelope, _codec, _size in frames:
                    on_envelope(self, envelope)
        except (OSError, asyncio.CancelledError):
            return
        finally:
            self._close_on_loop()

    # -- lifecycle ----------------------------------------------------------

    @property
    def sock(self):
        """The underlying socket (fault-injection hooks in tests)."""
        return self._writer.get_extra_info("socket")

    def close(self) -> None:
        """Thread-safe, idempotent close."""
        self._loop_thread.call_soon(self._close_on_loop)

    def _close_on_loop(self) -> None:
        with self._queue_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.clear()
        try:
            self._writer.close()
        except Exception:
            pass

    @property
    def closed(self) -> bool:
        return self._closed
