"""Standard Tasklet kernels.

A small library of Tasklet-language programs used throughout the examples,
tests, and benchmark harness.  They correspond to the application classes
the paper's middleware targets: embarrassingly parallel numeric work
(fractal rendering, Monte-Carlo simulation), dense linear algebra tiles,
and pure integer compute (used for provider self-benchmarking).

Each kernel is exposed as a source string plus a ``python_*`` reference
implementation.  The reference implementations serve two purposes:

* they are the *native baseline* in the VM-overhead experiment (F1) —
  the paper compared TVM execution against native code; our "native" is
  host-language Python, which preserves the measured quantity
  (interpretation overhead of the portable VM layer);
* tests use them as oracles for VM correctness.
"""

from __future__ import annotations

MANDELBROT_ROW = """
// One row of a Mandelbrot-set rendering: the classic bag-of-tasks unit.
func main(y: int, width: int, height: int, max_iter: int) -> array {
    var row: array = array(width);
    var ci: float = float(y) / float(height) * 2.0 - 1.0;
    for (var x: int = 0; x < width; x = x + 1) {
        var cr: float = float(x) / float(width) * 3.5 - 2.5;
        var zr: float = 0.0;
        var zi: float = 0.0;
        var iter: int = 0;
        while (iter < max_iter && zr * zr + zi * zi <= 4.0) {
            var t: float = zr * zr - zi * zi + cr;
            zi = 2.0 * zr * zi + ci;
            zr = t;
            iter = iter + 1;
        }
        row[x] = iter;
    }
    return row;
}
"""


def python_mandelbrot_row(y: int, width: int, height: int, max_iter: int) -> list[int]:
    """Reference implementation of :data:`MANDELBROT_ROW`."""
    row = [0] * width
    ci = y / height * 2.0 - 1.0
    for x in range(width):
        cr = x / width * 3.5 - 2.5
        zr = zi = 0.0
        iteration = 0
        while iteration < max_iter and zr * zr + zi * zi <= 4.0:
            zr, zi = zr * zr - zi * zi + cr, 2.0 * zr * zi + ci
            iteration += 1
        row[x] = iteration
    return row


MONTE_CARLO_PI = """
// Estimate pi by sampling `samples` points in the unit square.
// Deterministic per seed: replicas agree bit-for-bit.
func main(samples: int) -> int {
    var hits: int = 0;
    for (var i: int = 0; i < samples; i = i + 1) {
        var x: float = rand();
        var y: float = rand();
        if (x * x + y * y <= 1.0) {
            hits = hits + 1;
        }
    }
    return hits;
}
"""


MATMUL_TILE = """
// Multiply two square tiles given as flattened row-major arrays.
func main(a: array, b: array, n: int) -> array {
    var c: array = array(n * n);
    for (var i: int = 0; i < n; i = i + 1) {
        for (var j: int = 0; j < n; j = j + 1) {
            var acc: float = 0.0;
            for (var k: int = 0; k < n; k = k + 1) {
                acc = acc + float(a[i * n + k]) * float(b[k * n + j]);
            }
            c[i * n + j] = acc;
        }
    }
    return c;
}
"""


def python_matmul_tile(a: list[float], b: list[float], n: int) -> list[float]:
    """Reference implementation of :data:`MATMUL_TILE`."""
    c = [0.0] * (n * n)
    for i in range(n):
        for j in range(n):
            acc = 0.0
            for k in range(n):
                acc += float(a[i * n + k]) * float(b[k * n + j])
            c[i * n + j] = acc
    return c


FIBONACCI = """
// Naive recursive Fibonacci: stresses the call machinery.
func fib(n: int) -> int {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main(n: int) -> int {
    return fib(n);
}
"""


def python_fibonacci(n: int) -> int:
    """Reference implementation of :data:`FIBONACCI`."""
    if n < 2:
        return n
    return python_fibonacci(n - 1) + python_fibonacci(n - 2)


PRIME_COUNT = """
// Count primes below `limit` by trial division: pure integer compute,
// used as the provider self-benchmark kernel.
func is_prime(n: int) -> bool {
    if (n < 2) { return false; }
    if (n % 2 == 0) { return n == 2; }
    for (var d: int = 3; d * d <= n; d = d + 2) {
        if (n % d == 0) { return false; }
    }
    return true;
}
func main(limit: int) -> int {
    var count: int = 0;
    for (var n: int = 2; n < limit; n = n + 1) {
        if (is_prime(n)) { count = count + 1; }
    }
    return count;
}
"""


def python_prime_count(limit: int) -> int:
    """Reference implementation of :data:`PRIME_COUNT`."""

    def is_prime(n: int) -> bool:
        if n < 2:
            return False
        if n % 2 == 0:
            return n == 2
        d = 3
        while d * d <= n:
            if n % d == 0:
                return False
            d += 2
        return True

    return sum(1 for n in range(2, limit) if is_prime(n))


NUMERIC_INTEGRATION = """
// Integrate sin(x)*exp(-x/4) over [lo, hi] with the trapezoid rule.
func f(x: float) -> float {
    return sin(x) * exp(0.0 - x / 4.0);
}
func main(lo: float, hi: float, steps: int) -> float {
    var h: float = (hi - lo) / float(steps);
    var acc: float = (f(lo) + f(hi)) / 2.0;
    for (var i: int = 1; i < steps; i = i + 1) {
        acc = acc + f(lo + float(i) * h);
    }
    return acc * h;
}
"""


def python_numeric_integration(lo: float, hi: float, steps: int) -> float:
    """Reference implementation of :data:`NUMERIC_INTEGRATION`."""
    import math

    def f(x: float) -> float:
        return math.sin(x) * math.exp(0.0 - x / 4.0)

    h = (hi - lo) / float(steps)
    acc = (f(lo) + f(hi)) / 2.0
    for i in range(1, steps):
        acc += f(lo + float(i) * h)
    return acc * h


WORD_HISTOGRAM = """
// Toy data-parallel text kernel: histogram of character classes.
// Returns [letters, digits, spaces, other].
func main(text: string) -> array {
    var counts: array = [0, 0, 0, 0];
    for (var i: int = 0; i < len(text); i = i + 1) {
        var c: string = text[i];
        if (c >= "a" && c <= "z" || c >= "A" && c <= "Z") {
            counts[0] = int(counts[0]) + 1;
        } else {
            if (c >= "0" && c <= "9") {
                counts[1] = int(counts[1]) + 1;
            } else {
                if (c == " ") {
                    counts[2] = int(counts[2]) + 1;
                } else {
                    counts[3] = int(counts[3]) + 1;
                }
            }
        }
    }
    return counts;
}
"""


def python_word_histogram(text: str) -> list[int]:
    """Reference implementation of :data:`WORD_HISTOGRAM`."""
    counts = [0, 0, 0, 0]
    for character in text:
        if character.isascii() and character.isalpha():
            counts[0] += 1
        elif character.isdigit():
            counts[1] += 1
        elif character == " ":
            counts[2] += 1
        else:
            counts[3] += 1
    return counts


#: Registry used by the benchmark harness to sweep over kernels.
ALL_KERNELS: dict[str, str] = {
    "mandelbrot_row": MANDELBROT_ROW,
    "monte_carlo_pi": MONTE_CARLO_PI,
    "matmul_tile": MATMUL_TILE,
    "fibonacci": FIBONACCI,
    "prime_count": PRIME_COUNT,
    "numeric_integration": NUMERIC_INTEGRATION,
    "word_histogram": WORD_HISTOGRAM,
}
