"""The Tasklet itself: a self-contained unit of computation.

A Tasklet bundles everything a provider needs to execute it — compiled
bytecode, entry function, arguments, RNG seed, and resource limits — plus
the QoC goals the middleware must honour.  Tasklets are *closed*: they
reference no external state, which is what makes them freely placeable on
any TVM-hosting device and safely re-executable after a provider failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..common.errors import TaskletError
from ..common.ids import JobId, TaskletId
from ..tvm.bytecode import CompiledProgram
from ..tvm.vm import DEFAULT_FUEL, is_tasklet_value
from .qoc import QoC


@dataclass
class Tasklet:
    """One unit of computation, ready to be shipped and executed.

    ``seed`` feeds the TVM's deterministic PRNG.  All replicas of a
    Tasklet share the seed, so redundant executions are bit-identical and
    result voting is a plain equality check.
    """

    tasklet_id: TaskletId
    program: CompiledProgram
    entry: str
    args: list[Any] = field(default_factory=list)
    qoc: QoC = field(default_factory=QoC)
    seed: int = 0
    fuel: int = DEFAULT_FUEL
    job_id: JobId | None = None

    def __post_init__(self) -> None:
        if not self.program.has_function(self.entry):
            raise TaskletError(
                f"program has no entry function {self.entry!r} "
                f"(available: {', '.join(self.program.function_names)})"
            )
        entry_code = self.program.function(self.entry)
        if len(self.args) != entry_code.n_params:
            raise TaskletError(
                f"{self.entry}() expects {entry_code.n_params} arguments, "
                f"got {len(self.args)}"
            )
        for arg in self.args:
            if not is_tasklet_value(arg):
                raise TaskletError(f"argument {arg!r} is not a valid Tasklet value")
        if self.fuel <= 0:
            raise TaskletError(f"fuel must be positive, got {self.fuel}")

    # -- wire format --------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "tasklet_id": self.tasklet_id,
            "program": self.program.to_dict(),
            # Memoised on the program object: a bag of tasks sharing one
            # program pays the hash once, and providers key their caches
            # on it without deserialising the payload.
            "program_fingerprint": self.program.fingerprint(),
            "entry": self.entry,
            "args": list(self.args),
            "qoc": self.qoc.to_dict(),
            "seed": self.seed,
            "fuel": self.fuel,
            "job_id": self.job_id,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Tasklet":
        return cls(
            tasklet_id=TaskletId(data["tasklet_id"]),
            program=CompiledProgram.from_dict(data["program"]),
            entry=str(data["entry"]),
            args=list(data["args"]),
            qoc=QoC.from_dict(data.get("qoc", {})),
            seed=int(data.get("seed", 0)),
            fuel=int(data.get("fuel", DEFAULT_FUEL)),
            job_id=data.get("job_id"),
        )

    def describe(self) -> str:
        """One-line human-readable description for logs."""
        return (
            f"Tasklet({self.tasklet_id}, entry={self.entry}, "
            f"args={len(self.args)}, redundancy={self.qoc.redundancy})"
        )
