"""Quality of Computation (QoC) goals.

Tasklets are *best effort* by default: the middleware tries to execute
them once, and a lost provider simply loses the computation.  Applications
with stronger needs attach QoC goals to individual Tasklets; the broker
and the consumer library cooperate to honour them:

``reliability``
    Execute ``redundancy`` replicas on distinct providers and vote on the
    results; re-issue failed executions up to ``max_attempts`` times.
``speed``
    Prefer the fastest known providers (benchmark-aware scheduling)
    instead of balancing load.
``privacy`` (``local_only``)
    Never ship the Tasklet to a remote provider; the consumer's own TVM
    executes it.
``remote_only``
    Never execute locally (e.g. to save a phone's battery), even if no
    remote provider is currently available — the Tasklet waits.
``deadline_s``
    A soft per-Tasklet deadline; the broker re-issues executions that have
    not produced a result within it.
``cost_ceiling``
    Upper bound on provider price-per-gigacycle the broker may select
    (cost-aware extension).

The combination ``local_only + remote_only`` is contradictory and rejected
at construction time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..common.errors import QoCUnsatisfiable

#: Upper bound on replicas; beyond this the marginal reliability gain is
#: negligible while the provider-time cost keeps growing linearly.
MAX_REDUNDANCY = 7


@dataclass(frozen=True)
class QoC:
    """Immutable QoC goal set attached to a Tasklet.

    The default instance (``QoC()``) expresses pure best-effort execution.
    """

    redundancy: int = 1
    max_attempts: int = 1
    speed: bool = False
    local_only: bool = False
    remote_only: bool = False
    deadline_s: float | None = None
    cost_ceiling: float | None = None

    def __post_init__(self) -> None:
        if not 1 <= self.redundancy <= MAX_REDUNDANCY:
            raise QoCUnsatisfiable(
                f"redundancy must be in [1, {MAX_REDUNDANCY}], got {self.redundancy}"
            )
        if self.max_attempts < 1:
            raise QoCUnsatisfiable(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.local_only and self.remote_only:
            raise QoCUnsatisfiable("local_only and remote_only are contradictory")
        if self.local_only and self.redundancy > 1:
            raise QoCUnsatisfiable(
                "redundant execution is meaningless with local_only"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise QoCUnsatisfiable(f"deadline must be positive, got {self.deadline_s}")
        if self.cost_ceiling is not None and self.cost_ceiling < 0:
            raise QoCUnsatisfiable(
                f"cost ceiling must be non-negative, got {self.cost_ceiling}"
            )

    # -- classification used by broker and library --------------------------------

    @property
    def is_best_effort(self) -> bool:
        """True when no goal beyond single best-effort execution is set."""
        return self == QoC()

    @property
    def wants_voting(self) -> bool:
        """True when replica results must be compared before acceptance."""
        return self.redundancy >= 2

    # -- wire format --------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "redundancy": self.redundancy,
            "max_attempts": self.max_attempts,
            "speed": self.speed,
            "local_only": self.local_only,
            "remote_only": self.remote_only,
            "deadline_s": self.deadline_s,
            "cost_ceiling": self.cost_ceiling,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "QoC":
        return cls(
            redundancy=int(data.get("redundancy", 1)),
            max_attempts=int(data.get("max_attempts", 1)),
            speed=bool(data.get("speed", False)),
            local_only=bool(data.get("local_only", False)),
            remote_only=bool(data.get("remote_only", False)),
            deadline_s=data.get("deadline_s"),
            cost_ceiling=data.get("cost_ceiling"),
        )

    # -- convenience constructors ---------------------------------------------------

    @classmethod
    def reliable(cls, redundancy: int = 3, max_attempts: int = 5) -> "QoC":
        """Redundant execution with voting and re-issue."""
        return cls(redundancy=redundancy, max_attempts=max_attempts)

    @classmethod
    def fast(cls) -> "QoC":
        """Benchmark-aware provider selection."""
        return cls(speed=True)

    @classmethod
    def private(cls) -> "QoC":
        """Local-only execution (data never leaves the device)."""
        return cls(local_only=True)
