"""Core Tasklet model: the unit of computation, QoC goals, results, futures."""

from .futures import TaskletFuture
from .qoc import MAX_REDUNDANCY, QoC
from .results import ExecutionRecord, ExecutionStatus, TaskletResult, VoteCollector
from .tasklet import Tasklet

__all__ = [
    "TaskletFuture",
    "MAX_REDUNDANCY",
    "QoC",
    "ExecutionRecord",
    "ExecutionStatus",
    "TaskletResult",
    "VoteCollector",
    "Tasklet",
]
