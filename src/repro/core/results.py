"""Execution results and replica voting.

One Tasklet can produce several :class:`ExecutionRecord`\\ s (replicas,
retries).  The broker folds them through a :class:`VoteCollector` to
decide the final :class:`TaskletResult` the consumer sees.

Because Tasklets are deterministic (shared seed, closed world), honest
replicas return *identical* values; voting is therefore exact-equality
majority, which catches both corrupted results and byzantine providers
without any application-specific comparison logic.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any

from ..common.ids import ExecutionId, NodeId, TaskletId


class ExecutionStatus(enum.Enum):
    """Terminal status of one execution attempt."""

    SUCCESS = "success"
    VM_ERROR = "vm_error"  # the Tasklet itself failed (type error, fuel...)
    PROVIDER_LOST = "provider_lost"  # crash/churn before a result arrived
    TIMEOUT = "timeout"  # deadline-based re-issue gave up on it
    REJECTED = "rejected"  # provider refused (overloaded, shutting down)


@dataclass
class ExecutionRecord:
    """Outcome of one execution attempt on one provider."""

    execution_id: ExecutionId
    tasklet_id: TaskletId
    provider_id: NodeId
    status: ExecutionStatus
    value: Any = None
    error: str | None = None
    instructions: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is ExecutionStatus.SUCCESS

    @property
    def duration(self) -> float:
        return max(0.0, self.finished_at - self.started_at)

    def to_dict(self) -> dict[str, Any]:
        return {
            "execution_id": self.execution_id,
            "tasklet_id": self.tasklet_id,
            "provider_id": self.provider_id,
            "status": self.status.value,
            "value": self.value,
            "error": self.error,
            "instructions": self.instructions,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExecutionRecord":
        return cls(
            execution_id=ExecutionId(data["execution_id"]),
            tasklet_id=TaskletId(data["tasklet_id"]),
            provider_id=NodeId(data["provider_id"]),
            status=ExecutionStatus(data["status"]),
            value=data.get("value"),
            error=data.get("error"),
            instructions=int(data.get("instructions", 0)),
            started_at=float(data.get("started_at", 0.0)),
            finished_at=float(data.get("finished_at", 0.0)),
        )


@dataclass
class TaskletResult:
    """Final, consumer-visible outcome of a Tasklet."""

    tasklet_id: TaskletId
    ok: bool
    value: Any = None
    error: str | None = None
    attempts: int = 0
    cost: float = 0.0  # billed cost units (see repro.broker.accounting)
    executions: list[ExecutionRecord] = field(default_factory=list)
    submitted_at: float = 0.0
    completed_at: float = 0.0

    @property
    def latency(self) -> float:
        """End-to-end time from submission to final result."""
        return max(0.0, self.completed_at - self.submitted_at)

    @property
    def provider_seconds(self) -> float:
        """Total provider time consumed across all executions."""
        return sum(record.duration for record in self.executions)


def _vote_key(value: Any) -> str:
    """Canonical representation used to group equal replica results.

    JSON with sorted keys: structural equality for the nested
    list/scalar values Tasklets return, while distinguishing ``1`` from
    ``1.0`` and ``True`` (Tasklet results keep their runtime types).
    """

    def tag(item: Any) -> Any:
        if isinstance(item, bool):
            return ["b", item]
        if isinstance(item, int):
            return ["i", item]
        if isinstance(item, float):
            return ["f", repr(item)]
        if isinstance(item, str):
            return ["s", item]
        if isinstance(item, list):
            return ["l", [tag(element) for element in item]]
        if item is None:
            return ["n"]
        raise TypeError(f"unexpected result type {type(item).__name__}")

    return json.dumps(tag(value), separators=(",", ":"))


class VoteCollector:
    """Collects replica results for one Tasklet and decides acceptance.

    ``required`` is the number of *agreeing* successful results needed.
    For plain redundancy-r execution the broker uses
    ``required = r // 2 + 1`` (simple majority), so r=2 tolerates one
    lost replica and r=3 additionally tolerates one corrupted value.
    """

    def __init__(self, redundancy: int, required: int | None = None):
        if redundancy < 1:
            raise ValueError(f"redundancy must be >= 1, got {redundancy}")
        self.redundancy = redundancy
        self.required = required if required is not None else redundancy // 2 + 1
        self.successes: dict[str, list[ExecutionRecord]] = {}
        self.failures: list[ExecutionRecord] = []

    def add(self, record: ExecutionRecord) -> None:
        """Fold in one terminal execution record."""
        if record.ok:
            self.successes.setdefault(_vote_key(record.value), []).append(record)
        else:
            self.failures.append(record)

    @property
    def all_records(self) -> list[ExecutionRecord]:
        records = list(self.failures)
        for group in self.successes.values():
            records.extend(group)
        return records

    def winner(self) -> list[ExecutionRecord] | None:
        """The agreeing group that reached ``required`` votes, if any."""
        for group in self.successes.values():
            if len(group) >= self.required:
                return group
        return None

    @property
    def decided(self) -> bool:
        return self.winner() is not None

    def disagreement(self) -> bool:
        """True when successful replicas returned conflicting values."""
        return len(self.successes) > 1
