"""Futures returned by the consumer library.

A :class:`TaskletFuture` is resolved exactly once, from whatever thread or
event-loop callback delivers the final :class:`TaskletResult`.  It works
in both deployment modes:

* in the **simulator**, ``wait`` is never called — the simulation runner
  drains the event loop and then reads ``result()`` (``done`` is already
  true);
* on the **real transport**, ``wait`` blocks the consumer thread on a
  condition variable until the receive thread resolves the future.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from ..common.errors import ExecutionFailed, TaskletError, TimeoutExpired
from ..common.ids import TaskletId
from .results import TaskletResult


class TaskletFuture:
    """Write-once container for a Tasklet's final result."""

    def __init__(self, tasklet_id: TaskletId):
        self.tasklet_id = tasklet_id
        self._condition = threading.Condition()
        self._result: TaskletResult | None = None
        self._exception: TaskletError | None = None
        self._callbacks: list[Callable[[TaskletResult], None]] = []

    # -- producer side ----------------------------------------------------------

    def resolve(self, result: TaskletResult) -> None:
        """Deliver the final result.  Second resolution is ignored —
        duplicate delivery is normal when a re-issued execution and the
        original both eventually answer."""
        with self._condition:
            if self._result is not None:
                return
            self._result = result
            callbacks = list(self._callbacks)
            self._condition.notify_all()
        for callback in callbacks:
            callback(result)

    def fail(self, exc: TaskletError, result: TaskletResult | None = None) -> None:
        """Resolve with a *typed* failure instead of a broker-voted result.

        Used when the middleware itself can no longer deliver an answer
        (e.g. the broker connection died): waiters wake with a failed
        :class:`TaskletResult` and ``result()`` raises ``exc`` rather than
        the generic :class:`ExecutionFailed`.  Like :meth:`resolve`, the
        first write wins; a genuine result arriving later is ignored.
        """
        if result is None:
            result = TaskletResult(
                tasklet_id=self.tasklet_id, ok=False, error=str(exc)
            )
        with self._condition:
            if self._result is not None:
                return
            self._exception = exc
            self._result = result
            callbacks = list(self._callbacks)
            self._condition.notify_all()
        for callback in callbacks:
            callback(result)

    # -- consumer side ----------------------------------------------------------

    @property
    def done(self) -> bool:
        with self._condition:
            return self._result is not None

    def exception(self) -> TaskletError | None:
        """The typed middleware failure, if the future was ``fail``-ed."""
        with self._condition:
            return self._exception

    def add_done_callback(self, callback: Callable[[TaskletResult], None]) -> None:
        """Run ``callback(result)`` on resolution (immediately if done)."""
        with self._condition:
            if self._result is None:
                self._callbacks.append(callback)
                return
            result = self._result
        callback(result)

    def wait(self, timeout: float | None = None) -> TaskletResult:
        """Block until resolved; raises :class:`TimeoutExpired` on timeout."""
        with self._condition:
            if self._result is None:
                self._condition.wait(timeout)
            if self._result is None:
                raise TimeoutExpired(
                    f"tasklet {self.tasklet_id} still pending after {timeout}s"
                )
            return self._result

    def result(self, timeout: float | None = None) -> Any:
        """Return the Tasklet's value, or raise :class:`ExecutionFailed`.

        This is the high-level accessor most applications use; ``wait``
        returns the full :class:`TaskletResult` record instead.
        """
        outcome = self.wait(timeout)
        with self._condition:
            exception = self._exception
        if exception is not None:
            raise exception
        if not outcome.ok:
            raise ExecutionFailed(
                f"tasklet {self.tasklet_id} failed: {outcome.error}",
                attempts=outcome.attempts,
            )
        return outcome.value
