"""Tasklets: a middleware for computation offloading across heterogeneous devices.

Reproduction of *"Tasklets: Overcoming Heterogeneity in Distributed
Computing Systems"* (Schäfer, Edinger, VanSyckel, Paluska, Becker —
ICDCSW 2016).  See DESIGN.md for the system inventory and EXPERIMENTS.md
for the reproduced evaluation.

Public API tour::

    from repro import Simulation, QoC, make_pool

    sim = Simulation(seed=1)
    for config in make_pool({"desktop": 4, "smartphone": 8}):
        sim.add_provider(config)
    consumer = sim.add_consumer()
    future = consumer.library.submit(
        "func main(n: int) -> int { return n * n; }", args=[12],
        qoc=QoC.reliable(redundancy=3),
    )
    sim.run()
    assert future.result(0) == 144

For a real deployment on sockets, swap the simulator for
:class:`repro.transport.tcp.TcpBroker` / ``TcpProvider`` / ``TcpConsumer``
— the middleware cores are identical.
"""

from .broker import BrokerConfig, BrokerCore, FederationConfig, make_strategy
from .common.errors import (
    BrokerUnreachable,
    ExecutionFailed,
    FederationExhausted,
    QoCUnsatisfiable,
    TaskletError,
    TimeoutExpired,
    VMError,
    WorkflowError,
    WorkflowFailed,
    WorkflowSpecError,
)
from .consumer import TaskletLibrary
from .core import QoC, Tasklet, TaskletFuture, TaskletResult
from .dag import (
    WorkflowBuilder,
    WorkflowHandle,
    WorkflowSpec,
    from_node,
    gather,
)
from .obs import MetricsRegistry, Telemetry, build_trace_tree, format_trace
from .provider import ProviderConfig, ProviderCore, run_benchmark
from .sim import ExponentialChurn, Simulation, make_pool
from .tvm import CompiledProgram, compile_source, execute

__version__ = "1.0.0"

__all__ = [
    "BrokerConfig",
    "BrokerCore",
    "FederationConfig",
    "make_strategy",
    "BrokerUnreachable",
    "ExecutionFailed",
    "FederationExhausted",
    "QoCUnsatisfiable",
    "TaskletError",
    "TimeoutExpired",
    "VMError",
    "WorkflowError",
    "WorkflowFailed",
    "WorkflowSpecError",
    "WorkflowBuilder",
    "WorkflowHandle",
    "WorkflowSpec",
    "from_node",
    "gather",
    "TaskletLibrary",
    "QoC",
    "Tasklet",
    "TaskletFuture",
    "TaskletResult",
    "MetricsRegistry",
    "Telemetry",
    "build_trace_tree",
    "format_trace",
    "ProviderConfig",
    "ProviderCore",
    "run_benchmark",
    "ExponentialChurn",
    "Simulation",
    "make_pool",
    "CompiledProgram",
    "compile_source",
    "execute",
    "__version__",
]
