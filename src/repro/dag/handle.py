"""Consumer-side handle for an in-flight workflow."""

from __future__ import annotations

import threading
from typing import Any

from ..common.errors import TaskletError, TimeoutExpired, WorkflowFailed


class WorkflowHandle:
    """Write-once future resolving to a workflow's sink outputs.

    The consumer core updates :attr:`node_states` as ``workflow_update``
    messages arrive, then resolves (or fails) the handle on
    ``workflow_complete``.  :meth:`result` blocks the application thread
    until then.
    """

    def __init__(self, workflow_id: str):
        self.workflow_id = workflow_id
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._outputs: dict[str, Any] | None = None
        self._error: TaskletError | None = None
        #: Last reported state per node id (advisory; updated live).
        self.node_states: dict[str, str] = {}
        #: Node-count summary from the terminal message, if any.
        self.nodes_total = 0
        self.nodes_memoized = 0

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def resolve(self, outputs: dict[str, Any]) -> None:
        """Resolve with sink outputs; later calls are ignored."""
        with self._lock:
            if self._event.is_set():
                return
            self._outputs = dict(outputs)
            self._event.set()

    def fail(self, error: TaskletError) -> None:
        """Fail the workflow; later calls are ignored."""
        with self._lock:
            if self._event.is_set():
                return
            self._error = error
            self._event.set()

    def result(self, timeout: float | None = None) -> dict[str, Any]:
        """Sink-node outputs keyed by node id.

        Raises :class:`WorkflowFailed` (or the transport error that sank
        the workflow) on failure, :class:`TimeoutExpired` if ``timeout``
        elapses first.
        """
        if not self._event.wait(timeout):
            raise TimeoutExpired(
                f"workflow {self.workflow_id!r} still pending after "
                f"{timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._outputs is not None
        return dict(self._outputs)

    def exception(self, timeout: float | None = None) -> TaskletError | None:
        """The failure, or None on success (blocks like :meth:`result`)."""
        if not self._event.wait(timeout):
            raise TimeoutExpired(
                f"workflow {self.workflow_id!r} still pending after "
                f"{timeout}s"
            )
        return self._error


__all__ = ["WorkflowHandle", "WorkflowFailed"]
