"""Task-Bench-style dependency-pattern generators.

Task Bench (Slaughter et al., PAPERS.md) parameterizes workloads as a
grid of tasks with a *dependency pattern* between consecutive stages.
This module reproduces the four classic patterns as
:class:`~repro.dag.spec.WorkflowSpec` generators over a single mixing
kernel, so experiments can sweep shape (width/depth) independently of
per-node work:

``chain(depth)``
    A linear pipeline — one node per stage.
``stencil(width, depth)``
    Each node depends on its 1D neighbourhood ``{i-1, i, i+1}`` in the
    previous stage (boundaries clamp).
``tree(branching, depth)``
    A reduction tree: ``branching**depth`` leaves folded to one root.
``butterfly(width, depth)``
    FFT-style: stage ``s`` node ``i`` depends on ``(s-1, i)`` and
    ``(s-1, i XOR 2**((s-1) % log2(width)))``.

Every node runs :data:`DAG_KERNEL`: a deterministic integer fold over
its gathered predecessor outputs plus a fuel-proportional busywork
loop.  :func:`reference_values` is the pure-Python oracle, so tests and
experiments can assert end-to-end correctness of broker-side argument
injection, not just completion counts.
"""

from __future__ import annotations

from .spec import WorkflowBuilder, WorkflowSpec, gather, resolve_arg

_MOD = 1000003

#: Mixing kernel run by every generated node.  ``inputs`` gathers the
#: predecessor outputs (an empty array for source nodes), ``work``
#: scales a busywork loop, ``salt`` makes node outputs distinct.
DAG_KERNEL = """
// Fold predecessor outputs, then burn `work` iterations of busywork.
func main(inputs: array, work: int, salt: int) -> int {
    var acc: int = salt % 1000003;
    for (var i: int = 0; i < len(inputs); i = i + 1) {
        acc = (acc * 31 + int(inputs[i])) % 1000003;
    }
    var mix: int = 0;
    for (var n: int = 0; n < work; n = n + 1) {
        mix = (mix + n * n) % 1000003;
    }
    return (acc + mix) % 1000003;
}
"""


def python_dag_kernel(inputs: list[int], work: int, salt: int) -> int:
    """Reference implementation of :data:`DAG_KERNEL`."""
    acc = salt % _MOD
    for value in inputs:
        acc = (acc * 31 + int(value)) % _MOD
    mix = 0
    for n in range(work):
        mix = (mix + n * n) % _MOD
    return (acc + mix) % _MOD


def _node_id(stage: int, index: int) -> str:
    return f"s{stage}x{index}"


def _grid(
    workflow_id: str,
    width: int,
    depth: int,
    deps_of: "callable",
    work: int,
    salt: int,
    max_attempts: int,
) -> WorkflowSpec:
    """Build a width x depth grid where stage-s deps come from stage s-1."""
    if width < 1 or depth < 1:
        raise ValueError("width and depth must be >= 1")
    build = WorkflowBuilder(workflow_id)
    for stage in range(depth):
        for index in range(width):
            if stage == 0:
                inputs: object = [salt + index]
            else:
                preds = [_node_id(stage - 1, p) for p in deps_of(stage, index)]
                inputs = gather(preds)
            build.node(
                DAG_KERNEL,
                args=[inputs, work, salt + stage * width + index],
                node_id=_node_id(stage, index),
                max_attempts=max_attempts,
            )
    return build.build()


def chain(
    depth: int, work: int = 200, salt: int = 1, max_attempts: int = 1
) -> WorkflowSpec:
    """Linear pipeline: ``depth`` stages, one node each."""
    return _grid(
        f"chain-d{depth}", 1, depth, lambda stage, index: [0], work, salt,
        max_attempts,
    )


def stencil(
    width: int, depth: int, work: int = 200, salt: int = 1,
    max_attempts: int = 1,
) -> WorkflowSpec:
    """1D stencil: node ``i`` reads ``{i-1, i, i+1}`` of the prior stage."""

    def deps(stage: int, index: int) -> list[int]:
        lo = max(0, index - 1)
        hi = min(width - 1, index + 1)
        return list(range(lo, hi + 1))

    return _grid(
        f"stencil-w{width}d{depth}", width, depth, deps, work, salt,
        max_attempts,
    )


def tree(
    branching: int, depth: int, work: int = 200, salt: int = 1,
    max_attempts: int = 1,
) -> WorkflowSpec:
    """Reduction tree: ``branching**depth`` leaves folded to one root.

    Stage 0 is the widest (the leaves); each later stage folds
    ``branching`` children into one parent.
    """
    if branching < 2 or depth < 1:
        raise ValueError("branching must be >= 2 and depth >= 1")
    build = WorkflowBuilder(f"tree-b{branching}d{depth}")
    for stage in range(depth + 1):
        width = branching ** (depth - stage)
        for index in range(width):
            if stage == 0:
                inputs: object = [salt + index]
            else:
                preds = [
                    _node_id(stage - 1, index * branching + child)
                    for child in range(branching)
                ]
                inputs = gather(preds)
            build.node(
                DAG_KERNEL,
                args=[inputs, work, salt + stage * 7919 + index],
                node_id=_node_id(stage, index),
                max_attempts=max_attempts,
            )
    return build.build()


def butterfly(
    width: int, depth: int | None = None, work: int = 200, salt: int = 1,
    max_attempts: int = 1,
) -> WorkflowSpec:
    """FFT butterfly over ``width`` lanes (must be a power of two).

    Stage ``s >= 1`` node ``i`` depends on ``(s-1, i)`` and its XOR
    partner ``(s-1, i ^ 2**((s-1) % log2(width)))``.  ``depth`` defaults
    to ``log2(width) + 1`` — one full mixing pass.
    """
    if width < 2 or width & (width - 1):
        raise ValueError("width must be a power of two >= 2")
    log2w = width.bit_length() - 1
    if depth is None:
        depth = log2w + 1

    def deps(stage: int, index: int) -> list[int]:
        partner = index ^ (1 << ((stage - 1) % log2w))
        return sorted({index, partner})

    return _grid(
        f"butterfly-w{width}d{depth}", width, depth, deps, work, salt,
        max_attempts,
    )


def reference_values(spec: WorkflowSpec) -> dict[str, int]:
    """Pure-Python oracle: expected output of every node in ``spec``.

    Only valid for specs built from :data:`DAG_KERNEL` by this module's
    generators (args are ``[inputs, work, salt]``).
    """
    values: dict[str, int] = {}
    for node_id in spec.topo_order():
        node = spec.node(node_id)
        inputs = resolve_arg(node.args[0], values)
        values[node_id] = python_dag_kernel(
            list(inputs), int(node.args[1]), int(node.args[2])
        )
    return values
