"""Sans-IO dependency scheduler for one workflow.

The :class:`DagScheduler` owns the node-state machine of a single
:class:`~repro.dag.spec.WorkflowSpec`:

::

    BLOCKED ──deps done──▶ READY ──issued──▶ RUNNING ──ok──▶ DONE
                                                │
                                                └──retries exhausted──▶ FAILED

It performs no I/O and knows nothing about envelopes, providers, or
journals — the broker drives it: :meth:`start` yields the initially
ready nodes, :meth:`complete` records an output and yields newly
released nodes, :meth:`args_of` materialises a node's argument list by
resolving ``$from``/``$gather`` placeholders against recorded outputs.
The same object is rebuilt during journal recovery by replaying
completions in topological order.
"""

from __future__ import annotations

from typing import Any

from .spec import WorkflowSpec, resolve_arg

#: Node states.
BLOCKED = "blocked"
READY = "ready"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: States a node can no longer leave.
TERMINAL_STATES = frozenset({DONE, FAILED})


class DagScheduler:
    """Tracks node states and releases nodes as predecessors complete."""

    def __init__(self, spec: WorkflowSpec):
        self.spec = spec
        self._deps: dict[str, set[str]] = {
            node.node_id: set(node.deps()) for node in spec.nodes
        }
        self._successors: dict[str, list[str]] = spec.successors()
        self._state: dict[str, str] = {
            node.node_id: BLOCKED for node in spec.nodes
        }
        self._values: dict[str, Any] = {}
        self._failed_node: str | None = None
        self._started = False

    # -- queries ------------------------------------------------------------

    def state_of(self, node_id: str) -> str:
        return self._state[node_id]

    @property
    def states(self) -> dict[str, str]:
        return dict(self._state)

    @property
    def failed_node(self) -> str | None:
        return self._failed_node

    @property
    def finished(self) -> bool:
        """True once every node is done, or any node has failed."""
        if self._failed_node is not None:
            return True
        return all(state == DONE for state in self._state.values())

    @property
    def failed(self) -> bool:
        return self._failed_node is not None

    def counts(self) -> dict[str, int]:
        """State -> node count (all five states always present)."""
        out = {BLOCKED: 0, READY: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        for state in self._state.values():
            out[state] += 1
        return out

    def value_of(self, node_id: str) -> Any:
        return self._values[node_id]

    def outputs(self) -> dict[str, Any]:
        """Sink-node outputs (the workflow's results), if computed."""
        return {
            node_id: self._values[node_id]
            for node_id in self.spec.sinks()
            if node_id in self._values
        }

    def dependents_of(self, node_id: str) -> list[str]:
        """Every transitive successor of ``node_id`` (BFS order)."""
        seen: dict[str, None] = {}
        frontier = list(self._successors.get(node_id, []))
        while frontier:
            succ = frontier.pop(0)
            if succ in seen:
                continue
            seen[succ] = None
            frontier.extend(self._successors.get(succ, []))
        return list(seen)

    def args_of(self, node_id: str) -> list[Any]:
        """The node's argument list with placeholders resolved.

        Only valid once every predecessor is DONE (i.e. the node is
        READY or later); raises ``KeyError`` otherwise.
        """
        node = self.spec.node(node_id)
        return [resolve_arg(arg, self._values) for arg in node.args]

    # -- transitions --------------------------------------------------------

    def start(self) -> list[str]:
        """Mark dependency-free nodes READY; returns them (topo order)."""
        self._started = True
        released: list[str] = []
        for node in self.spec.nodes:
            if self._state[node.node_id] == BLOCKED and not self._deps[node.node_id]:
                self._state[node.node_id] = READY
                released.append(node.node_id)
        return released

    def mark_running(self, node_id: str) -> None:
        if self._state[node_id] != READY:
            raise ValueError(
                f"node {node_id!r} is {self._state[node_id]}, not ready"
            )
        self._state[node_id] = RUNNING

    def complete(self, node_id: str, value: Any) -> list[str]:
        """Record a node's output; returns newly READY successors.

        Accepts completion from READY as well as RUNNING so recovery and
        memoization can short-circuit nodes that were never issued.
        Completing an already-DONE node is a no-op (idempotent replay).
        """
        state = self._state[node_id]
        if state == DONE:
            return []
        if state not in (READY, RUNNING):
            raise ValueError(
                f"node {node_id!r} is {state}, cannot complete"
            )
        self._state[node_id] = DONE
        self._values[node_id] = value
        released: list[str] = []
        for succ in self._successors.get(node_id, []):
            deps = self._deps[succ]
            deps.discard(node_id)
            if not deps and self._state[succ] == BLOCKED:
                self._state[succ] = READY
                released.append(succ)
        return released

    def fail(self, node_id: str) -> list[str]:
        """Mark a node FAILED; returns its (transitive) dependents.

        The first failure wins: it fails the workflow as a whole and
        reports the dependents that can now never run (their inputs do
        not exist).  Later failures still mark their node but report
        nothing — the graph's fate is already decided.
        """
        if self._state[node_id] not in TERMINAL_STATES:
            self._state[node_id] = FAILED
        if self._failed_node is not None:
            return []
        self._failed_node = node_id
        return self.dependents_of(node_id)
