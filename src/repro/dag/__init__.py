"""DAG tasklet workflows: broker-held dependency scheduling.

A workflow is a whole graph of Tasklets submitted in one message: the
broker owns the DAG, releases nodes as predecessors complete, and
injects predecessor outputs into successor arguments server-side — no
consumer round-trip between stages.  See :mod:`repro.dag.spec` for the
wire format, :mod:`repro.dag.scheduler` for the node-state machine, and
:mod:`repro.dag.patterns` for Task-Bench-style scenario generators.
"""

from ..common.errors import WorkflowError, WorkflowFailed, WorkflowSpecError
from .handle import WorkflowHandle
from .scheduler import (
    BLOCKED,
    DONE,
    FAILED,
    READY,
    RUNNING,
    TERMINAL_STATES,
    DagScheduler,
)
from .spec import (
    NodeSpec,
    WorkflowBuilder,
    WorkflowSpec,
    arg_refs,
    from_node,
    gather,
    resolve_arg,
)

__all__ = [
    "BLOCKED",
    "READY",
    "RUNNING",
    "DONE",
    "FAILED",
    "TERMINAL_STATES",
    "DagScheduler",
    "NodeSpec",
    "WorkflowBuilder",
    "WorkflowSpec",
    "WorkflowHandle",
    "WorkflowError",
    "WorkflowFailed",
    "WorkflowSpecError",
    "arg_refs",
    "from_node",
    "gather",
    "resolve_arg",
]
