"""Workflow specifications: DAGs of Tasklets with declared data edges.

A :class:`WorkflowSpec` is the wire-form description of a whole
computation graph the consumer hands to the broker in one message.  Each
:class:`NodeSpec` references a program by *fingerprint* (the programs
themselves travel once, deduplicated in :attr:`WorkflowSpec.programs`)
and lists its arguments; an argument may be a literal Tasklet value or a
*placeholder* naming predecessor outputs:

``{"$from": "map3"}``
    Replaced broker-side with the output value of node ``map3``.
``{"$gather": ["a", "b", "c"]}``
    Replaced with the list ``[value(a), value(b), value(c)]`` in order.

Edges are therefore implicit in the argument placeholders; ``after``
adds pure ordering dependencies that carry no data.  The broker resolves
placeholders as predecessors complete — successor Tasklets are released
without a consumer round-trip per stage.

:class:`WorkflowBuilder` is the convenience layer applications use::

    build = WorkflowBuilder("pipeline")
    first = build.node(SOURCE, args=[8])
    second = build.node(SOURCE, args=[from_node(first)])
    spec = build.build()
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any

from ..common.errors import WorkflowSpecError
from ..tvm.bytecode import CompiledProgram
from ..tvm.compiler import compile_source
from ..tvm.vm import DEFAULT_FUEL, is_tasklet_value

#: Placeholder keys recognised inside node argument lists.
FROM_KEY = "$from"
GATHER_KEY = "$gather"


def from_node(node_id: str) -> dict[str, str]:
    """Placeholder for one predecessor's output value."""
    return {FROM_KEY: str(node_id)}


def gather(node_ids: list[str]) -> dict[str, list[str]]:
    """Placeholder for a list of predecessor outputs, in order."""
    return {GATHER_KEY: [str(node_id) for node_id in node_ids]}


def _is_placeholder(value: Any) -> bool:
    return isinstance(value, dict) and (FROM_KEY in value or GATHER_KEY in value)


def arg_refs(value: Any) -> list[str]:
    """Node ids referenced by placeholders inside one argument (in order)."""
    if isinstance(value, dict):
        if FROM_KEY in value:
            return [str(value[FROM_KEY])]
        if GATHER_KEY in value:
            return [str(node_id) for node_id in value[GATHER_KEY]]
        return []
    if isinstance(value, list):
        refs: list[str] = []
        for item in value:
            refs.extend(arg_refs(item))
        return refs
    return []


def resolve_arg(value: Any, values: dict[str, Any]) -> Any:
    """Replace placeholders in one argument with predecessor outputs."""
    if isinstance(value, dict):
        if FROM_KEY in value:
            return values[str(value[FROM_KEY])]
        if GATHER_KEY in value:
            return [values[str(node_id)] for node_id in value[GATHER_KEY]]
        return value
    if isinstance(value, list):
        return [resolve_arg(item, values) for item in value]
    return value


def _arg_is_wireable(value: Any) -> bool:
    """Literal parts must be Tasklet values; placeholders are checked later."""
    if _is_placeholder(value):
        refs = arg_refs(value)
        return all(isinstance(ref, str) and ref for ref in refs)
    if isinstance(value, list):
        return all(_arg_is_wireable(item) for item in value)
    return is_tasklet_value(value)


@dataclass
class NodeSpec:
    """One node of a workflow: a Tasklet template awaiting its inputs."""

    node_id: str
    program_fingerprint: str
    entry: str = "main"
    args: list[Any] = field(default_factory=list)
    seed: int = 0
    fuel: int = DEFAULT_FUEL
    #: Re-issue budget for this node's executions (QoC ``max_attempts``).
    max_attempts: int = 1
    #: Pure ordering dependencies (no data flows along these edges).
    after: list[str] = field(default_factory=list)

    def deps(self) -> list[str]:
        """Predecessors, in placeholder order then ``after`` order, unique."""
        seen: dict[str, None] = {}
        for arg in self.args:
            for ref in arg_refs(arg):
                seen.setdefault(ref, None)
        for ref in self.after:
            seen.setdefault(str(ref), None)
        return list(seen)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "node_id": self.node_id,
            "program_fingerprint": self.program_fingerprint,
            "entry": self.entry,
            "args": list(self.args),
            "seed": self.seed,
            "fuel": self.fuel,
            "max_attempts": self.max_attempts,
        }
        if self.after:
            data["after"] = list(self.after)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "NodeSpec":
        try:
            return cls(
                node_id=str(data["node_id"]),
                program_fingerprint=str(data["program_fingerprint"]),
                entry=str(data.get("entry", "main")),
                args=list(data.get("args", [])),
                seed=int(data.get("seed", 0)),
                fuel=int(data.get("fuel", DEFAULT_FUEL)),
                max_attempts=int(data.get("max_attempts", 1)),
                after=[str(ref) for ref in data.get("after", [])],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkflowSpecError(f"malformed node spec: {exc}") from exc


@dataclass
class WorkflowSpec:
    """A whole DAG of Tasklets, submitted to the broker in one message."""

    workflow_id: str
    nodes: list[NodeSpec]
    #: Deduplicated program table: fingerprint -> CompiledProgram.to_dict().
    programs: dict[str, dict] = field(default_factory=dict)

    # -- structure ----------------------------------------------------------

    def node(self, node_id: str) -> NodeSpec:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(node_id)

    def successors(self) -> dict[str, list[str]]:
        """node id -> direct successors (declaration order)."""
        out: dict[str, list[str]] = {node.node_id: [] for node in self.nodes}
        for node in self.nodes:
            for dep in node.deps():
                if dep in out:
                    out[dep].append(node.node_id)
        return out

    def sinks(self) -> list[str]:
        """Nodes with no successors: the workflow's output nodes."""
        successors = self.successors()
        return [node.node_id for node in self.nodes if not successors[node.node_id]]

    def topo_order(self) -> list[str]:
        """Kahn topological order; raises on cycles (used by validate)."""
        remaining = {node.node_id: set(node.deps()) for node in self.nodes}
        successors = self.successors()
        ready = [node_id for node_id, deps in remaining.items() if not deps]
        order: list[str] = []
        while ready:
            node_id = ready.pop(0)
            order.append(node_id)
            for succ in successors.get(node_id, []):
                deps = remaining[succ]
                deps.discard(node_id)
                if not deps and succ not in order and succ not in ready:
                    ready.append(succ)
        if len(order) != len(self.nodes):
            cyclic = sorted(set(remaining) - set(order))
            raise WorkflowSpecError(
                f"workflow {self.workflow_id!r} has a dependency cycle "
                f"involving: {', '.join(cyclic)}"
            )
        return order

    def validate(self) -> None:
        """Raise :class:`WorkflowSpecError` unless the spec is well-formed."""
        if not self.workflow_id:
            raise WorkflowSpecError("workflow_id must be non-empty")
        if not self.nodes:
            raise WorkflowSpecError(
                f"workflow {self.workflow_id!r} has no nodes"
            )
        ids = [node.node_id for node in self.nodes]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise WorkflowSpecError(
                f"duplicate node id(s): {', '.join(dupes)}"
            )
        known = set(ids)
        for node in self.nodes:
            if not node.node_id:
                raise WorkflowSpecError("node_id must be non-empty")
            if node.program_fingerprint not in self.programs:
                raise WorkflowSpecError(
                    f"node {node.node_id!r} references unknown program "
                    f"fingerprint {node.program_fingerprint!r}"
                )
            if node.fuel <= 0:
                raise WorkflowSpecError(
                    f"node {node.node_id!r}: fuel must be positive"
                )
            if node.max_attempts < 1:
                raise WorkflowSpecError(
                    f"node {node.node_id!r}: max_attempts must be >= 1"
                )
            for dep in node.deps():
                if dep == node.node_id:
                    raise WorkflowSpecError(
                        f"node {node.node_id!r} depends on itself"
                    )
                if dep not in known:
                    raise WorkflowSpecError(
                        f"node {node.node_id!r} references unknown "
                        f"predecessor {dep!r}"
                    )
            for arg in node.args:
                if not _arg_is_wireable(arg):
                    raise WorkflowSpecError(
                        f"node {node.node_id!r}: argument {arg!r} is neither "
                        "a Tasklet value nor a valid placeholder"
                    )
        self.topo_order()  # raises on cycles

    # -- wire format --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "workflow_id": self.workflow_id,
            "nodes": [node.to_dict() for node in self.nodes],
            "programs": dict(self.programs),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WorkflowSpec":
        try:
            return cls(
                workflow_id=str(data["workflow_id"]),
                nodes=[NodeSpec.from_dict(node) for node in data["nodes"]],
                programs={
                    str(fingerprint): dict(program)
                    for fingerprint, program in data.get("programs", {}).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkflowSpecError(f"malformed workflow spec: {exc}") from exc

    def fingerprint(self) -> str:
        """Content identity of this spec (idempotent-resubmit detection).

        Program payloads are represented by their fingerprints, so two
        submissions of the same graph hash identically without touching
        the (large) bytecode dicts.
        """
        canonical = json.dumps(
            {
                "workflow_id": self.workflow_id,
                "nodes": [node.to_dict() for node in self.nodes],
                "programs": sorted(self.programs),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


_builder_counter = itertools.count(1)


class WorkflowBuilder:
    """Incremental construction of a :class:`WorkflowSpec`.

    Accepts programs as source text (compiled and cached per builder) or
    pre-compiled :class:`CompiledProgram` objects; node ids default to
    ``n1, n2, ...`` in creation order.
    """

    def __init__(self, workflow_id: str | None = None):
        self.workflow_id = workflow_id or f"wf-{next(_builder_counter)}"
        self._nodes: list[NodeSpec] = []
        self._programs: dict[str, dict] = {}
        self._source_cache: dict[str, CompiledProgram] = {}
        self._ids = itertools.count(1)

    def node(
        self,
        program: CompiledProgram | str,
        args: list[Any] | None = None,
        entry: str = "main",
        node_id: str | None = None,
        seed: int = 0,
        fuel: int = DEFAULT_FUEL,
        max_attempts: int = 1,
        after: list[str] | None = None,
    ) -> str:
        """Add one node; returns its id (for use in placeholders)."""
        if isinstance(program, str):
            cached = self._source_cache.get(program)
            if cached is None:
                cached = compile_source(program)
                self._source_cache[program] = cached
            program = cached
        fingerprint = program.fingerprint()
        if fingerprint not in self._programs:
            self._programs[fingerprint] = program.to_dict()
        node_id = node_id or f"n{next(self._ids)}"
        self._nodes.append(
            NodeSpec(
                node_id=node_id,
                program_fingerprint=fingerprint,
                entry=entry,
                args=list(args or []),
                seed=seed,
                fuel=fuel,
                max_attempts=max_attempts,
                after=[str(ref) for ref in (after or [])],
            )
        )
        return node_id

    def build(self) -> WorkflowSpec:
        """Validate and return the finished spec."""
        spec = WorkflowSpec(
            workflow_id=self.workflow_id,
            nodes=list(self._nodes),
            programs=dict(self._programs),
        )
        spec.validate()
        return spec
