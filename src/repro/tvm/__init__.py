"""The Tasklet Virtual Machine: language, compiler, and interpreter.

Typical use::

    from repro.tvm import compile_source, execute

    program = compile_source("func main(n: int) -> int { return n * n; }")
    result, stats = execute(program, "main", [12])
"""

from .assembler import assemble
from .astinterp import AstInterpreter, interpret_source
from .bytecode import BYTECODE_VERSION, CompiledProgram, FunctionCode, Instruction
from .compiler import compile_ast, compile_source
from .disassembler import disassemble
from .lang_types import LangType
from .lexer import tokenize
from .opcodes import Op
from .parser import parse
from .semantics import analyze
from .vm import TVM, ExecutionStats, VMLimits, execute, is_tasklet_value

__all__ = [
    "assemble",
    "AstInterpreter",
    "interpret_source",
    "BYTECODE_VERSION",
    "CompiledProgram",
    "FunctionCode",
    "Instruction",
    "compile_ast",
    "compile_source",
    "disassemble",
    "LangType",
    "tokenize",
    "Op",
    "parse",
    "analyze",
    "TVM",
    "ExecutionStats",
    "VMLimits",
    "execute",
    "is_tasklet_value",
]
