"""Portable bytecode container for compiled Tasklet programs.

A :class:`CompiledProgram` is the unit shipped from consumers to providers:
a constant pool plus a list of functions, each with its instruction list.
It serialises to the middleware's JSON wire format (``to_dict`` /
``from_dict``) and can be structurally verified before execution so that a
malicious or corrupted program fails fast instead of crashing the VM
mid-run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from ..common.errors import VMInvalidProgram
from .builtins import BUILTIN_ORDER, BUILTINS
from .opcodes import JUMP_OPS, NO_OPERAND_OPS, Op

#: Bytecode format version, embedded in every serialised program.
BYTECODE_VERSION = 1


@dataclass(frozen=True)
class Instruction:
    """One ``(opcode, operand)`` pair."""

    op: Op
    operand: int | None = None

    def to_pair(self) -> list[int]:
        """Compact list form used on the wire (operand ``-1`` = none)."""
        return [int(self.op), -1 if self.operand is None else self.operand]

    @classmethod
    def from_pair(cls, pair: list[int]) -> "Instruction":
        if len(pair) != 2:
            raise VMInvalidProgram(f"malformed instruction {pair!r}")
        try:
            op = Op(pair[0])
        except ValueError as exc:
            raise VMInvalidProgram(f"unknown opcode {pair[0]}") from exc
        operand = None if pair[1] == -1 else int(pair[1])
        return cls(op, operand)


@dataclass
class FunctionCode:
    """Compiled body of one Tasklet function."""

    name: str
    n_params: int
    n_locals: int  # including parameters
    returns_value: bool
    code: list[Instruction] = field(default_factory=list)
    _pairs: list[tuple[int, int | None]] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    #: memoised fused representation (see :mod:`repro.tvm.quicken`);
    #: internal only — never serialised, never part of the fingerprint.
    _quick_pairs: list[tuple[int, object]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def pairs(self) -> list[tuple[int, int | None]]:
        """The body as plain ``(int opcode, operand)`` tuples.

        Computed lazily and cached: this is the representation the VM's
        hot loop dispatches on (integer compares beat enum identity by a
        large factor on CPython).  ``code`` must not be mutated after the
        first execution.
        """
        if self._pairs is None:
            self._pairs = [
                (int(instruction.op), instruction.operand)
                for instruction in self.code
            ]
        return self._pairs

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "n_params": self.n_params,
            "n_locals": self.n_locals,
            "returns_value": self.returns_value,
            "code": [instruction.to_pair() for instruction in self.code],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FunctionCode":
        try:
            return cls(
                name=str(data["name"]),
                n_params=int(data["n_params"]),
                n_locals=int(data["n_locals"]),
                returns_value=bool(data["returns_value"]),
                code=[Instruction.from_pair(pair) for pair in data["code"]],
            )
        except (KeyError, TypeError) as exc:
            raise VMInvalidProgram(f"malformed function record: {exc}") from exc


@dataclass
class CompiledProgram:
    """A verified-serialisable compiled Tasklet program."""

    functions: list[FunctionCode]
    constants: list[Any]
    source: str | None = None  # original source, kept for debugging only

    def __post_init__(self) -> None:
        self._index: dict[str, int] = {
            function.name: position for position, function in enumerate(self.functions)
        }
        self._fingerprint: str | None = None

    # -- lookup ----------------------------------------------------------------

    def function_index(self, name: str) -> int:
        """Index of function ``name``; raises if absent."""
        if name not in self._index:
            raise VMInvalidProgram(f"program has no function {name!r}")
        return self._index[name]

    def function(self, name: str) -> FunctionCode:
        """The :class:`FunctionCode` for ``name``."""
        return self.functions[self.function_index(name)]

    def has_function(self, name: str) -> bool:
        return name in self._index

    @property
    def function_names(self) -> list[str]:
        return [function.name for function in self.functions]

    # -- serialisation ----------------------------------------------------------

    def to_dict(self, include_source: bool = False) -> dict[str, Any]:
        """Wire representation.  Source is omitted by default (it is large
        and providers never need it)."""
        payload: dict[str, Any] = {
            "version": BYTECODE_VERSION,
            "functions": [function.to_dict() for function in self.functions],
            "constants": list(self.constants),
        }
        if include_source and self.source is not None:
            payload["source"] = self.source
        return payload

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CompiledProgram":
        version = data.get("version")
        if version != BYTECODE_VERSION:
            raise VMInvalidProgram(f"unsupported bytecode version {version!r}")
        try:
            functions = [FunctionCode.from_dict(record) for record in data["functions"]]
            constants = list(data["constants"])
        except (KeyError, TypeError) as exc:
            raise VMInvalidProgram(f"malformed program record: {exc}") from exc
        return cls(functions=functions, constants=constants, source=data.get("source"))

    def fingerprint(self) -> str:
        """Stable content hash, used for provider-side program caching.

        Memoised: consumers stamp it on every assignment of a program, so
        recomputing the canonical JSON each time would defeat the point of
        the provider cache (see :mod:`repro.provider.executor`).
        """
        if self._fingerprint is None:
            canonical = json.dumps(
                self.to_dict(include_source=False),
                sort_keys=True,
                separators=(",", ":"),
            )
            self._fingerprint = hashlib.sha256(canonical.encode()).hexdigest()[:16]
        return self._fingerprint

    # -- verification --------------------------------------------------------

    def verify(self) -> None:
        """Structural validation; raises :class:`VMInvalidProgram` on defects.

        Checks: operand presence matches the opcode, constant/slot/function/
        builtin indices are in range, jump targets land inside the function,
        and every function body ends with an unconditional exit (``RET`` or
        a backwards ``JUMP``) so the VM can never fall off the end.
        """
        if not self.functions:
            raise VMInvalidProgram("program has no functions")
        if len(self._index) != len(self.functions):
            raise VMInvalidProgram("duplicate function names")
        for function in self.functions:
            self._verify_function(function)

    def _verify_function(self, function: FunctionCode) -> None:
        if function.n_params < 0 or function.n_locals < function.n_params:
            raise VMInvalidProgram(
                f"{function.name}: inconsistent locals "
                f"({function.n_params} params, {function.n_locals} locals)"
            )
        code = function.code
        if not code:
            raise VMInvalidProgram(f"{function.name}: empty body")
        for position, instruction in enumerate(code):
            op, operand = instruction.op, instruction.operand
            if op in NO_OPERAND_OPS:
                if operand is not None:
                    raise VMInvalidProgram(
                        f"{function.name}@{position}: {op.name} takes no operand"
                    )
                continue
            if operand is None:
                raise VMInvalidProgram(
                    f"{function.name}@{position}: {op.name} requires an operand"
                )
            if op is Op.PUSH_CONST and not 0 <= operand < len(self.constants):
                raise VMInvalidProgram(
                    f"{function.name}@{position}: constant index {operand} out of range"
                )
            if op in (Op.LOAD, Op.STORE) and not 0 <= operand < function.n_locals:
                raise VMInvalidProgram(
                    f"{function.name}@{position}: slot {operand} out of range"
                )
            if op in JUMP_OPS and not 0 <= operand < len(code):
                raise VMInvalidProgram(
                    f"{function.name}@{position}: jump target {operand} out of range"
                )
            if op is Op.CALL and not 0 <= operand < len(self.functions):
                raise VMInvalidProgram(
                    f"{function.name}@{position}: function index {operand} out of range"
                )
            if op is Op.CALL_BUILTIN:
                # operand encodes index*8 + arity (see compiler._compile_call).
                index, arity = divmod(operand, 8)
                if not 0 <= index < len(BUILTIN_ORDER):
                    raise VMInvalidProgram(
                        f"{function.name}@{position}: builtin index {index} out of range"
                    )
                spec = BUILTINS[BUILTIN_ORDER[index]]
                if not spec.min_arity <= arity <= spec.max_arity:
                    raise VMInvalidProgram(
                        f"{function.name}@{position}: {spec.name} called "
                        f"with arity {arity}"
                    )
            if op is Op.BUILD_ARRAY and operand < 0:
                raise VMInvalidProgram(
                    f"{function.name}@{position}: negative array size"
                )
        last = code[-1]
        ends_ok = last.op is Op.RET or (
            last.op is Op.JUMP and last.operand is not None and last.operand < len(code) - 1
        )
        if not ends_ok:
            raise VMInvalidProgram(
                f"{function.name}: body does not end with RET or a backward jump"
            )


def builtin_index(name: str) -> int:
    """Stable wire index of a builtin, for ``CALL_BUILTIN`` operands."""
    if name not in BUILTINS:
        raise VMInvalidProgram(f"unknown builtin {name!r}")
    return BUILTIN_ORDER.index(name)
