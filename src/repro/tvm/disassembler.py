"""Human-readable listing of compiled Tasklet programs.

Used by tests (to pin compilation output for regressions), by the
``examples/`` scripts for didactic output, and by anyone debugging the
compiler.  The format round-trips through :mod:`repro.tvm.assembler`.
"""

from __future__ import annotations

from .builtins import BUILTIN_ORDER
from .bytecode import CompiledProgram, FunctionCode
from .opcodes import JUMP_OPS, Op


def disassemble_function(
    program: CompiledProgram, function: FunctionCode
) -> list[str]:
    """Render one function as a list of text lines."""
    header = (
        f".func {function.name} params={function.n_params} "
        f"locals={function.n_locals} returns={'value' if function.returns_value else 'void'}"
    )
    lines = [header]
    targets = {
        instruction.operand
        for instruction in function.code
        if instruction.op in JUMP_OPS
    }
    for position, instruction in enumerate(function.code):
        marker = "L" if position in targets else " "
        operand_text = ""
        if instruction.operand is not None:
            operand_text = f" {instruction.operand}"
            if instruction.op is Op.PUSH_CONST:
                operand_text += f"  ; {program.constants[instruction.operand]!r}"
            elif instruction.op is Op.CALL:
                operand_text += f"  ; {program.functions[instruction.operand].name}"
            elif instruction.op is Op.CALL_BUILTIN:
                index, arity = divmod(instruction.operand, 8)
                operand_text += f"  ; {BUILTIN_ORDER[index]}/{arity}"
        lines.append(f"{marker}{position:5d}  {instruction.op.name}{operand_text}")
    lines.append(".end")
    return lines


def disassemble(program: CompiledProgram) -> str:
    """Render a whole program as text."""
    lines: list[str] = [f".constants {len(program.constants)}"]
    for position, constant in enumerate(program.constants):
        lines.append(f"  k{position} = {constant!r}")
    for function in program.functions:
        lines.append("")
        lines.extend(disassemble_function(program, function))
    return "\n".join(lines)
