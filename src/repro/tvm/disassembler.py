"""Human-readable listing of compiled Tasklet programs.

Used by tests (to pin compilation output for regressions), by the
``examples/`` scripts for didactic output, and by anyone debugging the
compiler.  The format round-trips through :mod:`repro.tvm.assembler`.

With ``quickened=True`` the listing gains a second column showing the
provider's fused internal form (:mod:`repro.tvm.quicken`) next to each
portable instruction.  Fused superinstruction heads are marked with ``*``
and note how many portable slots they span; unmarked tail slots keep
their portable instruction (they are skipped by the fused handler but
remain valid jump targets).
"""

from __future__ import annotations

from .builtins import BUILTIN_ORDER
from .bytecode import CompiledProgram, FunctionCode
from .opcodes import JUMP_OPS, QUICK_EXPANSION, Op, QOp
from .quicken import quicken_function

#: column where the fused listing starts in side-by-side mode
_QUICK_COLUMN = 44


def disassemble_function(
    program: CompiledProgram, function: FunctionCode, quickened: bool = False
) -> list[str]:
    """Render one function as a list of text lines."""
    header = (
        f".func {function.name} params={function.n_params} "
        f"locals={function.n_locals} returns={'value' if function.returns_value else 'void'}"
    )
    lines = [header]
    targets = {
        instruction.operand
        for instruction in function.code
        if instruction.op in JUMP_OPS
    }
    quick = quicken_function(function) if quickened else None
    for position, instruction in enumerate(function.code):
        marker = "L" if position in targets else " "
        operand_text = ""
        if instruction.operand is not None:
            operand_text = f" {instruction.operand}"
            if instruction.op is Op.PUSH_CONST:
                operand_text += f"  ; {program.constants[instruction.operand]!r}"
            elif instruction.op is Op.CALL:
                operand_text += f"  ; {program.functions[instruction.operand].name}"
            elif instruction.op is Op.CALL_BUILTIN:
                index, arity = divmod(instruction.operand, 8)
                operand_text += f"  ; {BUILTIN_ORDER[index]}/{arity}"
        line = f"{marker}{position:5d}  {instruction.op.name}{operand_text}"
        if quick is not None:
            quick_op, quick_operand = quick[position]
            if quick_op != int(instruction.op):
                span = len(QUICK_EXPANSION[quick_op])
                line = (
                    f"{line:<{_QUICK_COLUMN}}| *{QOp(quick_op).name} "
                    f"{quick_operand}  ; spans {span}"
                )
            else:
                line = f"{line:<{_QUICK_COLUMN}}|"
        lines.append(line)
    lines.append(".end")
    return lines


def disassemble(program: CompiledProgram, quickened: bool = False) -> str:
    """Render a whole program as text.

    ``quickened=True`` adds the side-by-side fused column (the program
    must already be verified; quickening trusts verifier invariants).
    """
    lines: list[str] = [f".constants {len(program.constants)}"]
    for position, constant in enumerate(program.constants):
        lines.append(f"  k{position} = {constant!r}")
    for function in program.functions:
        lines.append("")
        lines.extend(disassemble_function(program, function, quickened=quickened))
    return "\n".join(lines)
