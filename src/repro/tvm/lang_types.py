"""Static types of the Tasklet language.

The type system is deliberately small: five concrete value types plus
``void`` for functions without a return value, and an internal ``any``
type.  ``array`` is a dynamic array of arbitrary Tasklet values, so an
indexing expression ``a[i]`` has static type ``any``: it is accepted
wherever a value is expected and re-checked at runtime by the VM.  ``any``
cannot be written in source programs — it only arises from inference.
"""

from __future__ import annotations

import enum


class LangType(enum.Enum):
    """A Tasklet language type."""

    INT = "int"
    FLOAT = "float"
    BOOL = "bool"
    STRING = "string"
    ARRAY = "array"
    VOID = "void"
    ANY = "any"  # internal: result of array indexing / pop()

    def __str__(self) -> str:
        return self.value


#: Statically numeric types (``any`` is *potentially* numeric).
NUMERIC_TYPES = {LangType.INT, LangType.FLOAT}


def is_numeric(lang_type: LangType) -> bool:
    """Whether a value of this static type may appear in arithmetic."""
    return lang_type in NUMERIC_TYPES or lang_type is LangType.ANY


def is_assignable(target: LangType, source: LangType) -> bool:
    """Whether a ``source``-typed expression may initialise/assign ``target``.

    The only implicit conversion is the C-like widening ``int -> float``.
    ``any`` is assignable both ways (runtime-checked).
    """
    if target is source:
        return True
    if LangType.ANY in (target, source):
        return target is not LangType.VOID and source is not LangType.VOID
    return target is LangType.FLOAT and source is LangType.INT


def unify_numeric(left: LangType, right: LangType) -> LangType | None:
    """Result type of an arithmetic op, or ``None`` if the pair is invalid."""
    if not is_numeric(left) or not is_numeric(right):
        return None
    if LangType.ANY in (left, right):
        return LangType.ANY
    if LangType.FLOAT in (left, right):
        return LangType.FLOAT
    return LangType.INT
