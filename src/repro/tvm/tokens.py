"""Token definitions for the Tasklet language.

The Tasklet language is a small C-like language; see ``docs`` in the README
for a tour.  Tokens carry their source position so that every later stage
(parser, semantic analysis) can produce errors that point at real code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class TokenType(enum.Enum):
    """All lexeme categories produced by the lexer."""

    # Literals and names
    INT = "INT"
    FLOAT = "FLOAT"
    STRING = "STRING"
    IDENT = "IDENT"

    # Keywords
    FUNC = "func"
    VAR = "var"
    IF = "if"
    ELSE = "else"
    WHILE = "while"
    FOR = "for"
    RETURN = "return"
    BREAK = "break"
    CONTINUE = "continue"
    TRUE = "true"
    FALSE = "false"

    # Type names (keywords as well)
    T_INT = "int"
    T_FLOAT = "float"
    T_BOOL = "bool"
    T_STRING = "string"
    T_ARRAY = "array"
    T_VOID = "void"

    # Punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"
    COLON = ":"
    ARROW = "->"

    # Operators
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PERCENT_ASSIGN = "%="
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "&&"
    OR = "||"
    NOT = "!"

    EOF = "EOF"


#: Reserved words, mapped to their token types.
KEYWORDS: dict[str, TokenType] = {
    "func": TokenType.FUNC,
    "var": TokenType.VAR,
    "if": TokenType.IF,
    "else": TokenType.ELSE,
    "while": TokenType.WHILE,
    "for": TokenType.FOR,
    "return": TokenType.RETURN,
    "break": TokenType.BREAK,
    "continue": TokenType.CONTINUE,
    "true": TokenType.TRUE,
    "false": TokenType.FALSE,
    "int": TokenType.T_INT,
    "float": TokenType.T_FLOAT,
    "bool": TokenType.T_BOOL,
    "string": TokenType.T_STRING,
    "array": TokenType.T_ARRAY,
    "void": TokenType.T_VOID,
}

#: Token types that name a language type.
TYPE_TOKENS = {
    TokenType.T_INT,
    TokenType.T_FLOAT,
    TokenType.T_BOOL,
    TokenType.T_STRING,
    TokenType.T_ARRAY,
    TokenType.T_VOID,
}


@dataclass(frozen=True)
class Token:
    """One lexeme: its category, raw text, decoded value, and position."""

    type: TokenType
    text: str
    value: Any
    line: int
    column: int

    def __repr__(self) -> str:  # compact, for parser error messages
        return f"{self.type.name}({self.text!r})@{self.line}:{self.column}"
