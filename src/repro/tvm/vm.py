"""The Tasklet Virtual Machine: a sandboxed stack interpreter.

Design goals, in order:

1. **Portability / determinism** — a program produces bit-identical results
   on every host, which makes redundant-execution voting possible.  The
   only randomness is the execution-scoped seeded PRNG exposed through
   ``rand()``/``rand_int()``.
2. **Safety** — untrusted bytecode runs with an instruction budget
   ("fuel"), operand/call-stack depth limits, and an allocation cap.  On
   violation the VM raises; the provider converts that into a failed
   execution message, never a crashed provider.
3. **Observability** — :class:`ExecutionStats` reports instruction counts,
   so simulations can convert "work" into virtual seconds using a device's
   speed factor, and providers can bill fuel.

Implementation notes (the loop is CPython-tuned, measured in F1):
dispatch is on plain ints (see ``FunctionCode.pairs``); the common
numeric paths of arithmetic/comparison are inlined with ``type(x) is``
checks (which also exclude ``bool``, preserving the language's strict
bool/number separation); the operand-stack limit is enforced at
checkpoints every 2048 instructions plus at every call and array build,
so a runaway push loop can overshoot ``max_stack`` by at most 2048
entries before being stopped.

``TVM(quickened=True)`` executes the *quickened* internal representation
(:mod:`repro.tvm.quicken`): fused superinstructions replace the dominant
two-to-four-instruction sequences while charging exactly the fuel of the
sequence they replace, constituent by constituent.  Results, raised
errors, and ``ExecutionStats.instructions`` are bit-identical to the
baseline engine; once remaining fuel drops below the longest fused
sequence the loop deoptimises to portable code (the quickened list is
index-compatible by construction), so even fuel-exhaustion boundaries
bill identically.  The stack checkpoint test widens from ``== 0`` to
``< MAX_QUICK_FUEL`` under quickening because fuel no longer steps by
one; every 2048-fuel window still checkpoints at least once.

A :class:`TVM` instance runs one execution (``run`` may only be called
once); create a fresh instance per Tasklet.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any

from ..common.errors import (
    VMError,
    VMFuelExhausted,
    VMInvalidProgram,
    VMStackOverflow,
    VMTypeError,
)
from . import operators
from .builtins import BUILTIN_ORDER, BUILTINS
from .bytecode import CompiledProgram, FunctionCode
from .opcodes import MAX_QUICK_FUEL, OPCODE_GROUP, QUICK_EXPANSION, Op

#: Sentinel for "no value" (void returns / uninitialised locals).  A
#: distinct object, not None, so Tasklet code can never observe or forge it.
_NONE = object()

#: Default resource limits; generous for kernels, tight enough to keep a
#: runaway Tasklet from monopolising a provider.
DEFAULT_FUEL = 50_000_000
DEFAULT_MAX_STACK = 4096
DEFAULT_MAX_CALL_DEPTH = 256

#: Stack-limit checkpoint period (power of two; see module docstring).
_CHECK_MASK = 2047


@dataclass
class VMLimits:
    """Resource limits for one execution."""

    fuel: int = DEFAULT_FUEL
    max_stack: int = DEFAULT_MAX_STACK
    max_call_depth: int = DEFAULT_MAX_CALL_DEPTH


@dataclass
class ExecutionStats:
    """Accounting of one completed (or failed) execution.

    ``max_stack_depth`` is a high-water mark sampled at checkpoints and
    call boundaries, not per instruction.
    """

    instructions: int = 0
    fuel_limit: int = 0
    max_stack_depth: int = 0
    max_call_depth: int = 0
    builtin_calls: int = 0
    function_calls: int = 0

    @property
    def fuel_used(self) -> int:
        return self.instructions


@dataclass
class VMProfile:
    """Per-execution profile, collected only when ``TVM(profile=True)``.

    ``opcode_groups`` buckets retired instructions into the coarse
    families of :data:`repro.tvm.opcodes.OPCODE_GROUP`; ``opcodes`` has
    the exact per-opcode counts.  ``wall_time_s`` is real elapsed time
    (``time.perf_counter``), not virtual time.  ``peak_stack_depth`` is
    the checkpoint-sampled high-water mark from :class:`ExecutionStats`.
    """

    wall_time_s: float = 0.0
    instructions: int = 0
    peak_stack_depth: int = 0
    peak_call_depth: int = 0
    opcode_groups: dict[str, int] = field(default_factory=dict)
    opcodes: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "wall_time_s": self.wall_time_s,
            "instructions": self.instructions,
            "peak_stack_depth": self.peak_stack_depth,
            "peak_call_depth": self.peak_call_depth,
            "opcode_groups": dict(self.opcode_groups),
            "opcodes": dict(self.opcodes),
        }


@dataclass
class _Frame:
    function: FunctionCode
    locals: list
    return_address: int  # instruction pointer in the caller
    stack_base: int  # operand stack height at call time


def is_tasklet_value(value: Any) -> bool:
    """Whether ``value`` is a legal Tasklet runtime value."""
    if isinstance(value, (bool, int, float, str)):
        return True
    if isinstance(value, list):
        return all(is_tasklet_value(item) for item in value)
    return False


class TVM:
    """One Tasklet Virtual Machine execution context.

    >>> from repro.tvm.compiler import compile_source
    >>> program = compile_source("func main(n: int) -> int { return n * 2; }")
    >>> TVM(program).run("main", [21])
    42
    """

    def __init__(
        self,
        program: CompiledProgram,
        limits: VMLimits | None = None,
        seed: int = 0,
        verify: bool = True,
        profile: bool = False,
        quickened: bool = False,
    ):
        if verify:
            program.verify()
        if quickened:
            # Memoised per function: a no-op for cached provider programs
            # (the executor quickens at program-cache insertion).
            from .quicken import quicken_program

            quicken_program(program)
        self.program = program
        self.limits = limits or VMLimits()
        self.rng = random.Random(seed)
        self.stats = ExecutionStats(fuel_limit=self.limits.fuel)
        self._stack: list = []
        self._frames: list[_Frame] = []
        self._ran = False
        self._quickened = quickened
        # Profiling is opt-in: when disabled the dispatch loop pays one
        # local ``is not None`` test per instruction and nothing else.
        self._profile_counts: list[int] | None = [0] * 128 if profile else None
        self.profile: VMProfile | None = None

    # -- public API ----------------------------------------------------------

    def run(self, entry: str = "main", args: list | None = None) -> Any:
        """Execute ``entry`` with ``args``; returns its result.

        Void functions return ``None``.  Raises a :class:`VMError`
        subclass on any runtime failure.
        """
        if self._ran:
            raise VMError("a TVM instance runs exactly one execution")
        self._ran = True
        args = list(args or [])
        function = self.program.function(entry)
        if len(args) != function.n_params:
            raise VMError(
                f"{entry}() expects {function.n_params} arguments, got {len(args)}"
            )
        for arg in args:
            if not is_tasklet_value(arg):
                raise VMTypeError(f"argument {arg!r} is not a valid Tasklet value")
        if self._profile_counts is None:
            result = self._execute(function, args)
            return None if result is _NONE else result
        started = time.perf_counter()
        try:
            result = self._execute(function, args)
        finally:
            self._finish_profile(time.perf_counter() - started)
        return None if result is _NONE else result

    def _finish_profile(self, wall_time_s: float) -> None:
        """Reduce raw opcode counts into the :class:`VMProfile`.

        Called even when the execution failed, so a fuel-exhausted or
        crashing Tasklet still yields a (partial) profile.
        """
        counts = self._profile_counts or []
        groups: dict[str, int] = {}
        opcodes: dict[str, int] = {}

        def record(op: Op, count: int) -> None:
            opcodes[op.name] = opcodes.get(op.name, 0) + count
            group = OPCODE_GROUP.get(int(op), "other")
            groups[group] = groups.get(group, 0) + count

        for op_value, count in enumerate(counts):
            if not count:
                continue
            if op_value in QUICK_EXPANSION:
                # Fused superinstructions report as the portable sequence
                # they replaced, so profiles are engine-independent.
                for constituent in QUICK_EXPANSION[op_value]:
                    record(constituent, count)
            else:
                record(Op(op_value), count)
        self.profile = VMProfile(
            wall_time_s=wall_time_s,
            instructions=self.stats.instructions,
            peak_stack_depth=self.stats.max_stack_depth,
            peak_call_depth=self.stats.max_call_depth,
            opcode_groups=groups,
            opcodes=opcodes,
        )

    # -- machinery ----------------------------------------------------------

    def _execute(self, function: FunctionCode, args: list) -> Any:
        limits = self.limits
        stats = self.stats
        stack = self._stack
        frames = self._frames
        constants = self.program.constants
        functions = self.program.functions
        max_stack = limits.max_stack
        max_call_depth = limits.max_call_depth
        rng = self.rng
        builtins = [BUILTINS[name] for name in BUILTIN_ORDER]
        profile_counts = self._profile_counts

        local_vars = args + [_NONE] * (function.n_locals - function.n_params)
        frames.append(_Frame(function, local_vars, return_address=-1, stack_base=0))
        quick = self._quickened
        code = function._quick_pairs if quick else function.pairs
        # Quickened fuel steps by up to MAX_QUICK_FUEL, so the checkpoint
        # test widens to "low residue" — still >= 1 firing per window.
        check_slack = MAX_QUICK_FUEL if quick else 1
        ip = 0
        fuel = limits.fuel

        try:
            while True:
                if fuel < MAX_QUICK_FUEL:
                    if fuel <= 0:
                        raise VMFuelExhausted(
                            f"fuel exhausted after {limits.fuel} instructions"
                        )
                    if quick:
                        # Deoptimise: the final instructions run on the
                        # portable code (index-compatible by construction)
                        # so a fused instruction can never charge past the
                        # fuel limit and exhaustion bills exactly.
                        quick = False
                        check_slack = 1
                        code = frames[-1].function.pairs
                if fuel & _CHECK_MASK < check_slack:
                    depth = len(stack)
                    if depth > max_stack:
                        raise VMStackOverflow(
                            f"operand stack exceeded {max_stack} entries"
                        )
                    if depth > stats.max_stack_depth:
                        stats.max_stack_depth = depth
                fuel -= 1

                op, operand = code[ip]
                ip += 1
                if profile_counts is not None:
                    profile_counts[op] += 1

                if op >= 100:  # fused superinstructions (quickened code)
                    # Fuel is charged constituent by constituent, *before*
                    # each constituent's fallible step, so error paths and
                    # fuel accounting match the baseline engine exactly.
                    # The loop head already charged the first constituent.
                    if op == 102:  # LT_JUMP_IF_FALSE
                        right = stack.pop()
                        left = stack.pop()
                        if (type(left) is int or type(left) is float) and (
                            type(right) is int or type(right) is float
                        ):
                            condition = left < right
                        else:
                            condition = self._order(Op.LT, left, right)
                        fuel -= 1
                        if condition:
                            ip += 1
                        else:
                            ip = operand
                    elif op == 100:  # INC_LOCAL
                        slot, const_index = operand
                        value = local_vars[slot]
                        if value is _NONE:
                            raise VMError(
                                f"read of uninitialised local slot {slot}"
                            )
                        fuel -= 2
                        right = constants[const_index]
                        if (type(value) is int or type(value) is float) and (
                            type(right) is int or type(right) is float
                        ):
                            value = value + right
                        else:
                            value = self._add(value, right)
                        fuel -= 1
                        local_vars[slot] = value
                        ip += 3
                    elif op == 108:  # LOAD_LOAD
                        first, second = operand
                        value = local_vars[first]
                        if value is _NONE:
                            raise VMError(
                                f"read of uninitialised local slot {first}"
                            )
                        fuel -= 1
                        other = local_vars[second]
                        if other is _NONE:
                            raise VMError(
                                f"read of uninitialised local slot {second}"
                            )
                        stack.append(value)
                        stack.append(other)
                        ip += 1
                    elif op == 103:  # LE_JUMP_IF_FALSE
                        right = stack.pop()
                        left = stack.pop()
                        if (type(left) is int or type(left) is float) and (
                            type(right) is int or type(right) is float
                        ):
                            condition = left <= right
                        else:
                            condition = self._order(Op.LE, left, right)
                        fuel -= 1
                        if condition:
                            ip += 1
                        else:
                            ip = operand
                    elif op == 109:  # LOAD_CONST
                        slot, const_index = operand
                        value = local_vars[slot]
                        if value is _NONE:
                            raise VMError(
                                f"read of uninitialised local slot {slot}"
                            )
                        fuel -= 1
                        stack.append(value)
                        stack.append(constants[const_index])
                        ip += 1
                    elif op == 106:  # EQ_JUMP_IF_FALSE
                        right = stack.pop()
                        condition = self._equals(stack.pop(), right)
                        fuel -= 1
                        if condition:
                            ip += 1
                        else:
                            ip = operand
                    elif op == 110:  # LOAD_INDEX
                        index = local_vars[operand]
                        if index is _NONE:
                            raise VMError(
                                f"read of uninitialised local slot {operand}"
                            )
                        fuel -= 1
                        base = stack[-1]
                        if (
                            type(base) is list
                            and type(index) is int
                            and 0 <= index < len(base)
                        ):
                            stack[-1] = base[index]
                        else:
                            stack[-1] = self._index(base, index)
                        ip += 1
                    elif op == 104:  # GT_JUMP_IF_FALSE
                        right = stack.pop()
                        left = stack.pop()
                        if (type(left) is int or type(left) is float) and (
                            type(right) is int or type(right) is float
                        ):
                            condition = left > right
                        else:
                            condition = self._order(Op.GT, left, right)
                        fuel -= 1
                        if condition:
                            ip += 1
                        else:
                            ip = operand
                    elif op == 105:  # GE_JUMP_IF_FALSE
                        right = stack.pop()
                        left = stack.pop()
                        if (type(left) is int or type(left) is float) and (
                            type(right) is int or type(right) is float
                        ):
                            condition = left >= right
                        else:
                            condition = self._order(Op.GE, left, right)
                        fuel -= 1
                        if condition:
                            ip += 1
                        else:
                            ip = operand
                    elif op == 107:  # NE_JUMP_IF_FALSE
                        right = stack.pop()
                        condition = self._equals(stack.pop(), right)
                        fuel -= 1
                        if condition:
                            ip = operand
                        else:
                            ip += 1
                    else:  # op == 101, DEC_LOCAL
                        slot, const_index = operand
                        value = local_vars[slot]
                        if value is _NONE:
                            raise VMError(
                                f"read of uninitialised local slot {slot}"
                            )
                        fuel -= 2
                        right = constants[const_index]
                        if (type(value) is int or type(value) is float) and (
                            type(right) is int or type(right) is float
                        ):
                            value = value - right
                        else:
                            self._require_number(value, right, "-")
                            value = value - right
                        fuel -= 1
                        local_vars[slot] = value
                        ip += 3
                elif op == 3:  # LOAD
                    value = local_vars[operand]
                    if value is _NONE:
                        raise VMError(f"read of uninitialised local slot {operand}")
                    stack.append(value)
                elif op == 1:  # PUSH_CONST
                    stack.append(constants[operand])
                elif op == 4:  # STORE
                    local_vars[operand] = stack.pop()
                elif op == 30:  # JUMP (loop back-edges: hot in quickened code)
                    ip = operand
                elif op == 10:  # ADD
                    right = stack.pop()
                    left = stack[-1]
                    if (type(left) is int or type(left) is float) and (
                        type(right) is int or type(right) is float
                    ):
                        stack[-1] = left + right
                    else:
                        stack[-1] = self._add(left, right)
                elif op == 11:  # SUB
                    right = stack.pop()
                    left = stack[-1]
                    if (type(left) is int or type(left) is float) and (
                        type(right) is int or type(right) is float
                    ):
                        stack[-1] = left - right
                    else:
                        self._require_number(left, right, "-")
                        stack[-1] = left - right
                elif op == 12:  # MUL
                    right = stack.pop()
                    left = stack[-1]
                    if (type(left) is int or type(left) is float) and (
                        type(right) is int or type(right) is float
                    ):
                        stack[-1] = left * right
                    else:
                        self._require_number(left, right, "*")
                        stack[-1] = left * right
                elif op == 13:  # DIV
                    right = stack.pop()
                    stack[-1] = self._divide(stack[-1], right)
                elif op == 14:  # MOD
                    right = stack.pop()
                    stack[-1] = self._modulo(stack[-1], right)
                elif op == 15:  # NEG
                    value = stack[-1]
                    if type(value) is int or type(value) is float:
                        stack[-1] = -value
                    else:
                        raise VMTypeError(f"cannot negate {type(value).__name__}")
                elif op == 22:  # LT
                    right = stack.pop()
                    left = stack[-1]
                    if (type(left) is int or type(left) is float) and (
                        type(right) is int or type(right) is float
                    ):
                        stack[-1] = left < right
                    else:
                        stack[-1] = self._order(Op.LT, left, right)
                elif op == 23:  # LE
                    right = stack.pop()
                    left = stack[-1]
                    if (type(left) is int or type(left) is float) and (
                        type(right) is int or type(right) is float
                    ):
                        stack[-1] = left <= right
                    else:
                        stack[-1] = self._order(Op.LE, left, right)
                elif op == 24:  # GT
                    right = stack.pop()
                    left = stack[-1]
                    if (type(left) is int or type(left) is float) and (
                        type(right) is int or type(right) is float
                    ):
                        stack[-1] = left > right
                    else:
                        stack[-1] = self._order(Op.GT, left, right)
                elif op == 25:  # GE
                    right = stack.pop()
                    left = stack[-1]
                    if (type(left) is int or type(left) is float) and (
                        type(right) is int or type(right) is float
                    ):
                        stack[-1] = left >= right
                    else:
                        stack[-1] = self._order(Op.GE, left, right)
                elif op == 20:  # EQ
                    right = stack.pop()
                    stack[-1] = self._equals(stack[-1], right)
                elif op == 21:  # NE
                    right = stack.pop()
                    stack[-1] = not self._equals(stack[-1], right)
                elif op == 26:  # NOT
                    value = stack[-1]
                    if value is True:
                        stack[-1] = False
                    elif value is False:
                        stack[-1] = True
                    else:
                        raise VMTypeError(
                            f"'!' needs bool, got {type(value).__name__}"
                        )
                elif op == 31:  # JUMP_IF_FALSE
                    condition = stack.pop()
                    if condition is False:
                        ip = operand
                    elif condition is not True:
                        raise VMTypeError(
                            f"condition must be bool, got {type(condition).__name__}"
                        )
                elif op == 32:  # JUMP_IF_TRUE
                    condition = stack.pop()
                    if condition is True:
                        ip = operand
                    elif condition is not False:
                        raise VMTypeError(
                            f"condition must be bool, got {type(condition).__name__}"
                        )
                elif op == 51:  # INDEX
                    index = stack.pop()
                    base = stack[-1]
                    if (
                        type(base) is list
                        and type(index) is int
                        and 0 <= index < len(base)
                    ):
                        stack[-1] = base[index]
                    else:
                        stack[-1] = self._index(base, index)
                elif op == 52:  # STORE_INDEX
                    value = stack.pop()
                    index = stack.pop()
                    base = stack.pop()
                    if (
                        type(base) is list
                        and type(index) is int
                        and 0 <= index < len(base)
                    ):
                        base[index] = value
                    else:
                        self._store_index(base, index, value)
                elif op == 41:  # CALL_BUILTIN
                    index, arity = divmod(operand, 8)
                    spec = builtins[index]
                    stats.builtin_calls += 1
                    call_args = stack[len(stack) - arity :] if arity else []
                    del stack[len(stack) - arity :]
                    try:
                        stack.append(spec.impl(rng, call_args))
                    except VMError:
                        raise
                    except (TypeError, AttributeError) as exc:
                        raise VMTypeError(f"{spec.name}(): {exc}") from exc
                    except (ValueError, OverflowError) as exc:
                        raise VMError(f"{spec.name}(): {exc}") from exc
                elif op == 40:  # CALL
                    callee = functions[operand]
                    if len(frames) >= max_call_depth:
                        raise VMStackOverflow(
                            f"call depth exceeded {max_call_depth}"
                        )
                    if len(stack) > max_stack:
                        raise VMStackOverflow(
                            f"operand stack exceeded {max_stack} entries"
                        )
                    stats.function_calls += 1
                    n_args = callee.n_params
                    if n_args:
                        new_locals = stack[len(stack) - n_args :]
                        del stack[len(stack) - n_args :]
                    else:
                        new_locals = []
                    new_locals.extend([_NONE] * (callee.n_locals - n_args))
                    frames.append(
                        _Frame(
                            callee,
                            new_locals,
                            return_address=ip,
                            stack_base=len(stack),
                        )
                    )
                    if len(frames) > stats.max_call_depth:
                        stats.max_call_depth = len(frames)
                    if len(stack) > stats.max_stack_depth:
                        stats.max_stack_depth = len(stack)
                    local_vars = new_locals
                    code = callee._quick_pairs if quick else callee.pairs
                    ip = 0
                elif op == 42:  # RET
                    result = stack.pop()
                    frame = frames.pop()
                    if not frames:
                        return result
                    del stack[frame.stack_base :]
                    stack.append(result)
                    top = frames[-1]
                    local_vars = top.locals
                    code = top.function._quick_pairs if quick else top.function.pairs
                    ip = frame.return_address
                elif op == 50:  # BUILD_ARRAY
                    if operand:
                        elements = stack[len(stack) - operand :]
                        del stack[len(stack) - operand :]
                    else:
                        elements = []
                    stack.append(elements)
                    if len(stack) > max_stack:
                        raise VMStackOverflow(
                            f"operand stack exceeded {max_stack} entries"
                        )
                elif op == 5:  # POP
                    stack.pop()
                elif op == 6:  # DUP
                    stack.append(stack[-1])
                elif op == 2:  # PUSH_NONE
                    stack.append(_NONE)
                else:  # pragma: no cover - verify() rejects unknown opcodes
                    raise VMInvalidProgram(f"unknown opcode {op!r}")
        finally:
            stats.instructions = limits.fuel - fuel
            if len(stack) > stats.max_stack_depth:
                stats.max_stack_depth = len(stack)

    # -- operator semantics (slow paths) ---------------------------------------
    #
    # Shared with the reference AST interpreter via repro.tvm.operators;
    # the fast paths inlined in the loop above implement the identical
    # common numeric cases.

    _require_number = staticmethod(operators.require_number)
    _add = staticmethod(operators.add)
    _divide = staticmethod(operators.divide)
    _modulo = staticmethod(operators.modulo)
    _equals = staticmethod(operators.equals)
    _order = staticmethod(operators.order)
    _index = staticmethod(operators.index_get)
    _store_index = staticmethod(operators.index_set)


def execute(
    program: CompiledProgram,
    entry: str = "main",
    args: list | None = None,
    limits: VMLimits | None = None,
    seed: int = 0,
    quickened: bool = False,
) -> tuple[Any, ExecutionStats]:
    """Run ``entry(args)`` on a fresh VM; returns ``(result, stats)``."""
    machine = TVM(program, limits=limits, seed=seed, quickened=quickened)
    result = machine.run(entry, args)
    return result, machine.stats
