"""Abstract syntax tree for the Tasklet language.

Nodes are plain dataclasses.  Every node carries ``line``/``column`` so
semantic analysis and compilation can report precise positions.  The
semantic pass annotates expression nodes in-place with their resolved
static type (``expr_type``) and name references with their storage slot
(``slot``); the compiler then reads those annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .lang_types import LangType


@dataclass
class Node:
    """Base class: source position shared by all nodes."""

    line: int
    column: int


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions; ``expr_type`` is set by semantics."""

    expr_type: Optional[LangType] = field(default=None, init=False, compare=False)


@dataclass
class IntLiteral(Expr):
    value: int


@dataclass
class FloatLiteral(Expr):
    value: float


@dataclass
class BoolLiteral(Expr):
    value: bool


@dataclass
class StringLiteral(Expr):
    value: str


@dataclass
class ArrayLiteral(Expr):
    """``[e1, e2, ...]`` — builds a fresh array from element expressions."""

    elements: list[Expr]


@dataclass
class Name(Expr):
    """A variable or parameter reference; ``slot`` resolved by semantics."""

    identifier: str
    slot: Optional[int] = field(default=None, init=False, compare=False)


@dataclass
class Unary(Expr):
    """``-x`` or ``!x``."""

    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    """Arithmetic, comparison, or logical binary expression.

    ``&&`` and ``||`` are represented here too; the compiler lowers them to
    short-circuiting jumps.
    """

    op: str
    left: Expr
    right: Expr


@dataclass
class Call(Expr):
    """Call of a user function or a builtin, resolved during semantics."""

    callee: str
    args: list[Expr]
    is_builtin: bool = field(default=False, init=False, compare=False)


@dataclass
class Index(Expr):
    """``base[index]`` — array element or string character access."""

    base: Expr
    index: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class VarDecl(Stmt):
    """``var name: type = init;`` — initialiser is mandatory."""

    name: str
    declared_type: LangType
    init: Expr
    slot: Optional[int] = field(default=None, init=False, compare=False)


@dataclass
class Assign(Stmt):
    """``name = value;``"""

    name: str
    value: Expr
    slot: Optional[int] = field(default=None, init=False, compare=False)


@dataclass
class IndexAssign(Stmt):
    """``base[index] = value;``"""

    base: Expr
    index: Expr
    value: Expr


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its side effects (a call, usually)."""

    expr: Expr


@dataclass
class Block(Stmt):
    """``{ ... }`` — introduces a lexical scope."""

    statements: list[Stmt]


@dataclass
class If(Stmt):
    condition: Expr
    then_branch: Block
    else_branch: Optional[Stmt]  # Block or another If (else-if chain)


@dataclass
class While(Stmt):
    condition: Expr
    body: Block


@dataclass
class For(Stmt):
    """C-style ``for (init; condition; step) body``.

    ``init`` is a VarDecl or Assign (or None); ``step`` an Assign or
    ExprStmt (or None).  Desugaring to While happens in the compiler, not
    the parser, so error positions stay faithful.
    """

    init: Optional[Stmt]
    condition: Optional[Expr]
    step: Optional[Stmt]
    body: Block


@dataclass
class Return(Stmt):
    value: Optional[Expr]


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Param(Node):
    name: str
    declared_type: LangType


@dataclass
class FunctionDecl(Node):
    """``func name(params) -> type { body }``"""

    name: str
    params: list[Param]
    return_type: LangType
    body: Block
    n_locals: int = field(default=0, init=False, compare=False)


@dataclass
class Program(Node):
    """A full compilation unit: one or more function declarations."""

    functions: list[FunctionDecl]
