"""Bytecode optimizer: folding, peepholes, jump threading, dead code.

Optional post-compilation pass (``compile_source(..., optimize=True)`` or
:func:`optimize_program`).  Unlike provider-side quickening
(:mod:`repro.tvm.quicken`), these transformations change the *portable*
bytecode — they happen before fingerprinting, on the consumer side.
Four classic transformations, each safe under the language's semantics:

* **constant folding** — ``PUSH_CONST a; PUSH_CONST b; <arith/cmp>``
  becomes one ``PUSH_CONST`` when the operation cannot fail (division and
  modulo fold only for non-zero constant divisors).  Folding applies the
  *operator semantics module*, so folded results are bit-identical to
  runtime results — including C-style truncating division.
* **peepholes** — ``NOT; JUMP_IF_FALSE`` becomes ``JUMP_IF_TRUE`` (and
  the mirror), and the stack-neutral pairs ``DUP; POP`` and
  ``PUSH_CONST/PUSH_NONE; POP`` are deleted.  The branch flip relies on
  the static type discipline the semantic analyser enforces (the operand
  of ``!`` is always bool in compiled code); only the error *message* of
  ill-typed hand-assembled bytecode could differ.
* **jump threading** — a jump whose target is another unconditional jump
  retargets to the final destination (chains collapse; cycles detected
  and left alone).
* **dead-code elimination** — instructions unreachable from the entry are
  removed (straight-line reachability over the jump graph), with all jump
  targets re-indexed.

The pass is *idempotent-safe* (running it twice is fine) and always
re-verifies its output.  Experiment A4 measures its effect; the
differential suite (tests/tvm/test_optimizer.py) proves behavioural
equivalence against both engines.
"""

from __future__ import annotations

from ..common.errors import VMError
from . import operators
from .bytecode import CompiledProgram, FunctionCode, Instruction
from .opcodes import JUMP_OPS, Op

#: Binary opcodes foldable when both operands are constants.
_FOLDABLE_BINARY = {
    Op.ADD: operators.add,
    Op.SUB: lambda a, b: _checked_sub(a, b),
    Op.MUL: lambda a, b: _checked_mul(a, b),
    Op.DIV: operators.divide,
    Op.MOD: operators.modulo,
    Op.EQ: operators.equals,
    Op.NE: lambda a, b: not operators.equals(a, b),
    Op.LT: lambda a, b: operators.order(Op.LT, a, b),
    Op.LE: lambda a, b: operators.order(Op.LE, a, b),
    Op.GT: lambda a, b: operators.order(Op.GT, a, b),
    Op.GE: lambda a, b: operators.order(Op.GE, a, b),
}


def _checked_sub(a, b):
    operators.require_number(a, b, "-")
    return a - b


def _checked_mul(a, b):
    operators.require_number(a, b, "*")
    return a * b


class _Pool:
    """Append-only view over the shared constant pool."""

    def __init__(self, constants: list):
        self.constants = constants
        self._positions: dict[tuple, int] = {}
        for position, value in enumerate(constants):
            self._positions.setdefault((type(value).__name__, value), position)

    def add(self, value) -> int:
        key = (type(value).__name__, value)
        if key in self._positions:
            return self._positions[key]
        self.constants.append(value)
        self._positions[key] = len(self.constants) - 1
        return len(self.constants) - 1


def _fold_constants(code: list[Instruction], pool: _Pool) -> list[Instruction]:
    """One left-to-right folding pass (iterated to fixpoint by caller).

    Folding across jump targets would change the meaning of the target
    index, so any instruction that is a jump target acts as a barrier.
    """
    targets = {
        instruction.operand for instruction in code if instruction.op in JUMP_OPS
    }
    output: list[Instruction] = []
    #: map old index -> new index, for retargeting jumps afterwards
    remap: dict[int, int] = {}

    def is_const(instruction: Instruction) -> bool:
        return instruction.op is Op.PUSH_CONST

    for old_index, instruction in enumerate(code):
        remap[old_index] = len(output)
        barrier = old_index in targets
        if (
            not barrier
            and instruction.op in _FOLDABLE_BINARY
            and len(output) >= 2
            and is_const(output[-1])
            and is_const(output[-2])
            # Never fold across an instruction that something jumps to:
            # those two pushes must stay addressable.
            and remap_safe(remap, old_index, targets)
        ):
            left = pool.constants[output[-2].operand]
            right = pool.constants[output[-1].operand]
            try:
                folded = _FOLDABLE_BINARY[instruction.op](left, right)
            except VMError:
                output.append(instruction)  # would fail at runtime: keep it
                continue
            if isinstance(folded, list):
                output.append(instruction)  # array concat: not a pool scalar
                continue
            output.pop()
            output.pop()
            output.append(Instruction(Op.PUSH_CONST, pool.add(folded)))
            continue
        if (
            not barrier
            and instruction.op is Op.NEG
            and output
            and is_const(output[-1])
            and remap_safe(remap, old_index, targets)
        ):
            value = pool.constants[output[-1].operand]
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                output.pop()
                output.append(Instruction(Op.PUSH_CONST, pool.add(-value)))
                continue
        if (
            not barrier
            and instruction.op is Op.NOT
            and output
            and is_const(output[-1])
            and remap_safe(remap, old_index, targets)
        ):
            value = pool.constants[output[-1].operand]
            if isinstance(value, bool):
                output.pop()
                output.append(Instruction(Op.PUSH_CONST, pool.add(not value)))
                continue
        output.append(instruction)

    remap[len(code)] = len(output)
    return [
        Instruction(instruction.op, remap[instruction.operand])
        if instruction.op in JUMP_OPS
        else instruction
        for instruction in output
    ]


def remap_safe(remap: dict[int, int], old_index: int, targets: set) -> bool:
    """Whether the two instructions being folded are not jump targets.

    The operands sit at old indices ``old_index-1`` and ``old_index-2``;
    if either is a target, folding would remove an addressable point.
    """
    return (old_index - 1) not in targets and (old_index - 2) not in targets


#: Branch flips for the ``NOT; JUMP_IF_*`` peephole.
_FLIPPED_BRANCH = {
    Op.JUMP_IF_FALSE: Op.JUMP_IF_TRUE,
    Op.JUMP_IF_TRUE: Op.JUMP_IF_FALSE,
}

#: Pushes with no side effect, deletable when immediately popped.
_PURE_PUSH = {Op.PUSH_CONST, Op.PUSH_NONE, Op.DUP}


def _peephole(code: list[Instruction]) -> list[Instruction]:
    """One pass of two-instruction peepholes (iterated to fixpoint).

    Each rewrite consumes a pair ``(i, i+1)``.  The *second* instruction
    must not be a jump target — a jump landing on it expects the
    unrewritten stack state.  The first may be one: jumps to it are
    remapped to the replacement (branch flip) or to the next surviving
    instruction (deleted stack-neutral pair), which is equivalent.
    """
    targets = {
        instruction.operand for instruction in code if instruction.op in JUMP_OPS
    }
    output: list[Instruction] = []
    remap: dict[int, int] = {}
    skip_next = False
    for index, instruction in enumerate(code):
        remap[index] = len(output)
        if skip_next:
            skip_next = False
            continue
        following = code[index + 1] if index + 1 < len(code) else None
        if following is not None and (index + 1) not in targets:
            if instruction.op is Op.NOT and following.op in _FLIPPED_BRANCH:
                output.append(
                    Instruction(_FLIPPED_BRANCH[following.op], following.operand)
                )
                skip_next = True
                continue
            if instruction.op in _PURE_PUSH and following.op is Op.POP:
                skip_next = True
                continue
        output.append(instruction)

    if len(output) == len(code):
        return code
    return [
        Instruction(instruction.op, remap[instruction.operand])
        if instruction.op in JUMP_OPS
        else instruction
        for instruction in output
    ]


def _thread_jumps(code: list[Instruction]) -> list[Instruction]:
    """Retarget jumps that land on unconditional jumps."""

    def final_target(start: int) -> int:
        seen = set()
        current = start
        while (
            0 <= current < len(code)
            and code[current].op is Op.JUMP
            and current not in seen
        ):
            seen.add(current)
            current = code[current].operand
        return current

    return [
        Instruction(instruction.op, final_target(instruction.operand))
        if instruction.op in JUMP_OPS
        else instruction
        for instruction in code
    ]


def _eliminate_dead_code(code: list[Instruction]) -> list[Instruction]:
    """Drop instructions unreachable from index 0; re-index jumps."""
    reachable = set()
    worklist = [0]
    while worklist:
        index = worklist.pop()
        if index in reachable or not 0 <= index < len(code):
            continue
        reachable.add(index)
        instruction = code[index]
        if instruction.op is Op.JUMP:
            worklist.append(instruction.operand)
        elif instruction.op in (Op.JUMP_IF_FALSE, Op.JUMP_IF_TRUE):
            worklist.append(instruction.operand)
            worklist.append(index + 1)
        elif instruction.op is Op.RET:
            pass  # control never falls through
        else:
            worklist.append(index + 1)

    if len(reachable) == len(code):
        return code
    kept = sorted(reachable)
    remap = {old: new for new, old in enumerate(kept)}
    return [
        Instruction(code[old].op, remap[code[old].operand])
        if code[old].op in JUMP_OPS
        else code[old]
        for old in kept
    ]


def optimize_function(
    function: FunctionCode, constants: list
) -> FunctionCode:
    """Optimize one function body in the context of the shared pool."""
    pool = _Pool(constants)
    code = list(function.code)
    # Iterate folding + peepholes to a fixpoint: folding exposes new
    # foldable pairs (e.g. 1+2+3) and peephole deletions expose new
    # adjacencies.  Threading and DCE run once after; they are idempotent.
    for _ in range(8):
        rewritten = _peephole(_fold_constants(code, pool))
        if rewritten == code:
            break
        code = rewritten
    code = _thread_jumps(code)
    code = _eliminate_dead_code(code)
    return FunctionCode(
        name=function.name,
        n_params=function.n_params,
        n_locals=function.n_locals,
        returns_value=function.returns_value,
        code=code,
    )


def optimize_program(program: CompiledProgram) -> CompiledProgram:
    """Return an optimized copy of ``program`` (verified)."""
    constants = list(program.constants)
    functions = [
        optimize_function(function, constants) for function in program.functions
    ]
    optimized = CompiledProgram(
        functions=functions, constants=constants, source=program.source
    )
    optimized.verify()
    return optimized
