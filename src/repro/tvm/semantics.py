"""Semantic analysis for the Tasklet language.

Responsibilities:

* build the function table, rejecting duplicates and builtin shadowing;
* resolve every name to a storage *slot* (parameters first, then locals in
  declaration order — slots are function-local and never reused, which
  keeps the compiler trivial at a negligible memory cost);
* type-check every expression and statement, annotating AST nodes in place
  (``expr_type`` on expressions, ``slot`` on names/declarations);
* verify that non-void functions return on every control path;
* verify ``break``/``continue`` appear only inside loops.

The pass mutates the AST it is given and returns it, so callers can write
``analyze(parse(src))``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import SemanticError
from . import ast_nodes as ast
from .builtins import BUILTINS, check_builtin_call
from .lang_types import LangType, is_assignable, is_numeric, unify_numeric

_COMPARABLE = {LangType.INT, LangType.FLOAT, LangType.STRING, LangType.ANY}


@dataclass
class _Symbol:
    name: str
    lang_type: LangType
    slot: int


class _Scope:
    """One lexical scope: a name→symbol map with a parent link."""

    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.symbols: dict[str, _Symbol] = {}

    def declare(self, symbol: _Symbol) -> bool:
        """Add a symbol; returns False if the name exists *in this scope*."""
        if symbol.name in self.symbols:
            return False
        self.symbols[symbol.name] = symbol
        return True

    def resolve(self, name: str) -> _Symbol | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class Analyzer:
    """Runs semantic analysis over one :class:`~repro.tvm.ast_nodes.Program`."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.functions: dict[str, ast.FunctionDecl] = {}
        # Per-function state:
        self._current: ast.FunctionDecl | None = None
        self._next_slot = 0
        self._loop_depth = 0

    # -- entry point ----------------------------------------------------------

    def analyze(self) -> ast.Program:
        """Run all checks; returns the annotated program or raises."""
        for function in self.program.functions:
            if function.name in BUILTINS:
                raise SemanticError(
                    f"function {function.name!r} shadows a builtin",
                    function.line,
                    function.column,
                )
            if function.name in self.functions:
                raise SemanticError(
                    f"duplicate function {function.name!r}",
                    function.line,
                    function.column,
                )
            self.functions[function.name] = function
        for function in self.program.functions:
            self._check_function(function)
        return self.program

    # -- functions ----------------------------------------------------------

    def _check_function(self, function: ast.FunctionDecl) -> None:
        self._current = function
        self._next_slot = 0
        self._loop_depth = 0
        scope = _Scope()
        for param in function.params:
            symbol = _Symbol(param.name, param.declared_type, self._next_slot)
            if not scope.declare(symbol):
                raise SemanticError(
                    f"duplicate parameter {param.name!r}", param.line, param.column
                )
            self._next_slot += 1
        self._check_block(function.body, _Scope(scope))
        function.n_locals = self._next_slot
        if function.return_type is not LangType.VOID:
            if not self._definitely_returns(function.body):
                raise SemanticError(
                    f"function {function.name!r} must return "
                    f"{function.return_type} on every path",
                    function.line,
                    function.column,
                )

    def _definitely_returns(self, statement: ast.Stmt) -> bool:
        """Conservative all-paths-return analysis."""
        if isinstance(statement, ast.Return):
            return True
        if isinstance(statement, ast.Block):
            return any(self._definitely_returns(child) for child in statement.statements)
        if isinstance(statement, ast.If):
            if statement.else_branch is None:
                return False
            return self._definitely_returns(
                statement.then_branch
            ) and self._definitely_returns(statement.else_branch)
        return False

    # -- statements --------------------------------------------------------

    def _check_block(self, block: ast.Block, scope: _Scope) -> None:
        for statement in block.statements:
            self._check_statement(statement, scope)

    def _check_statement(self, statement: ast.Stmt, scope: _Scope) -> None:
        if isinstance(statement, ast.VarDecl):
            self._check_var_decl(statement, scope)
        elif isinstance(statement, ast.Assign):
            self._check_assign(statement, scope)
        elif isinstance(statement, ast.IndexAssign):
            self._check_index_assign(statement, scope)
        elif isinstance(statement, ast.ExprStmt):
            self._check_expr(statement.expr, scope)
        elif isinstance(statement, ast.Block):
            self._check_block(statement, _Scope(scope))
        elif isinstance(statement, ast.If):
            self._check_condition(statement.condition, scope)
            self._check_block(statement.then_branch, _Scope(scope))
            if statement.else_branch is not None:
                self._check_statement(statement.else_branch, scope)
        elif isinstance(statement, ast.While):
            self._check_condition(statement.condition, scope)
            self._loop_depth += 1
            self._check_block(statement.body, _Scope(scope))
            self._loop_depth -= 1
        elif isinstance(statement, ast.For):
            header_scope = _Scope(scope)
            if statement.init is not None:
                self._check_statement(statement.init, header_scope)
            if statement.condition is not None:
                self._check_condition(statement.condition, header_scope)
            self._loop_depth += 1
            self._check_block(statement.body, _Scope(header_scope))
            if statement.step is not None:
                self._check_statement(statement.step, header_scope)
            self._loop_depth -= 1
        elif isinstance(statement, ast.Return):
            self._check_return(statement, scope)
        elif isinstance(statement, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                keyword = "break" if isinstance(statement, ast.Break) else "continue"
                raise SemanticError(
                    f"{keyword!r} outside of a loop", statement.line, statement.column
                )
        else:  # pragma: no cover - parser produces no other nodes
            raise SemanticError(
                f"unhandled statement {type(statement).__name__}",
                statement.line,
                statement.column,
            )

    def _check_var_decl(self, decl: ast.VarDecl, scope: _Scope) -> None:
        init_type = self._check_expr(decl.init, scope)
        if not is_assignable(decl.declared_type, init_type):
            raise SemanticError(
                f"cannot initialise {decl.declared_type} variable "
                f"{decl.name!r} with {init_type}",
                decl.line,
                decl.column,
            )
        symbol = _Symbol(decl.name, decl.declared_type, self._next_slot)
        if not scope.declare(symbol):
            raise SemanticError(
                f"duplicate variable {decl.name!r} in this scope",
                decl.line,
                decl.column,
            )
        decl.slot = self._next_slot
        self._next_slot += 1

    def _check_assign(self, assign: ast.Assign, scope: _Scope) -> None:
        symbol = scope.resolve(assign.name)
        if symbol is None:
            raise SemanticError(
                f"assignment to undeclared variable {assign.name!r}",
                assign.line,
                assign.column,
            )
        value_type = self._check_expr(assign.value, scope)
        if not is_assignable(symbol.lang_type, value_type):
            raise SemanticError(
                f"cannot assign {value_type} to {symbol.lang_type} "
                f"variable {assign.name!r}",
                assign.line,
                assign.column,
            )
        assign.slot = symbol.slot

    def _check_index_assign(self, assign: ast.IndexAssign, scope: _Scope) -> None:
        base_type = self._check_expr(assign.base, scope)
        if base_type not in (LangType.ARRAY, LangType.ANY):
            raise SemanticError(
                f"cannot index-assign into {base_type}", assign.line, assign.column
            )
        index_type = self._check_expr(assign.index, scope)
        if index_type not in (LangType.INT, LangType.ANY):
            raise SemanticError(
                f"array index must be int, got {index_type}",
                assign.line,
                assign.column,
            )
        self._check_expr(assign.value, scope)

    def _check_return(self, statement: ast.Return, scope: _Scope) -> None:
        assert self._current is not None
        expected = self._current.return_type
        if statement.value is None:
            if expected is not LangType.VOID:
                raise SemanticError(
                    f"function {self._current.name!r} must return {expected}",
                    statement.line,
                    statement.column,
                )
            return
        if expected is LangType.VOID:
            raise SemanticError(
                f"void function {self._current.name!r} cannot return a value",
                statement.line,
                statement.column,
            )
        actual = self._check_expr(statement.value, scope)
        if not is_assignable(expected, actual):
            raise SemanticError(
                f"return type mismatch in {self._current.name!r}: "
                f"expected {expected}, got {actual}",
                statement.line,
                statement.column,
            )

    def _check_condition(self, condition: ast.Expr, scope: _Scope) -> None:
        condition_type = self._check_expr(condition, scope)
        if condition_type not in (LangType.BOOL, LangType.ANY):
            raise SemanticError(
                f"condition must be bool, got {condition_type}",
                condition.line,
                condition.column,
            )

    # -- expressions ----------------------------------------------------------

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> LangType:
        result = self._infer(expr, scope)
        expr.expr_type = result
        return result

    def _infer(self, expr: ast.Expr, scope: _Scope) -> LangType:
        if isinstance(expr, ast.IntLiteral):
            return LangType.INT
        if isinstance(expr, ast.FloatLiteral):
            return LangType.FLOAT
        if isinstance(expr, ast.BoolLiteral):
            return LangType.BOOL
        if isinstance(expr, ast.StringLiteral):
            return LangType.STRING
        if isinstance(expr, ast.ArrayLiteral):
            for element in expr.elements:
                self._check_expr(element, scope)
            return LangType.ARRAY
        if isinstance(expr, ast.Name):
            symbol = scope.resolve(expr.identifier)
            if symbol is None:
                raise SemanticError(
                    f"undeclared variable {expr.identifier!r}", expr.line, expr.column
                )
            expr.slot = symbol.slot
            return symbol.lang_type
        if isinstance(expr, ast.Unary):
            return self._infer_unary(expr, scope)
        if isinstance(expr, ast.Binary):
            return self._infer_binary(expr, scope)
        if isinstance(expr, ast.Call):
            return self._infer_call(expr, scope)
        if isinstance(expr, ast.Index):
            return self._infer_index(expr, scope)
        raise SemanticError(  # pragma: no cover - parser produces no other nodes
            f"unhandled expression {type(expr).__name__}", expr.line, expr.column
        )

    def _infer_unary(self, expr: ast.Unary, scope: _Scope) -> LangType:
        operand_type = self._check_expr(expr.operand, scope)
        if expr.op == "-":
            if not is_numeric(operand_type):
                raise SemanticError(
                    f"unary '-' needs a numeric operand, got {operand_type}",
                    expr.line,
                    expr.column,
                )
            return operand_type
        # expr.op == "!"
        if operand_type not in (LangType.BOOL, LangType.ANY):
            raise SemanticError(
                f"'!' needs a bool operand, got {operand_type}", expr.line, expr.column
            )
        return LangType.BOOL

    def _infer_binary(self, expr: ast.Binary, scope: _Scope) -> LangType:
        left = self._check_expr(expr.left, scope)
        right = self._check_expr(expr.right, scope)
        op = expr.op
        if op in ("&&", "||"):
            for side, side_type in ((expr.left, left), (expr.right, right)):
                if side_type not in (LangType.BOOL, LangType.ANY):
                    raise SemanticError(
                        f"{op!r} needs bool operands, got {side_type}",
                        side.line,
                        side.column,
                    )
            return LangType.BOOL
        if op in ("==", "!="):
            # Equality is defined between compatible types only.
            if LangType.ANY in (left, right) or left is right or (
                is_numeric(left) and is_numeric(right)
            ):
                return LangType.BOOL
            raise SemanticError(
                f"cannot compare {left} with {right}", expr.line, expr.column
            )
        if op in ("<", "<=", ">", ">="):
            ok = (
                LangType.ANY in (left, right)
                or (is_numeric(left) and is_numeric(right))
                or (left is LangType.STRING and right is LangType.STRING)
            )
            if not ok or left not in _COMPARABLE or right not in _COMPARABLE:
                raise SemanticError(
                    f"cannot order {left} and {right}", expr.line, expr.column
                )
            return LangType.BOOL
        if op == "+":
            # '+' also concatenates strings and arrays.
            if left is LangType.STRING and right is LangType.STRING:
                return LangType.STRING
            if left is LangType.ARRAY and right is LangType.ARRAY:
                return LangType.ARRAY
            if LangType.ANY in (left, right) and not (
                is_numeric(left) or is_numeric(right)
            ):
                return LangType.ANY
        result = unify_numeric(left, right)
        if result is None:
            raise SemanticError(
                f"operator {op!r} cannot combine {left} and {right}",
                expr.line,
                expr.column,
            )
        return result

    def _infer_call(self, expr: ast.Call, scope: _Scope) -> LangType:
        arg_types = [self._check_expr(arg, scope) for arg in expr.args]
        function = self.functions.get(expr.callee)
        if function is not None:
            expr.is_builtin = False
            if len(arg_types) != len(function.params):
                raise SemanticError(
                    f"{expr.callee}() expects {len(function.params)} "
                    f"arguments, got {len(arg_types)}",
                    expr.line,
                    expr.column,
                )
            for param, arg_type, arg in zip(function.params, arg_types, expr.args):
                if not is_assignable(param.declared_type, arg_type):
                    raise SemanticError(
                        f"argument {param.name!r} of {expr.callee}() expects "
                        f"{param.declared_type}, got {arg_type}",
                        arg.line,
                        arg.column,
                    )
            return function.return_type
        result = check_builtin_call(expr.callee, arg_types)
        if isinstance(result, str):
            raise SemanticError(result, expr.line, expr.column)
        expr.is_builtin = True
        return result

    def _infer_index(self, expr: ast.Index, scope: _Scope) -> LangType:
        base_type = self._check_expr(expr.base, scope)
        index_type = self._check_expr(expr.index, scope)
        if index_type not in (LangType.INT, LangType.ANY):
            raise SemanticError(
                f"index must be int, got {index_type}", expr.line, expr.column
            )
        if base_type is LangType.STRING:
            return LangType.STRING  # single-character string, like s[i:i+1]
        if base_type in (LangType.ARRAY, LangType.ANY):
            return LangType.ANY
        raise SemanticError(f"cannot index {base_type}", expr.line, expr.column)


def analyze(program: ast.Program) -> ast.Program:
    """Run semantic analysis in one call."""
    return Analyzer(program).analyze()
