"""Recursive-descent parser for the Tasklet language.

Grammar (EBNF, terminals quoted)::

    program     = { function } EOF ;
    function    = "func" IDENT "(" [ params ] ")" [ "->" type ] block ;
    params      = param { "," param } ;
    param       = IDENT ":" type ;
    type        = "int" | "float" | "bool" | "string" | "array" | "void" ;
    block       = "{" { statement } "}" ;
    statement   = var_decl | if_stmt | while_stmt | for_stmt | return_stmt
                | break_stmt | continue_stmt | block | simple_stmt ";" ;
    var_decl    = "var" IDENT ":" type "=" expression ";" ;
    simple_stmt = assignment | expression ;
    assignment  = (IDENT | postfix "[" expression "]") "=" expression ;
    if_stmt     = "if" "(" expression ")" block [ "else" (if_stmt | block) ] ;
    while_stmt  = "while" "(" expression ")" block ;
    for_stmt    = "for" "(" [for_init] ";" [expression] ";" [for_step] ")" block ;
    return_stmt = "return" [ expression ] ";" ;
    expression  = or_expr ;  (precedence: || < && < == != < < <= > >= < + - < * / % < unary < postfix)
    postfix     = primary { "(" args ")" | "[" expression "]" } ;
    primary     = literal | IDENT | "(" expression ")" | "[" args "]" ;
"""

from __future__ import annotations

from ..common.errors import ParserError
from . import ast_nodes as ast
from .lang_types import LangType
from .lexer import tokenize
from .tokens import TYPE_TOKENS, Token, TokenType

_TYPE_BY_TOKEN = {
    TokenType.T_INT: LangType.INT,
    TokenType.T_FLOAT: LangType.FLOAT,
    TokenType.T_BOOL: LangType.BOOL,
    TokenType.T_STRING: LangType.STRING,
    TokenType.T_ARRAY: LangType.ARRAY,
    TokenType.T_VOID: LangType.VOID,
}

# Binary operator precedence tiers, lowest binding first.
_PRECEDENCE: list[set[TokenType]] = [
    {TokenType.OR},
    {TokenType.AND},
    {TokenType.EQ, TokenType.NE},
    {TokenType.LT, TokenType.LE, TokenType.GT, TokenType.GE},
    {TokenType.PLUS, TokenType.MINUS},
    {TokenType.STAR, TokenType.SLASH, TokenType.PERCENT},
]

_OP_TEXT = {
    TokenType.OR: "||",
    TokenType.AND: "&&",
    TokenType.EQ: "==",
    TokenType.NE: "!=",
    TokenType.LT: "<",
    TokenType.LE: "<=",
    TokenType.GT: ">",
    TokenType.GE: ">=",
    TokenType.PLUS: "+",
    TokenType.MINUS: "-",
    TokenType.STAR: "*",
    TokenType.SLASH: "/",
    TokenType.PERCENT: "%",
}


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token stream helpers -------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _check(self, token_type: TokenType) -> bool:
        return self._peek().type is token_type

    def _match(self, token_type: TokenType) -> Token | None:
        if self._check(token_type):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, what: str) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise ParserError(
                f"expected {what}, found {token.text or token.type.name!r}",
                line=token.line,
                column=token.column,
            )
        return self._advance()

    def _error(self, message: str) -> ParserError:
        token = self._peek()
        return ParserError(message, line=token.line, column=token.column)

    # -- declarations ----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        """Parse a full compilation unit."""
        first = self._peek()
        functions: list[ast.FunctionDecl] = []
        while not self._check(TokenType.EOF):
            functions.append(self._parse_function())
        if not functions:
            raise ParserError("empty program: at least one function is required", 1, 1)
        return ast.Program(line=first.line, column=first.column, functions=functions)

    def _parse_function(self) -> ast.FunctionDecl:
        keyword = self._expect(TokenType.FUNC, "'func'")
        name = self._expect(TokenType.IDENT, "function name")
        self._expect(TokenType.LPAREN, "'('")
        params: list[ast.Param] = []
        if not self._check(TokenType.RPAREN):
            params.append(self._parse_param())
            while self._match(TokenType.COMMA):
                params.append(self._parse_param())
        self._expect(TokenType.RPAREN, "')'")
        return_type = LangType.VOID
        if self._match(TokenType.ARROW):
            return_type = self._parse_type()
        body = self._parse_block()
        return ast.FunctionDecl(
            line=keyword.line,
            column=keyword.column,
            name=name.value,
            params=params,
            return_type=return_type,
            body=body,
        )

    def _parse_param(self) -> ast.Param:
        name = self._expect(TokenType.IDENT, "parameter name")
        self._expect(TokenType.COLON, "':' after parameter name")
        param_type = self._parse_type()
        if param_type is LangType.VOID:
            raise ParserError(
                "parameters cannot have type 'void'", name.line, name.column
            )
        return ast.Param(
            line=name.line, column=name.column, name=name.value, declared_type=param_type
        )

    def _parse_type(self) -> LangType:
        token = self._peek()
        if token.type not in TYPE_TOKENS:
            raise self._error(f"expected a type name, found {token.text!r}")
        self._advance()
        return _TYPE_BY_TOKEN[token.type]

    # -- statements --------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        brace = self._expect(TokenType.LBRACE, "'{'")
        statements: list[ast.Stmt] = []
        while not self._check(TokenType.RBRACE):
            if self._check(TokenType.EOF):
                raise self._error("unterminated block: missing '}'")
            statements.append(self._parse_statement())
        self._expect(TokenType.RBRACE, "'}'")
        return ast.Block(line=brace.line, column=brace.column, statements=statements)

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.type is TokenType.VAR:
            decl = self._parse_var_decl()
            self._expect(TokenType.SEMICOLON, "';' after declaration")
            return decl
        if token.type is TokenType.IF:
            return self._parse_if()
        if token.type is TokenType.WHILE:
            return self._parse_while()
        if token.type is TokenType.FOR:
            return self._parse_for()
        if token.type is TokenType.RETURN:
            self._advance()
            value = None
            if not self._check(TokenType.SEMICOLON):
                value = self._parse_expression()
            self._expect(TokenType.SEMICOLON, "';' after return")
            return ast.Return(line=token.line, column=token.column, value=value)
        if token.type is TokenType.BREAK:
            self._advance()
            self._expect(TokenType.SEMICOLON, "';' after break")
            return ast.Break(line=token.line, column=token.column)
        if token.type is TokenType.CONTINUE:
            self._advance()
            self._expect(TokenType.SEMICOLON, "';' after continue")
            return ast.Continue(line=token.line, column=token.column)
        if token.type is TokenType.LBRACE:
            return self._parse_block()
        statement = self._parse_simple_statement()
        self._expect(TokenType.SEMICOLON, "';' after statement")
        return statement

    def _parse_var_decl(self) -> ast.VarDecl:
        keyword = self._expect(TokenType.VAR, "'var'")
        name = self._expect(TokenType.IDENT, "variable name")
        self._expect(TokenType.COLON, "':' after variable name")
        declared = self._parse_type()
        if declared is LangType.VOID:
            raise ParserError(
                "variables cannot have type 'void'", name.line, name.column
            )
        self._expect(TokenType.ASSIGN, "'=' (variables must be initialised)")
        init = self._parse_expression()
        return ast.VarDecl(
            line=keyword.line,
            column=keyword.column,
            name=name.value,
            declared_type=declared,
            init=init,
        )

    _COMPOUND_ASSIGN = {
        TokenType.PLUS_ASSIGN: "+",
        TokenType.MINUS_ASSIGN: "-",
        TokenType.STAR_ASSIGN: "*",
        TokenType.SLASH_ASSIGN: "/",
        TokenType.PERCENT_ASSIGN: "%",
    }

    def _parse_simple_statement(self) -> ast.Stmt:
        """Assignment or bare expression (without the trailing semicolon)."""
        expr = self._parse_expression()
        compound = self._peek().type
        if compound in self._COMPOUND_ASSIGN:
            # `x += e` desugars to `x = x + (e)`.  Restricted to simple
            # names: for an indexed target the desugaring would evaluate
            # the base and index twice, which is observable.
            op_token = self._advance()
            if not isinstance(expr, ast.Name):
                raise ParserError(
                    "compound assignment targets must be simple variables",
                    line=expr.line,
                    column=expr.column,
                )
            value = self._parse_expression()
            combined = ast.Binary(
                line=op_token.line,
                column=op_token.column,
                op=self._COMPOUND_ASSIGN[compound],
                left=ast.Name(
                    line=expr.line, column=expr.column, identifier=expr.identifier
                ),
                right=value,
            )
            return ast.Assign(
                line=expr.line,
                column=expr.column,
                name=expr.identifier,
                value=combined,
            )
        if self._match(TokenType.ASSIGN):
            value = self._parse_expression()
            if isinstance(expr, ast.Name):
                assign = ast.Assign(
                    line=expr.line, column=expr.column, name=expr.identifier, value=value
                )
                return assign
            if isinstance(expr, ast.Index):
                return ast.IndexAssign(
                    line=expr.line,
                    column=expr.column,
                    base=expr.base,
                    index=expr.index,
                    value=value,
                )
            raise ParserError(
                "invalid assignment target", line=expr.line, column=expr.column
            )
        return ast.ExprStmt(line=expr.line, column=expr.column, expr=expr)

    def _parse_if(self) -> ast.If:
        keyword = self._expect(TokenType.IF, "'if'")
        self._expect(TokenType.LPAREN, "'(' after if")
        condition = self._parse_expression()
        self._expect(TokenType.RPAREN, "')' after condition")
        then_branch = self._parse_block()
        else_branch: ast.Stmt | None = None
        if self._match(TokenType.ELSE):
            if self._check(TokenType.IF):
                else_branch = self._parse_if()
            else:
                else_branch = self._parse_block()
        return ast.If(
            line=keyword.line,
            column=keyword.column,
            condition=condition,
            then_branch=then_branch,
            else_branch=else_branch,
        )

    def _parse_while(self) -> ast.While:
        keyword = self._expect(TokenType.WHILE, "'while'")
        self._expect(TokenType.LPAREN, "'(' after while")
        condition = self._parse_expression()
        self._expect(TokenType.RPAREN, "')' after condition")
        body = self._parse_block()
        return ast.While(
            line=keyword.line, column=keyword.column, condition=condition, body=body
        )

    def _parse_for(self) -> ast.For:
        keyword = self._expect(TokenType.FOR, "'for'")
        self._expect(TokenType.LPAREN, "'(' after for")
        init: ast.Stmt | None = None
        if not self._check(TokenType.SEMICOLON):
            if self._check(TokenType.VAR):
                init = self._parse_var_decl()
            else:
                init = self._parse_simple_statement()
        self._expect(TokenType.SEMICOLON, "';' after for-init")
        condition: ast.Expr | None = None
        if not self._check(TokenType.SEMICOLON):
            condition = self._parse_expression()
        self._expect(TokenType.SEMICOLON, "';' after for-condition")
        step: ast.Stmt | None = None
        if not self._check(TokenType.RPAREN):
            step = self._parse_simple_statement()
        self._expect(TokenType.RPAREN, "')' after for-step")
        body = self._parse_block()
        return ast.For(
            line=keyword.line,
            column=keyword.column,
            init=init,
            condition=condition,
            step=step,
            body=body,
        )

    # -- expressions ----------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_binary(0)

    def _parse_binary(self, tier: int) -> ast.Expr:
        if tier >= len(_PRECEDENCE):
            return self._parse_unary()
        left = self._parse_binary(tier + 1)
        while self._peek().type in _PRECEDENCE[tier]:
            op_token = self._advance()
            right = self._parse_binary(tier + 1)
            left = ast.Binary(
                line=op_token.line,
                column=op_token.column,
                op=_OP_TEXT[op_token.type],
                left=left,
                right=right,
            )
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.type in (TokenType.MINUS, TokenType.NOT):
            self._advance()
            operand = self._parse_unary()
            op = "-" if token.type is TokenType.MINUS else "!"
            return ast.Unary(line=token.line, column=token.column, op=op, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._check(TokenType.LPAREN):
                if not isinstance(expr, ast.Name):
                    raise ParserError(
                        "only named functions can be called",
                        line=expr.line,
                        column=expr.column,
                    )
                self._advance()
                args: list[ast.Expr] = []
                if not self._check(TokenType.RPAREN):
                    args.append(self._parse_expression())
                    while self._match(TokenType.COMMA):
                        args.append(self._parse_expression())
                self._expect(TokenType.RPAREN, "')' after arguments")
                expr = ast.Call(
                    line=expr.line, column=expr.column, callee=expr.identifier, args=args
                )
            elif self._check(TokenType.LBRACKET):
                bracket = self._advance()
                index = self._parse_expression()
                self._expect(TokenType.RBRACKET, "']' after index")
                expr = ast.Index(
                    line=bracket.line, column=bracket.column, base=expr, index=index
                )
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.INT:
            self._advance()
            return ast.IntLiteral(line=token.line, column=token.column, value=token.value)
        if token.type is TokenType.FLOAT:
            self._advance()
            return ast.FloatLiteral(
                line=token.line, column=token.column, value=token.value
            )
        if token.type in (TokenType.TRUE, TokenType.FALSE):
            self._advance()
            return ast.BoolLiteral(
                line=token.line, column=token.column, value=token.value
            )
        if token.type is TokenType.STRING:
            self._advance()
            return ast.StringLiteral(
                line=token.line, column=token.column, value=token.value
            )
        if token.type is TokenType.IDENT:
            self._advance()
            return ast.Name(line=token.line, column=token.column, identifier=token.value)
        if token.type is TokenType.T_ARRAY:
            # `array(n)` builtin call: 'array' is a keyword, special-case it.
            self._advance()
            self._expect(TokenType.LPAREN, "'(' after array")
            args = [self._parse_expression()]
            while self._match(TokenType.COMMA):
                args.append(self._parse_expression())
            self._expect(TokenType.RPAREN, "')' after arguments")
            return ast.Call(
                line=token.line, column=token.column, callee="array", args=args
            )
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self._parse_expression()
            self._expect(TokenType.RPAREN, "')' to close parenthesis")
            return expr
        if token.type is TokenType.LBRACKET:
            self._advance()
            elements: list[ast.Expr] = []
            if not self._check(TokenType.RBRACKET):
                elements.append(self._parse_expression())
                while self._match(TokenType.COMMA):
                    elements.append(self._parse_expression())
            self._expect(TokenType.RBRACKET, "']' to close array literal")
            return ast.ArrayLiteral(
                line=token.line, column=token.column, elements=elements
            )
        # int(x) / float(x) / str via ident handled above; int/float are type
        # keywords, so allow them as conversion calls here.
        if token.type in (TokenType.T_INT, TokenType.T_FLOAT, TokenType.T_STRING):
            self._advance()
            self._expect(TokenType.LPAREN, f"'(' after {token.text}")
            args = [self._parse_expression()]
            self._expect(TokenType.RPAREN, "')' after argument")
            callee = {"int": "int", "float": "float", "string": "str"}[token.text]
            return ast.Call(line=token.line, column=token.column, callee=callee, args=args)
        raise self._error(f"unexpected token {token.text!r} in expression")


def parse(source: str) -> ast.Program:
    """Lex and parse Tasklet ``source`` into an AST."""
    return Parser(tokenize(source)).parse_program()
