"""Builtin functions of the Tasklet Virtual Machine.

Builtins are the only bridge between Tasklet code and the host: pure math,
array/string manipulation, conversions, and a *seeded* random source.  A
Tasklet cannot touch files, sockets, the clock, or the host process — that
closed world is what makes Tasklets safe to run on strangers' devices and
makes redundant executions bit-identical (the RNG seed travels with the
execution request, so replicas draw the same numbers).

Each builtin declares a static signature used by semantic analysis and an
implementation invoked by the VM.  ``result_type`` is a function of the
argument types so that e.g. ``min(int, int) -> int`` but
``min(int, float) -> float``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from ..common.errors import VMError, VMTypeError
from .lang_types import LangType, is_numeric

#: Hard cap on ``array(n)`` allocations; prevents a 3-instruction Tasklet
#: from exhausting provider memory before fuel metering can react.
MAX_ALLOC_ELEMENTS = 16_000_000


@dataclass(frozen=True)
class BuiltinSpec:
    """Static + dynamic description of one builtin."""

    name: str
    min_arity: int
    max_arity: int
    #: Given the static argument types, return the result type or raise a
    #: string describing the mismatch (semantics converts it to an error).
    result_type: Callable[[Sequence[LangType]], LangType]
    #: Runtime implementation: (rng, args) -> value.  ``rng`` is the
    #: execution's seeded generator (only ``rand``/``rand_int`` use it).
    impl: Callable


class _SignatureError(Exception):
    """Raised by ``result_type`` checkers on a static type mismatch."""


def _require_numeric(args: Sequence[LangType], name: str) -> None:
    for arg in args:
        if not is_numeric(arg):
            raise _SignatureError(f"{name}() expects numeric arguments, got {arg}")


def _numeric_join(args: Sequence[LangType], name: str) -> LangType:
    _require_numeric(args, name)
    if LangType.FLOAT in args:
        return LangType.FLOAT
    return LangType.INT


def _always(result: LangType) -> Callable[[Sequence[LangType]], LangType]:
    def check(args: Sequence[LangType]) -> LangType:
        return result

    return check


def _float_fn(args: Sequence[LangType]) -> LangType:
    _require_numeric(args, "math builtin")
    return LangType.FLOAT


def _int_fn(args: Sequence[LangType]) -> LangType:
    _require_numeric(args, "math builtin")
    return LangType.INT


def _len_type(args: Sequence[LangType]) -> LangType:
    if args[0] not in (LangType.ARRAY, LangType.STRING, LangType.ANY):
        raise _SignatureError(f"len() expects array or string, got {args[0]}")
    return LangType.INT


def _push_type(args: Sequence[LangType]) -> LangType:
    if args[0] not in (LangType.ARRAY, LangType.ANY):
        raise _SignatureError(f"push() expects an array first argument, got {args[0]}")
    return LangType.INT


def _array_type(args: Sequence[LangType]) -> LangType:
    if args[0] not in (LangType.INT, LangType.ANY):
        raise _SignatureError(f"array() expects an int size, got {args[0]}")
    return LangType.ARRAY


def _substr_type(args: Sequence[LangType]) -> LangType:
    if args[0] not in (LangType.STRING, LangType.ANY):
        raise _SignatureError(f"substr() expects a string, got {args[0]}")
    if args[1] not in (LangType.INT, LangType.ANY) or args[2] not in (LangType.INT, LangType.ANY):
        raise _SignatureError("substr() bounds must be int")
    return LangType.STRING


# -- runtime implementations -------------------------------------------------


def _impl_array(rng, args):
    size = args[0]
    fill = args[1] if len(args) > 1 else 0
    if size < 0:
        raise VMError(f"array() size must be non-negative, got {size}")
    if size > MAX_ALLOC_ELEMENTS:
        raise VMError(f"array() size {size} exceeds allocation cap")
    return [fill] * size


def _impl_push(rng, args):
    target, value = args
    target.append(value)
    return len(target)


def _impl_pop(rng, args):
    (target,) = args
    if not target:
        raise VMError("pop() from empty array")
    return target.pop()


def _impl_log(rng, args):
    value = args[0]
    if value <= 0:
        raise VMError(f"log() domain error: {value}")
    return math.log(value)


def _impl_sqrt(rng, args):
    value = args[0]
    if value < 0:
        raise VMError(f"sqrt() domain error: {value}")
    return math.sqrt(value)


def _impl_int(rng, args):
    value = args[0]
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return int(value)
    if isinstance(value, str):
        try:
            return int(value.strip())
        except ValueError as exc:
            raise VMError(f"int() cannot parse {value!r}") from exc
    raise VMTypeError(f"int() cannot convert {type(value).__name__}")


def _impl_float(rng, args):
    value = args[0]
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError as exc:
            raise VMError(f"float() cannot parse {value!r}") from exc
    raise VMTypeError(f"float() cannot convert {type(value).__name__}")


def _impl_str(rng, args):
    value = args[0]
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _impl_rand(rng, args):
    return rng.random()


def _impl_rand_int(rng, args):
    low, high = args
    if low > high:
        raise VMError(f"rand_int() empty range [{low}, {high}]")
    return rng.randrange(low, high + 1)


def _impl_substr(rng, args):
    text, start, end = args
    if start < 0 or end > len(text) or start > end:
        raise VMError(f"substr() bounds [{start}, {end}) invalid for length {len(text)}")
    return text[start:end]


def _conv_type(expected: str):
    def check(args: Sequence[LangType]) -> LangType:
        return {"int": LangType.INT, "float": LangType.FLOAT, "str": LangType.STRING}[
            expected
        ]

    return check


#: The builtin registry, keyed by source-level name.  Indices into
#: ``BUILTIN_ORDER`` are what the bytecode's ``CALL_BUILTIN`` references,
#: so the order below is part of the wire format: append only.
BUILTINS: dict[str, BuiltinSpec] = {}
BUILTIN_ORDER: list[str] = []


def _register(spec: BuiltinSpec) -> None:
    BUILTINS[spec.name] = spec
    BUILTIN_ORDER.append(spec.name)


_register(BuiltinSpec("abs", 1, 1, lambda a: _numeric_join(a, "abs"), lambda r, a: abs(a[0])))
_register(BuiltinSpec("min", 2, 2, lambda a: _numeric_join(a, "min"), lambda r, a: min(a)))
_register(BuiltinSpec("max", 2, 2, lambda a: _numeric_join(a, "max"), lambda r, a: max(a)))
_register(BuiltinSpec("sqrt", 1, 1, _float_fn, _impl_sqrt))
_register(BuiltinSpec("pow", 2, 2, _float_fn, lambda r, a: math.pow(a[0], a[1])))
_register(BuiltinSpec("sin", 1, 1, _float_fn, lambda r, a: math.sin(a[0])))
_register(BuiltinSpec("cos", 1, 1, _float_fn, lambda r, a: math.cos(a[0])))
_register(BuiltinSpec("tan", 1, 1, _float_fn, lambda r, a: math.tan(a[0])))
_register(BuiltinSpec("exp", 1, 1, _float_fn, lambda r, a: math.exp(a[0])))
_register(BuiltinSpec("log", 1, 1, _float_fn, _impl_log))
_register(BuiltinSpec("floor", 1, 1, _int_fn, lambda r, a: math.floor(a[0])))
_register(BuiltinSpec("ceil", 1, 1, _int_fn, lambda r, a: math.ceil(a[0])))
_register(BuiltinSpec("len", 1, 1, _len_type, lambda r, a: len(a[0])))
_register(BuiltinSpec("push", 2, 2, _push_type, _impl_push))
_register(BuiltinSpec("pop", 1, 1, lambda a: LangType.ANY, _impl_pop))
_register(BuiltinSpec("array", 1, 2, _array_type, _impl_array))
_register(BuiltinSpec("int", 1, 1, _conv_type("int"), _impl_int))
_register(BuiltinSpec("float", 1, 1, _conv_type("float"), _impl_float))
_register(BuiltinSpec("str", 1, 1, _conv_type("str"), _impl_str))
_register(BuiltinSpec("rand", 0, 0, _always(LangType.FLOAT), _impl_rand))
_register(BuiltinSpec("rand_int", 2, 2, _int_fn, _impl_rand_int))
_register(BuiltinSpec("substr", 3, 3, _substr_type, _impl_substr))

#: Note on ``pop``: the static result type is ANY because arrays are
#: dynamically typed — the checker cannot know the element type.  The VM
#: returns whatever was stored; use conversions when the static type
#: matters.


def check_builtin_call(name: str, arg_types: Sequence[LangType]) -> LangType | str:
    """Validate a builtin call statically.

    Returns the result :class:`LangType` on success, or an error message
    string on failure (the caller owns positions, so it formats the error).
    """
    spec = BUILTINS.get(name)
    if spec is None:
        return f"unknown function {name!r}"
    if not spec.min_arity <= len(arg_types) <= spec.max_arity:
        if spec.min_arity == spec.max_arity:
            expected = str(spec.min_arity)
        else:
            expected = f"{spec.min_arity}..{spec.max_arity}"
        return f"{name}() expects {expected} arguments, got {len(arg_types)}"
    try:
        return spec.result_type(arg_types)
    except _SignatureError as exc:
        return str(exc)
