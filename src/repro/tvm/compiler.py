"""Compiler: analysed Tasklet AST → TVM bytecode.

The compiler is a single bottom-up pass over the annotated AST.  It relies
on the slot and builtin resolution done by semantic analysis, so it must
only ever be handed programs that went through
:func:`repro.tvm.semantics.analyze` (the :func:`compile_source` convenience
wrapper guarantees this).

Lowering notes:

* ``&&``/``||`` become short-circuiting jumps, so the right operand is not
  evaluated when the left decides the result;
* ``for`` desugars to ``init; while (cond) { body; step }`` with
  ``continue`` jumping to the step, matching C semantics;
* every function body is terminated with an implicit ``return`` (void
  functions return ``none``; the verifier requires explicit returns for
  value-returning functions, so the implicit tail is only reachable in
  void functions).
"""

from __future__ import annotations

from ..common.errors import CompileError
from . import ast_nodes as ast
from .bytecode import CompiledProgram, FunctionCode, Instruction
from .builtins import BUILTIN_ORDER
from .lang_types import LangType
from .opcodes import Op
from .parser import parse
from .semantics import analyze

_BUILTIN_INDEX = {name: position for position, name in enumerate(BUILTIN_ORDER)}

_BINARY_OPS = {
    "+": Op.ADD,
    "-": Op.SUB,
    "*": Op.MUL,
    "/": Op.DIV,
    "%": Op.MOD,
    "==": Op.EQ,
    "!=": Op.NE,
    "<": Op.LT,
    "<=": Op.LE,
    ">": Op.GT,
    ">=": Op.GE,
}


class _ConstantPool:
    """Deduplicating constant pool.

    Keys include the value's type so that ``1`` and ``1.0`` (equal in
    Python) get distinct entries — the distinction is visible to Tasklet
    programs through ``/`` semantics.
    """

    def __init__(self) -> None:
        self.values: list = []
        self._positions: dict[tuple, int] = {}

    def add(self, value) -> int:
        key = (type(value).__name__, value)
        if key in self._positions:
            return self._positions[key]
        position = len(self.values)
        self.values.append(value)
        self._positions[key] = position
        return position


class _LoopContext:
    """Patch lists for ``break``/``continue`` inside one loop."""

    def __init__(self) -> None:
        self.break_jumps: list[int] = []
        self.continue_jumps: list[int] = []


class _FunctionCompiler:
    """Compiles one function body to a list of instructions."""

    def __init__(self, program_compiler: "Compiler", function: ast.FunctionDecl):
        self.program_compiler = program_compiler
        self.function = function
        self.code: list[Instruction] = []
        self.loops: list[_LoopContext] = []

    # -- emit helpers ---------------------------------------------------------

    def _emit(self, op: Op, operand: int | None = None) -> int:
        """Append an instruction; returns its index (for patching)."""
        self.code.append(Instruction(op, operand))
        return len(self.code) - 1

    def _patch(self, position: int, target: int) -> None:
        """Set the jump target of the instruction at ``position``."""
        self.code[position] = Instruction(self.code[position].op, target)

    def _here(self) -> int:
        return len(self.code)

    # -- function ------------------------------------------------------------

    def compile(self) -> FunctionCode:
        self._compile_block(self.function.body)
        # Implicit void return; unreachable in value-returning functions
        # (semantics guarantees all paths return) but keeps the VM simple.
        self._emit(Op.PUSH_NONE)
        self._emit(Op.RET)
        return FunctionCode(
            name=self.function.name,
            n_params=len(self.function.params),
            n_locals=self.function.n_locals,
            returns_value=self.function.return_type is not LangType.VOID,
            code=self.code,
        )

    # -- statements --------------------------------------------------------

    def _compile_block(self, block: ast.Block) -> None:
        for statement in block.statements:
            self._compile_statement(statement)

    def _compile_statement(self, statement: ast.Stmt) -> None:
        if isinstance(statement, ast.VarDecl):
            self._compile_expr(statement.init)
            self._emit(Op.STORE, self._slot_of(statement.slot, statement))
        elif isinstance(statement, ast.Assign):
            self._compile_expr(statement.value)
            self._emit(Op.STORE, self._slot_of(statement.slot, statement))
        elif isinstance(statement, ast.IndexAssign):
            self._compile_expr(statement.base)
            self._compile_expr(statement.index)
            self._compile_expr(statement.value)
            self._emit(Op.STORE_INDEX)
        elif isinstance(statement, ast.ExprStmt):
            self._compile_expr(statement.expr)
            self._emit(Op.POP)
        elif isinstance(statement, ast.Block):
            self._compile_block(statement)
        elif isinstance(statement, ast.If):
            self._compile_if(statement)
        elif isinstance(statement, ast.While):
            self._compile_while(statement)
        elif isinstance(statement, ast.For):
            self._compile_for(statement)
        elif isinstance(statement, ast.Return):
            if statement.value is None:
                self._emit(Op.PUSH_NONE)
            else:
                self._compile_expr(statement.value)
            self._emit(Op.RET)
        elif isinstance(statement, ast.Break):
            if not self.loops:
                raise CompileError("break outside loop", statement.line, statement.column)
            self.loops[-1].break_jumps.append(self._emit(Op.JUMP, 0))
        elif isinstance(statement, ast.Continue):
            if not self.loops:
                raise CompileError(
                    "continue outside loop", statement.line, statement.column
                )
            self.loops[-1].continue_jumps.append(self._emit(Op.JUMP, 0))
        else:  # pragma: no cover
            raise CompileError(
                f"unhandled statement {type(statement).__name__}",
                statement.line,
                statement.column,
            )

    def _compile_if(self, statement: ast.If) -> None:
        self._compile_expr(statement.condition)
        to_else = self._emit(Op.JUMP_IF_FALSE, 0)
        self._compile_block(statement.then_branch)
        if statement.else_branch is None:
            self._patch(to_else, self._here())
            return
        to_end = self._emit(Op.JUMP, 0)
        self._patch(to_else, self._here())
        self._compile_statement(statement.else_branch)
        self._patch(to_end, self._here())

    def _compile_while(self, statement: ast.While) -> None:
        loop = _LoopContext()
        self.loops.append(loop)
        top = self._here()
        self._compile_expr(statement.condition)
        exit_jump = self._emit(Op.JUMP_IF_FALSE, 0)
        self._compile_block(statement.body)
        self._emit(Op.JUMP, top)
        end = self._here()
        self._patch(exit_jump, end)
        for position in loop.break_jumps:
            self._patch(position, end)
        for position in loop.continue_jumps:
            self._patch(position, top)
        self.loops.pop()

    def _compile_for(self, statement: ast.For) -> None:
        if statement.init is not None:
            self._compile_statement(statement.init)
        loop = _LoopContext()
        self.loops.append(loop)
        top = self._here()
        exit_jump = None
        if statement.condition is not None:
            self._compile_expr(statement.condition)
            exit_jump = self._emit(Op.JUMP_IF_FALSE, 0)
        self._compile_block(statement.body)
        step_start = self._here()
        if statement.step is not None:
            self._compile_statement(statement.step)
        self._emit(Op.JUMP, top)
        end = self._here()
        if exit_jump is not None:
            self._patch(exit_jump, end)
        for position in loop.break_jumps:
            self._patch(position, end)
        for position in loop.continue_jumps:
            self._patch(position, step_start)
        self.loops.pop()

    # -- expressions ----------------------------------------------------------

    def _compile_expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.IntLiteral):
            self._emit(Op.PUSH_CONST, self.program_compiler.pool.add(expr.value))
        elif isinstance(expr, ast.FloatLiteral):
            self._emit(Op.PUSH_CONST, self.program_compiler.pool.add(expr.value))
        elif isinstance(expr, ast.BoolLiteral):
            self._emit(Op.PUSH_CONST, self.program_compiler.pool.add(expr.value))
        elif isinstance(expr, ast.StringLiteral):
            self._emit(Op.PUSH_CONST, self.program_compiler.pool.add(expr.value))
        elif isinstance(expr, ast.ArrayLiteral):
            for element in expr.elements:
                self._compile_expr(element)
            self._emit(Op.BUILD_ARRAY, len(expr.elements))
        elif isinstance(expr, ast.Name):
            self._emit(Op.LOAD, self._slot_of(expr.slot, expr))
        elif isinstance(expr, ast.Unary):
            self._compile_expr(expr.operand)
            self._emit(Op.NEG if expr.op == "-" else Op.NOT)
        elif isinstance(expr, ast.Binary):
            self._compile_binary(expr)
        elif isinstance(expr, ast.Call):
            self._compile_call(expr)
        elif isinstance(expr, ast.Index):
            self._compile_expr(expr.base)
            self._compile_expr(expr.index)
            self._emit(Op.INDEX)
        else:  # pragma: no cover
            raise CompileError(
                f"unhandled expression {type(expr).__name__}", expr.line, expr.column
            )

    def _compile_binary(self, expr: ast.Binary) -> None:
        if expr.op == "&&":
            # left && right  =>  if !left: false else right
            self._compile_expr(expr.left)
            short = self._emit(Op.JUMP_IF_FALSE, 0)
            self._compile_expr(expr.right)
            done = self._emit(Op.JUMP, 0)
            self._patch(short, self._here())
            self._emit(Op.PUSH_CONST, self.program_compiler.pool.add(False))
            self._patch(done, self._here())
            return
        if expr.op == "||":
            self._compile_expr(expr.left)
            short = self._emit(Op.JUMP_IF_TRUE, 0)
            self._compile_expr(expr.right)
            done = self._emit(Op.JUMP, 0)
            self._patch(short, self._here())
            self._emit(Op.PUSH_CONST, self.program_compiler.pool.add(True))
            self._patch(done, self._here())
            return
        self._compile_expr(expr.left)
        self._compile_expr(expr.right)
        self._emit(_BINARY_OPS[expr.op])

    def _compile_call(self, expr: ast.Call) -> None:
        for arg in expr.args:
            self._compile_expr(arg)
        if expr.is_builtin:
            builtin = _BUILTIN_INDEX[expr.callee]
            # Encode arity alongside the builtin for variable-arity builtins:
            # operand = index * 8 + arity (arity <= 7 for all builtins).
            arity = len(expr.args)
            self._emit(Op.CALL_BUILTIN, builtin * 8 + arity)
        else:
            self._emit(
                Op.CALL, self.program_compiler.function_index[expr.callee]
            )

    def _slot_of(self, slot: int | None, node: ast.Node) -> int:
        if slot is None:
            raise CompileError(
                "AST not analysed: missing slot annotation", node.line, node.column
            )
        return slot


class Compiler:
    """Compiles a full analysed program."""

    def __init__(self, program: ast.Program, source: str | None = None):
        self.program = program
        self.source = source
        self.pool = _ConstantPool()
        self.function_index = {
            function.name: position
            for position, function in enumerate(program.functions)
        }

    def compile(self) -> CompiledProgram:
        functions = [
            _FunctionCompiler(self, function).compile()
            for function in self.program.functions
        ]
        compiled = CompiledProgram(
            functions=functions, constants=self.pool.values, source=self.source
        )
        compiled.verify()
        return compiled


def compile_ast(
    program: ast.Program, source: str | None = None, optimize: bool = False
) -> CompiledProgram:
    """Compile an *already analysed* AST.

    ``optimize`` runs the post-compilation bytecode optimizer (constant
    folding, jump threading, dead-code elimination; see
    :mod:`repro.tvm.optimizer`).  Off by default: un-optimized output is
    the stable wire format that tests pin against.
    """
    compiled = Compiler(program, source=source).compile()
    if optimize:
        from .optimizer import optimize_program

        compiled = optimize_program(compiled)
    return compiled


def compile_source(source: str, optimize: bool = False) -> CompiledProgram:
    """Parse, analyse, and compile Tasklet ``source`` in one call."""
    return compile_ast(analyze(parse(source)), source=source, optimize=optimize)
