"""Instruction set of the Tasklet Virtual Machine.

The TVM is a stack machine.  Each instruction is an ``(opcode, operand)``
pair; operands are small integers (constant-pool indices, slot numbers,
jump targets, function indices) or ``None``.  The numeric opcode values are
part of the portable bytecode format — append new opcodes, never renumber.
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    """TVM opcodes.  Stack effects are noted as ``before -- after``."""

    # Constants and locals
    PUSH_CONST = 1  # -- k[operand]
    PUSH_NONE = 2  # -- none  (void call result placeholder)
    LOAD = 3  # -- locals[operand]
    STORE = 4  # value --
    POP = 5  # value --
    DUP = 6  # value -- value value

    # Arithmetic (numeric promotion int->float; '+' also concatenates)
    ADD = 10  # a b -- a+b
    SUB = 11  # a b -- a-b
    MUL = 12  # a b -- a*b
    DIV = 13  # a b -- a/b   (int/int is C-style truncated division)
    MOD = 14  # a b -- a%b   (sign follows C: truncated)
    NEG = 15  # a -- -a

    # Comparison / logic
    EQ = 20  # a b -- a==b
    NE = 21
    LT = 22
    LE = 23
    GT = 24
    GE = 25
    NOT = 26  # a -- !a

    # Control flow (operand = absolute instruction index)
    JUMP = 30
    JUMP_IF_FALSE = 31  # cond --
    JUMP_IF_TRUE = 32  # cond --

    # Calls
    CALL = 40  # args... -- result   (operand = function index; arity known)
    CALL_BUILTIN = 41  # args... -- result (operand = builtin table index)
    RET = 42  # result --            (return to caller)

    # Arrays / strings
    BUILD_ARRAY = 50  # e1..eN -- [e1..eN]  (operand = N)
    INDEX = 51  # base idx -- base[idx]
    STORE_INDEX = 52  # base idx value --


#: Opcodes whose operand is a jump target (used by the verifier and the
#: disassembler to annotate targets).
JUMP_OPS = {Op.JUMP, Op.JUMP_IF_FALSE, Op.JUMP_IF_TRUE}

#: Coarse instruction families, used by the VM's execution profiler
#: (``TVM(profile=True)``) to report where instructions go.
OPCODE_GROUP: dict[int, str] = {
    Op.PUSH_CONST: "stack",
    Op.PUSH_NONE: "stack",
    Op.LOAD: "stack",
    Op.STORE: "stack",
    Op.POP: "stack",
    Op.DUP: "stack",
    Op.ADD: "arithmetic",
    Op.SUB: "arithmetic",
    Op.MUL: "arithmetic",
    Op.DIV: "arithmetic",
    Op.MOD: "arithmetic",
    Op.NEG: "arithmetic",
    Op.EQ: "compare",
    Op.NE: "compare",
    Op.LT: "compare",
    Op.LE: "compare",
    Op.GT: "compare",
    Op.GE: "compare",
    Op.NOT: "compare",
    Op.JUMP: "branch",
    Op.JUMP_IF_FALSE: "branch",
    Op.JUMP_IF_TRUE: "branch",
    Op.CALL: "call",
    Op.CALL_BUILTIN: "call",
    Op.RET: "call",
    Op.BUILD_ARRAY: "array",
    Op.INDEX: "array",
    Op.STORE_INDEX: "array",
}

#: Opcodes that take no operand.
NO_OPERAND_OPS = {
    Op.PUSH_NONE,
    Op.POP,
    Op.DUP,
    Op.ADD,
    Op.SUB,
    Op.MUL,
    Op.DIV,
    Op.MOD,
    Op.NEG,
    Op.EQ,
    Op.NE,
    Op.LT,
    Op.LE,
    Op.GT,
    Op.GE,
    Op.NOT,
    Op.RET,
    Op.INDEX,
    Op.STORE_INDEX,
}
