"""Instruction set of the Tasklet Virtual Machine.

The TVM is a stack machine.  Each instruction is an ``(opcode, operand)``
pair; operands are small integers (constant-pool indices, slot numbers,
jump targets, function indices) or ``None``.  The numeric opcode values are
part of the portable bytecode format — append new opcodes, never renumber.

Two disjoint numbering ranges exist:

* :class:`Op` (< 100) — the portable instruction set, serialised on the
  wire and covered by the verifier.
* :class:`QOp` (>= 100) — internal *fused superinstructions* produced by
  the provider-side quickening pass (:mod:`repro.tvm.quicken`).  They
  never appear in serialised programs, never affect ``fingerprint()``,
  and each one charges exactly the fuel of the portable sequence it
  replaces (see :data:`QUICK_EXPANSION`).
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    """TVM opcodes.  Stack effects are noted as ``before -- after``."""

    # Constants and locals
    PUSH_CONST = 1  # -- k[operand]
    PUSH_NONE = 2  # -- none  (void call result placeholder)
    LOAD = 3  # -- locals[operand]
    STORE = 4  # value --
    POP = 5  # value --
    DUP = 6  # value -- value value

    # Arithmetic (numeric promotion int->float; '+' also concatenates)
    ADD = 10  # a b -- a+b
    SUB = 11  # a b -- a-b
    MUL = 12  # a b -- a*b
    DIV = 13  # a b -- a/b   (int/int is C-style truncated division)
    MOD = 14  # a b -- a%b   (sign follows C: truncated)
    NEG = 15  # a -- -a

    # Comparison / logic
    EQ = 20  # a b -- a==b
    NE = 21
    LT = 22
    LE = 23
    GT = 24
    GE = 25
    NOT = 26  # a -- !a

    # Control flow (operand = absolute instruction index)
    JUMP = 30
    JUMP_IF_FALSE = 31  # cond --
    JUMP_IF_TRUE = 32  # cond --

    # Calls
    CALL = 40  # args... -- result   (operand = function index; arity known)
    CALL_BUILTIN = 41  # args... -- result (operand = builtin table index)
    RET = 42  # result --            (return to caller)

    # Arrays / strings
    BUILD_ARRAY = 50  # e1..eN -- [e1..eN]  (operand = N)
    INDEX = 51  # base idx -- base[idx]
    STORE_INDEX = 52  # base idx value --


class QOp(enum.IntEnum):
    """Internal fused superinstructions (never serialised).

    Produced by :mod:`repro.tvm.quicken` from the dominant portable
    sequences the execution profiler exposes.  Operands are richer than
    portable operands (tuples where a fusion needs two indices); that is
    fine because quickened code never leaves the process.
    """

    # LOAD s; PUSH_CONST k; ADD; STORE s  — operand (slot, const_index)
    INC_LOCAL = 100
    # LOAD s; PUSH_CONST k; SUB; STORE s  — operand (slot, const_index)
    DEC_LOCAL = 101
    # compare; JUMP_IF_FALSE t            — operand t (absolute target)
    LT_JUMP_IF_FALSE = 102
    LE_JUMP_IF_FALSE = 103
    GT_JUMP_IF_FALSE = 104
    GE_JUMP_IF_FALSE = 105
    EQ_JUMP_IF_FALSE = 106
    NE_JUMP_IF_FALSE = 107
    # LOAD s1; LOAD s2                    — operand (slot1, slot2)
    LOAD_LOAD = 108
    # LOAD s; PUSH_CONST k                — operand (slot, const_index)
    LOAD_CONST = 109
    # LOAD s; INDEX                       — operand s (s holds the index)
    LOAD_INDEX = 110


#: Portable sequence each fused superinstruction replaces.  Drives three
#: invariants: the fuel a fused instruction charges (``len`` of the
#: sequence), the expansion of profile counts back into portable opcodes
#: (so ``VMProfile`` is engine-independent), and the quickened
#: disassembly annotations.
QUICK_EXPANSION: dict[int, tuple[Op, ...]] = {
    QOp.INC_LOCAL: (Op.LOAD, Op.PUSH_CONST, Op.ADD, Op.STORE),
    QOp.DEC_LOCAL: (Op.LOAD, Op.PUSH_CONST, Op.SUB, Op.STORE),
    QOp.LT_JUMP_IF_FALSE: (Op.LT, Op.JUMP_IF_FALSE),
    QOp.LE_JUMP_IF_FALSE: (Op.LE, Op.JUMP_IF_FALSE),
    QOp.GT_JUMP_IF_FALSE: (Op.GT, Op.JUMP_IF_FALSE),
    QOp.GE_JUMP_IF_FALSE: (Op.GE, Op.JUMP_IF_FALSE),
    QOp.EQ_JUMP_IF_FALSE: (Op.EQ, Op.JUMP_IF_FALSE),
    QOp.NE_JUMP_IF_FALSE: (Op.NE, Op.JUMP_IF_FALSE),
    QOp.LOAD_LOAD: (Op.LOAD, Op.LOAD),
    QOp.LOAD_CONST: (Op.LOAD, Op.PUSH_CONST),
    QOp.LOAD_INDEX: (Op.LOAD, Op.INDEX),
}

#: Fuel charged by each fused superinstruction (= instructions replaced).
QUICK_FUEL: dict[int, int] = {
    int(op): len(sequence) for op, sequence in QUICK_EXPANSION.items()
}

#: Longest fused sequence; the VM deoptimises to portable code once the
#: remaining fuel drops below this, so fuel accounting stays exact.
MAX_QUICK_FUEL = max(QUICK_FUEL.values())

#: Opcodes whose operand is a jump target (used by the verifier and the
#: disassembler to annotate targets).
JUMP_OPS = {Op.JUMP, Op.JUMP_IF_FALSE, Op.JUMP_IF_TRUE}

#: Coarse instruction families, used by the VM's execution profiler
#: (``TVM(profile=True)``) to report where instructions go.
OPCODE_GROUP: dict[int, str] = {
    Op.PUSH_CONST: "stack",
    Op.PUSH_NONE: "stack",
    Op.LOAD: "stack",
    Op.STORE: "stack",
    Op.POP: "stack",
    Op.DUP: "stack",
    Op.ADD: "arithmetic",
    Op.SUB: "arithmetic",
    Op.MUL: "arithmetic",
    Op.DIV: "arithmetic",
    Op.MOD: "arithmetic",
    Op.NEG: "arithmetic",
    Op.EQ: "compare",
    Op.NE: "compare",
    Op.LT: "compare",
    Op.LE: "compare",
    Op.GT: "compare",
    Op.GE: "compare",
    Op.NOT: "compare",
    Op.JUMP: "branch",
    Op.JUMP_IF_FALSE: "branch",
    Op.JUMP_IF_TRUE: "branch",
    Op.CALL: "call",
    Op.CALL_BUILTIN: "call",
    Op.RET: "call",
    Op.BUILD_ARRAY: "array",
    Op.INDEX: "array",
    Op.STORE_INDEX: "array",
}

#: Opcodes that take no operand.
NO_OPERAND_OPS = {
    Op.PUSH_NONE,
    Op.POP,
    Op.DUP,
    Op.ADD,
    Op.SUB,
    Op.MUL,
    Op.DIV,
    Op.MOD,
    Op.NEG,
    Op.EQ,
    Op.NE,
    Op.LT,
    Op.LE,
    Op.GT,
    Op.GE,
    Op.NOT,
    Op.RET,
    Op.INDEX,
    Op.STORE_INDEX,
}
