"""Hand-written lexer for the Tasklet language.

Supports ``//`` line comments and ``/* ... */`` block comments, decimal
integer and float literals (with exponents), double-quoted strings with the
usual escapes, identifiers/keywords, and the operator set listed in
:mod:`repro.tvm.tokens`.
"""

from __future__ import annotations

from ..common.errors import LexerError
from .tokens import KEYWORDS, Token, TokenType

_TWO_CHAR_OPERATORS = {
    "+=": TokenType.PLUS_ASSIGN,
    "-=": TokenType.MINUS_ASSIGN,
    "*=": TokenType.STAR_ASSIGN,
    "/=": TokenType.SLASH_ASSIGN,
    "%=": TokenType.PERCENT_ASSIGN,
    "==": TokenType.EQ,
    "!=": TokenType.NE,
    "<=": TokenType.LE,
    ">=": TokenType.GE,
    "&&": TokenType.AND,
    "||": TokenType.OR,
    "->": TokenType.ARROW,
}

_ONE_CHAR_OPERATORS = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ";": TokenType.SEMICOLON,
    ":": TokenType.COLON,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "=": TokenType.ASSIGN,
    "<": TokenType.LT,
    ">": TokenType.GT,
    "!": TokenType.NOT,
}

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\", "0": "\0"}


class Lexer:
    """Single-pass lexer; call :meth:`tokenize` once per source text."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- low-level cursor helpers ------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def _advance(self) -> str:
        char = self.source[self.pos]
        self.pos += 1
        if char == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return char

    def _error(self, message: str) -> LexerError:
        return LexerError(message, line=self.line, column=self.column)

    # -- token producers ----------------------------------------------------

    def tokenize(self) -> list[Token]:
        """Lex the whole source, returning tokens terminated by ``EOF``."""
        tokens: list[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                tokens.append(Token(TokenType.EOF, "", None, self.line, self.column))
                return tokens
            tokens.append(self._next_token())

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance()
                self._advance()
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.source):
                        raise LexerError(
                            "unterminated block comment", start_line, start_col
                        )
                    self._advance()
                self._advance()
                self._advance()
            else:
                return

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        char = self._peek()
        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._lex_number(line, column)
        if char.isalpha() or char == "_":
            return self._lex_identifier(line, column)
        if char == '"':
            return self._lex_string(line, column)
        two = char + self._peek(1)
        if two in _TWO_CHAR_OPERATORS:
            self._advance()
            self._advance()
            return Token(_TWO_CHAR_OPERATORS[two], two, None, line, column)
        if char in _ONE_CHAR_OPERATORS:
            self._advance()
            return Token(_ONE_CHAR_OPERATORS[char], char, None, line, column)
        raise self._error(f"unexpected character {char!r}")

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE":
            probe = 1
            if self._peek(1) in "+-":
                probe = 2
            if self._peek(probe).isdigit():
                is_float = True
                for _ in range(probe):
                    self._advance()
                while self._peek().isdigit():
                    self._advance()
        text = self.source[start : self.pos]
        if is_float:
            return Token(TokenType.FLOAT, text, float(text), line, column)
        return Token(TokenType.INT, text, int(text), line, column)

    def _lex_identifier(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        token_type = KEYWORDS.get(text, TokenType.IDENT)
        if token_type is TokenType.TRUE:
            return Token(token_type, text, True, line, column)
        if token_type is TokenType.FALSE:
            return Token(token_type, text, False, line, column)
        return Token(token_type, text, text, line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise LexerError("unterminated string literal", line, column)
            char = self._advance()
            if char == '"':
                break
            if char == "\n":
                raise LexerError("newline inside string literal", line, column)
            if char == "\\":
                escape = self._advance() if self.pos < len(self.source) else ""
                if escape not in _ESCAPES:
                    raise self._error(f"bad escape sequence \\{escape}")
                chars.append(_ESCAPES[escape])
            else:
                chars.append(char)
        value = "".join(chars)
        return Token(TokenType.STRING, f'"{value}"', value, line, column)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: lex ``source`` in one call."""
    return Lexer(source).tokenize()
