"""Reference AST interpreter — the compiler/VM's differential oracle.

Executes analysed Tasklet ASTs directly, without compiling to bytecode.
It exists purely for testing: two completely independent execution paths
(``compile → stack VM`` vs ``tree walk``) must agree on every program, so
property tests can generate random well-typed programs and compare.  It
shares only the builtin implementations and the operator-semantics
helpers with the VM — the control-flow machinery is disjoint by design.

Not performance-relevant and not part of the middleware: providers always
run the bytecode VM.
"""

from __future__ import annotations

import random
from typing import Any

from ..common.errors import VMError
from . import ast_nodes as ast, operators
from .builtins import BUILTINS
from .opcodes import Op
from .parser import parse
from .semantics import analyze

_MAX_STEPS_DEFAULT = 10_000_000


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Any):
        self.value = value


class _Environment:
    """Slot-addressed locals, mirroring the VM's frame layout."""

    def __init__(self, n_locals: int):
        self.slots: list = [None] * n_locals

    def load(self, slot: int):
        return self.slots[slot]

    def store(self, slot: int, value) -> None:
        self.slots[slot] = value


class AstInterpreter:
    """Direct evaluator for one analysed program."""

    def __init__(self, program: ast.Program, seed: int = 0,
                 max_steps: int = _MAX_STEPS_DEFAULT):
        self.program = program
        self.functions = {function.name: function for function in program.functions}
        self.rng = random.Random(seed)
        self.max_steps = max_steps
        self._steps = 0

    def run(self, entry: str = "main", args: list | None = None) -> Any:
        function = self.functions.get(entry)
        if function is None:
            raise VMError(f"no function {entry!r}")
        args = list(args or [])
        if len(args) != len(function.params):
            raise VMError(
                f"{entry}() expects {len(function.params)} arguments, "
                f"got {len(args)}"
            )
        return self._call(function, args)

    # -- execution ----------------------------------------------------------

    def _budget(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise VMError("AST interpreter step budget exhausted")

    def _call(self, function: ast.FunctionDecl, args: list) -> Any:
        environment = _Environment(function.n_locals)
        for slot, value in enumerate(args):
            environment.store(slot, value)
        try:
            self._exec_block(function.body, environment)
        except _Return as result:
            return result.value
        return None  # void fall-through

    def _exec_block(self, block: ast.Block, env: _Environment) -> None:
        for statement in block.statements:
            self._exec_statement(statement, env)

    def _exec_statement(self, statement: ast.Stmt, env: _Environment) -> None:
        self._budget()
        if isinstance(statement, ast.VarDecl):
            env.store(statement.slot, self._eval(statement.init, env))
        elif isinstance(statement, ast.Assign):
            env.store(statement.slot, self._eval(statement.value, env))
        elif isinstance(statement, ast.IndexAssign):
            base = self._eval(statement.base, env)
            index = self._eval(statement.index, env)
            value = self._eval(statement.value, env)
            operators.index_set(base, index, value)
        elif isinstance(statement, ast.ExprStmt):
            self._eval(statement.expr, env)
        elif isinstance(statement, ast.Block):
            self._exec_block(statement, env)
        elif isinstance(statement, ast.If):
            if self._truth(statement.condition, env):
                self._exec_block(statement.then_branch, env)
            elif statement.else_branch is not None:
                self._exec_statement(statement.else_branch, env)
        elif isinstance(statement, ast.While):
            while self._truth(statement.condition, env):
                self._budget()
                try:
                    self._exec_block(statement.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(statement, ast.For):
            if statement.init is not None:
                self._exec_statement(statement.init, env)
            while statement.condition is None or self._truth(
                statement.condition, env
            ):
                self._budget()
                try:
                    self._exec_block(statement.body, env)
                except _Break:
                    break
                except _Continue:
                    pass
                if statement.step is not None:
                    self._exec_statement(statement.step, env)
        elif isinstance(statement, ast.Return):
            value = (
                None if statement.value is None else self._eval(statement.value, env)
            )
            raise _Return(value)
        elif isinstance(statement, ast.Break):
            raise _Break()
        elif isinstance(statement, ast.Continue):
            raise _Continue()
        else:  # pragma: no cover
            raise VMError(f"unhandled statement {type(statement).__name__}")

    def _truth(self, condition: ast.Expr, env: _Environment) -> bool:
        value = self._eval(condition, env)
        if not isinstance(value, bool):
            raise VMError(f"condition must be bool, got {type(value).__name__}")
        return value

    # -- expressions ----------------------------------------------------------

    def _eval(self, expr: ast.Expr, env: _Environment) -> Any:
        self._budget()
        if isinstance(expr, (ast.IntLiteral, ast.FloatLiteral, ast.BoolLiteral,
                             ast.StringLiteral)):
            return expr.value
        if isinstance(expr, ast.ArrayLiteral):
            return [self._eval(element, env) for element in expr.elements]
        if isinstance(expr, ast.Name):
            return env.load(expr.slot)
        if isinstance(expr, ast.Unary):
            operand = self._eval(expr.operand, env)
            if expr.op == "-":
                if isinstance(operand, bool) or not isinstance(operand, (int, float)):
                    raise VMError(f"cannot negate {type(operand).__name__}")
                return -operand
            if not isinstance(operand, bool):
                raise VMError(f"'!' needs bool, got {type(operand).__name__}")
            return not operand
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Index):
            base = self._eval(expr.base, env)
            index = self._eval(expr.index, env)
            return operators.index_get(base, index)
        raise VMError(f"unhandled expression {type(expr).__name__}")  # pragma: no cover

    def _eval_binary(self, expr: ast.Binary, env: _Environment) -> Any:
        op = expr.op
        if op == "&&":
            return self._truth(expr.left, env) and self._truth(expr.right, env)
        if op == "||":
            return self._truth(expr.left, env) or self._truth(expr.right, env)
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        if op == "+":
            return operators.add(left, right)
        if op == "-":
            operators.require_number(left, right, "-")
            return left - right
        if op == "*":
            operators.require_number(left, right, "*")
            return left * right
        if op == "/":
            return operators.divide(left, right)
        if op == "%":
            return operators.modulo(left, right)
        if op == "==":
            return operators.equals(left, right)
        if op == "!=":
            return not operators.equals(left, right)
        order_ops = {"<": Op.LT, "<=": Op.LE, ">": Op.GT, ">=": Op.GE}
        if op in order_ops:
            return operators.order(order_ops[op], left, right)
        raise VMError(f"unhandled operator {op!r}")  # pragma: no cover

    def _eval_call(self, expr: ast.Call, env: _Environment) -> Any:
        args = [self._eval(argument, env) for argument in expr.args]
        if expr.is_builtin:
            spec = BUILTINS[expr.callee]
            try:
                return spec.impl(self.rng, args)
            except VMError:
                raise
            except (TypeError, AttributeError, ValueError, OverflowError) as exc:
                raise VMError(f"{spec.name}(): {exc}") from exc
        return self._call(self.functions[expr.callee], args)


def interpret_source(source: str, entry: str = "main",
                     args: list | None = None, seed: int = 0) -> Any:
    """Parse, analyse, and tree-walk ``source`` in one call."""
    return AstInterpreter(analyze(parse(source)), seed=seed).run(entry, args)
