"""Assembler: the textual bytecode format back into programs.

The inverse of :mod:`repro.tvm.disassembler`.  Together they give the TVM
a stable, human-editable intermediate format, used for:

* regression-pinning compiler output in tests (disassemble, store, compare);
* hand-crafting pathological programs the compiler would never emit, to
  exercise the verifier and the VM's defensive paths;
* debugging: edit a listing, reassemble, run.

Grammar (one construct per line; ``;`` starts a comment)::

    .constants N
      k<i> = <python-literal>          # int, float, bool, 'str'
    .func <name> params=<p> locals=<l> returns=<value|void>
      [L]<index>  OPNAME [operand]
    .end
"""

from __future__ import annotations

import ast as python_ast

from ..common.errors import VMInvalidProgram
from .bytecode import CompiledProgram, FunctionCode, Instruction
from .opcodes import Op

_OP_BY_NAME = {op.name: op for op in Op}


class AssemblerError(VMInvalidProgram):
    """A line could not be assembled; carries the 1-based line number."""

    def __init__(self, message: str, line_number: int):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def _parse_literal(text: str, line_number: int):
    try:
        value = python_ast.literal_eval(text)
    except (ValueError, SyntaxError) as exc:
        raise AssemblerError(f"bad constant literal {text!r}: {exc}", line_number)
    if not isinstance(value, (bool, int, float, str)):
        raise AssemblerError(
            f"constants must be scalars, got {type(value).__name__}", line_number
        )
    return value


def assemble(text: str) -> CompiledProgram:
    """Assemble a listing produced by :func:`repro.tvm.disassembler.disassemble`.

    The instruction indices in the listing are checked for consistency
    (they are what jump operands refer to), and the result is verified
    before being returned.
    """
    constants: list = []
    functions: list[FunctionCode] = []
    current: FunctionCode | None = None
    expected_index = 0

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue

        if line.startswith(".constants"):
            continue  # count is informational; entries define themselves

        if line.startswith("k") and "=" in line and current is None:
            name, _, literal = line.partition("=")
            name = name.strip()
            if not name[1:].isdigit():
                raise AssemblerError(f"bad constant name {name!r}", line_number)
            index = int(name[1:])
            if index != len(constants):
                raise AssemblerError(
                    f"constant {name} out of order (expected k{len(constants)})",
                    line_number,
                )
            constants.append(_parse_literal(literal.strip(), line_number))
            continue

        if line.startswith(".func"):
            if current is not None:
                raise AssemblerError("nested .func (missing .end?)", line_number)
            parts = line.split()
            if len(parts) != 5:
                raise AssemblerError(
                    ".func needs: name params=N locals=N returns=value|void",
                    line_number,
                )
            fields = {}
            for part in parts[2:]:
                key, _, value = part.partition("=")
                fields[key] = value
            try:
                current = FunctionCode(
                    name=parts[1],
                    n_params=int(fields["params"]),
                    n_locals=int(fields["locals"]),
                    returns_value=fields["returns"] == "value",
                    code=[],
                )
            except (KeyError, ValueError) as exc:
                raise AssemblerError(f"bad .func header: {exc}", line_number)
            expected_index = 0
            continue

        if line == ".end":
            if current is None:
                raise AssemblerError(".end without .func", line_number)
            functions.append(current)
            current = None
            continue

        if current is None:
            raise AssemblerError(f"unexpected line {line!r}", line_number)

        # Instruction line: "[L]<index>  OPNAME [operand]"
        body = line[1:] if line.startswith("L") else line
        parts = body.split()
        if len(parts) < 2 or not parts[0].isdigit():
            raise AssemblerError(f"malformed instruction line {line!r}", line_number)
        index = int(parts[0])
        if index != expected_index:
            raise AssemblerError(
                f"instruction index {index} out of order "
                f"(expected {expected_index})",
                line_number,
            )
        expected_index += 1
        op_name = parts[1]
        if op_name not in _OP_BY_NAME:
            raise AssemblerError(f"unknown opcode {op_name!r}", line_number)
        operand = None
        if len(parts) >= 3:
            try:
                operand = int(parts[2])
            except ValueError:
                raise AssemblerError(
                    f"bad operand {parts[2]!r}", line_number
                )
        current.code.append(Instruction(_OP_BY_NAME[op_name], operand))

    if current is not None:
        raise AssemblerError("missing final .end", len(text.splitlines()))
    program = CompiledProgram(functions=functions, constants=constants)
    program.verify()
    return program
