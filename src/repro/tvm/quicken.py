"""Quickening: rewrite verified bytecode into a fused internal form.

The quickening pass turns a function's portable instruction list into an
internal representation in which the dominant multi-instruction sequences
(loop-counter increments, compare-and-branch loop tests, pair loads, fast
array reads) are replaced by single *fused superinstructions*
(:class:`~repro.tvm.opcodes.QOp`).  The dispatch loop then retires one
fused instruction where the baseline engine retired two to four, which is
where the interpretation overhead the F1 experiment measures actually
goes.

Three properties make the pass safe and invisible outside the VM:

* **In-place fusion, index-preserving.**  The quickened list has exactly
  the same length as the portable list.  A fused superinstruction
  *replaces the head* of its sequence; the tail slots keep their original
  portable instructions and are simply skipped by the fused handler
  (``ip += len(sequence)``).  Jump targets therefore need no remapping,
  a jump *into* the middle of a fused sequence executes the original
  instructions unchanged, and the VM can switch between quickened and
  portable code mid-function at any instruction boundary (it does so when
  fuel runs low — see ``vm.py``).  Fusions may overlap: every position is
  matched against the *original* sequence independently, and whichever
  head control flow actually reaches wins.
* **Fuel equivalence.**  A fused instruction charges exactly the fuel of
  the sequence it replaces, constituent by constituent, so
  ``ExecutionStats.instructions`` — and with it billing, the virtual
  service-time model, and redundant-execution voting — is bit-identical
  to the unquickened engine, on success *and* on every error path.
* **Provider-side only.**  Quickening runs once per program at
  program-cache insertion (:class:`repro.provider.executor.TaskletExecutor`)
  and is memoised on the :class:`~repro.tvm.bytecode.FunctionCode`.  The
  wire format, ``to_dict()``/``from_dict()``, and ``fingerprint()`` are
  computed from the portable ``code`` list and are untouched.

Only *verified* programs may be quickened; the matcher trusts operand
invariants (e.g. ``STORE`` slot indices) that ``verify()`` establishes.
"""

from __future__ import annotations

from .bytecode import CompiledProgram, FunctionCode
from .opcodes import Op, QOp

_LOAD = int(Op.LOAD)
_PUSH_CONST = int(Op.PUSH_CONST)
_ADD = int(Op.ADD)
_SUB = int(Op.SUB)
_STORE = int(Op.STORE)
_INDEX = int(Op.INDEX)
_JUMP_IF_FALSE = int(Op.JUMP_IF_FALSE)

#: comparison opcode -> fused compare-and-branch opcode
_CMP_FUSION = {
    int(Op.LT): int(QOp.LT_JUMP_IF_FALSE),
    int(Op.LE): int(QOp.LE_JUMP_IF_FALSE),
    int(Op.GT): int(QOp.GT_JUMP_IF_FALSE),
    int(Op.GE): int(QOp.GE_JUMP_IF_FALSE),
    int(Op.EQ): int(QOp.EQ_JUMP_IF_FALSE),
    int(Op.NE): int(QOp.NE_JUMP_IF_FALSE),
}


def quicken_pairs(
    pairs: list[tuple[int, int | None]],
) -> list[tuple[int, object]]:
    """Fused copy of a portable ``(op, operand)`` list (same length).

    Every position is matched against the portable sequence starting
    there; matches replace only the head slot.  Longer fusions win at a
    given head (``INC_LOCAL`` over ``LOAD_CONST``).
    """
    quickened: list[tuple[int, object]] = list(pairs)
    length = len(pairs)
    for position, (op, operand) in enumerate(pairs):
        if op in _CMP_FUSION:
            if position + 1 < length and pairs[position + 1][0] == _JUMP_IF_FALSE:
                quickened[position] = (
                    _CMP_FUSION[op],
                    pairs[position + 1][1],
                )
        elif op == _LOAD:
            if (
                position + 3 < length
                and pairs[position + 1][0] == _PUSH_CONST
                and pairs[position + 2][0] in (_ADD, _SUB)
                and pairs[position + 3][0] == _STORE
                and pairs[position + 3][1] == operand
            ):
                fused = (
                    int(QOp.INC_LOCAL)
                    if pairs[position + 2][0] == _ADD
                    else int(QOp.DEC_LOCAL)
                )
                quickened[position] = (fused, (operand, pairs[position + 1][1]))
            elif position + 1 < length:
                next_op, next_operand = pairs[position + 1]
                if next_op == _LOAD:
                    quickened[position] = (
                        int(QOp.LOAD_LOAD),
                        (operand, next_operand),
                    )
                elif next_op == _PUSH_CONST:
                    quickened[position] = (
                        int(QOp.LOAD_CONST),
                        (operand, next_operand),
                    )
                elif next_op == _INDEX:
                    quickened[position] = (int(QOp.LOAD_INDEX), operand)
    return quickened


def quicken_function(function: FunctionCode) -> list[tuple[int, object]]:
    """The memoised quickened body of ``function``.

    Idempotent and benign under concurrent calls (worker threads may
    race to compute the same list; last write wins, both are identical).
    """
    cached = function._quick_pairs
    if cached is None:
        cached = function._quick_pairs = quicken_pairs(function.pairs)
    return cached


def quicken_program(program: CompiledProgram) -> CompiledProgram:
    """Quicken every function of a *verified* ``program`` (in place).

    Returns the same object for chaining.  The portable representation —
    and with it serialisation and ``fingerprint()`` — is not modified.
    """
    for function in program.functions:
        quicken_function(function)
    return program


def fusion_counts(program: CompiledProgram) -> dict[str, int]:
    """How many fusion sites quickening found, by superinstruction name.

    Diagnostic helper for tests, the quickened disassembly, and the
    dispatch microbenchmark report.
    """
    counts: dict[str, int] = {}
    for function in program.functions:
        for (op, _operand), (portable_op, _p) in zip(
            quicken_function(function), function.pairs
        ):
            if op != portable_op:
                name = QOp(op).name
                counts[name] = counts.get(name, 0) + 1
    return counts
