"""Operator semantics of the Tasklet language, shared by both engines.

One definition of what ``+``, ``/``, ``==``, indexing, etc. *mean* on
runtime values.  The bytecode VM (:mod:`repro.tvm.vm`) calls these on its
slow paths (its fast paths inline the common numeric cases with identical
behaviour) and the reference AST interpreter
(:mod:`repro.tvm.astinterp`) calls them for everything — so differential
tests compare control-flow and compilation machinery, not two independent
guesses at arithmetic semantics.

The semantics in one paragraph: arithmetic requires numbers (``bool`` is
*not* a number); ``int ∘ int`` stays ``int`` with C-style truncating
division and dividend-sign modulo; any ``float`` operand promotes; ``+``
also concatenates strings and arrays; ``==`` is structural but never
crosses bool/number or string/number boundaries; ordering works on number
pairs and string pairs; indexing is zero-based, bounds-checked, with no
negative-index wraparound.
"""

from __future__ import annotations

from ..common.errors import (
    VMDivisionByZero,
    VMIndexError,
    VMTypeError,
)
from .opcodes import Op


def require_number(left, right, op: str) -> None:
    """Raise unless both operands are non-bool numbers."""
    if (
        isinstance(left, bool)
        or isinstance(right, bool)
        or not isinstance(left, (int, float))
        or not isinstance(right, (int, float))
    ):
        raise VMTypeError(
            f"operator {op!r} needs numbers, got "
            f"{type(left).__name__} and {type(right).__name__}"
        )


def add(left, right):
    """``+``: numeric addition, string concat, or array concat."""
    if isinstance(left, str) and isinstance(right, str):
        return left + right
    if isinstance(left, list) and isinstance(right, list):
        return left + right
    require_number(left, right, "+")
    return left + right


def divide(left, right):
    """``/``: C-style truncating for int/int, true division otherwise."""
    require_number(left, right, "/")
    if right == 0:
        raise VMDivisionByZero("division by zero")
    if isinstance(left, int) and isinstance(right, int):
        quotient = abs(left) // abs(right)
        return quotient if (left >= 0) == (right >= 0) else -quotient
    return left / right


def modulo(left, right):
    """``%``: dividend-sign (C) for int/int, float modulo otherwise."""
    require_number(left, right, "%")
    if right == 0:
        raise VMDivisionByZero("modulo by zero")
    if isinstance(left, int) and isinstance(right, int):
        remainder = abs(left) % abs(right)
        return remainder if left >= 0 else -remainder
    return float(left) % float(right)


def equals(left, right) -> bool:
    """``==``: structural, but bool/number and str/number never equal."""
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left == right
    if type(left) is not type(right):
        return False
    return left == right


def order(op: Op, left, right) -> bool:
    """``< <= > >=`` on number pairs or string pairs."""
    both_numbers = (
        not isinstance(left, bool)
        and not isinstance(right, bool)
        and isinstance(left, (int, float))
        and isinstance(right, (int, float))
    )
    both_strings = isinstance(left, str) and isinstance(right, str)
    if not (both_numbers or both_strings):
        raise VMTypeError(
            f"cannot order {type(left).__name__} and {type(right).__name__}"
        )
    if op is Op.LT:
        return left < right
    if op is Op.LE:
        return left <= right
    if op is Op.GT:
        return left > right
    return left >= right


def index_get(base, index):
    """``base[index]`` on arrays and strings; bounds-checked."""
    if not isinstance(index, int) or isinstance(index, bool):
        raise VMTypeError(f"index must be int, got {type(index).__name__}")
    if isinstance(base, (list, str)):
        if not 0 <= index < len(base):
            kind = "array" if isinstance(base, list) else "string"
            raise VMIndexError(f"{kind} index {index} out of range [0, {len(base)})")
        return base[index]
    raise VMTypeError(f"cannot index {type(base).__name__}")


def index_set(base, index, value) -> None:
    """``base[index] = value`` on arrays only."""
    if not isinstance(base, list):
        raise VMTypeError(f"cannot index-assign {type(base).__name__}")
    if not isinstance(index, int) or isinstance(index, bool):
        raise VMTypeError(f"index must be int, got {type(index).__name__}")
    if not 0 <= index < len(base):
        raise VMIndexError(f"array index {index} out of range [0, {len(base)})")
    base[index] = value
