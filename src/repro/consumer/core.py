"""The consumer core: submission bookkeeping and future resolution.

Sans-IO like its broker and provider counterparts: ``submit`` produces the
envelope to send, ``handle`` consumes broker replies and resolves the
matching :class:`~repro.core.futures.TaskletFuture`.

The future table is guarded by a lock because the real TCP deployment
drives this core from two threads: the application submits while the
receive thread resolves (or, on disconnect, fails) pending futures.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..common.clock import Clock
from ..common.errors import BrokerUnreachable
from ..common.ids import NodeId, TaskletId
from ..core.futures import TaskletFuture
from ..core.results import ExecutionRecord, TaskletResult
from ..core.tasklet import Tasklet
from ..obs import events as ev
from ..obs.telemetry import ConsumerMetrics, Telemetry
from ..obs.trace import TraceContext
from ..transport.message import (
    BROKER_ADDRESS,
    Envelope,
    SubmitAck,
    SubmitTasklet,
    TaskletComplete,
    body_of,
)


@dataclass
class ConsumerStats:
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0


class ConsumerCore:
    """One consumer node's middleware state."""

    def __init__(
        self,
        node_id: NodeId,
        clock: Clock,
        broker: NodeId = BROKER_ADDRESS,
        telemetry: Telemetry | None = None,
    ):
        self.node_id = node_id
        self.clock = clock
        self.broker = broker
        self.telemetry = telemetry
        self._metrics = ConsumerMetrics(telemetry.registry) if telemetry else None
        self._tracer = telemetry.tracer if telemetry else None
        self._events = telemetry.events if telemetry else None
        self.stats = ConsumerStats()
        self._lock = threading.Lock()
        self._futures: dict[TaskletId, TaskletFuture] = {}
        self._submitted_at: dict[TaskletId, float] = {}
        #: Root trace context per in-flight tasklet (telemetry only).
        self._trace_ctx: dict[TaskletId, TraceContext] = {}

    # -- submission -----------------------------------------------------------

    def submit(self, tasklet: Tasklet) -> tuple[TaskletFuture, list[Envelope]]:
        """Register a future for ``tasklet`` and produce the submit message."""
        future = TaskletFuture(tasklet.tasklet_id)
        ctx = self._tracer.start_trace() if self._tracer is not None else None
        with self._lock:
            self._futures[tasklet.tasklet_id] = future
            self._submitted_at[tasklet.tasklet_id] = self.clock.now()
            if ctx is not None:
                self._trace_ctx[tasklet.tasklet_id] = ctx
            self.stats.submitted += 1
        if self._metrics is not None:
            self._metrics.submitted.inc()
        envelope = SubmitTasklet(tasklet=tasklet.to_dict()).envelope(
            src=self.node_id, dst=self.broker
        )
        if ctx is not None:
            envelope.trace = ctx.to_dict()
        return future, [envelope]

    def resolve_local(self, tasklet_id: TaskletId, result: TaskletResult) -> None:
        """Resolve a future without broker involvement (local execution)."""
        with self._lock:
            future = self._futures.pop(tasklet_id, None)
            submitted_at = self._submitted_at.pop(tasklet_id, 0.0)
            ctx = self._trace_ctx.pop(tasklet_id, None)
        if future is not None:
            if result.ok:
                self.stats.completed += 1
            else:
                self.stats.failed += 1
            self._record_finish(
                tasklet_id,
                ok=result.ok,
                submitted_at=submitted_at,
                ctx=ctx,
                failure_kind=None if result.ok else self._failure_kind(result.error),
            )
            future.resolve(result)

    def fail_all_pending(self, reason: str) -> int:
        """Fail every pending future with :class:`BrokerUnreachable`.

        Called by the transport when the broker connection is lost: a
        disconnected consumer can never receive ``tasklet_complete``, so
        waiting callers are woken with a typed error instead of hanging
        until their timeout.  Returns the number of futures failed.
        """
        with self._lock:
            pending = list(self._futures.items())
            submitted = dict(self._submitted_at)
            contexts = dict(self._trace_ctx)
            self._futures.clear()
            self._submitted_at.clear()
            self._trace_ctx.clear()
        now = self.clock.now()
        if pending and self._events is not None:
            self._events.record(
                ev.DISCONNECT,
                node=str(self.node_id),
                ts=now,
                reason=reason,
                pending_failed=len(pending),
            )
        for tasklet_id, future in pending:
            self.stats.failed += 1
            self._record_finish(
                tasklet_id,
                ok=False,
                submitted_at=submitted.get(tasklet_id, 0.0),
                ctx=contexts.get(tasklet_id),
                failure_kind="broker_unreachable",
            )
            future.fail(
                BrokerUnreachable(f"tasklet {tasklet_id}: {reason}"),
                TaskletResult(
                    tasklet_id=tasklet_id,
                    ok=False,
                    error=f"broker unreachable: {reason}",
                    completed_at=now,
                ),
            )
        return len(pending)

    # -- broker replies ----------------------------------------------------------

    def handle(self, envelope: Envelope) -> list[Envelope]:
        body = body_of(envelope)
        if isinstance(body, SubmitAck):
            if not body.accepted:
                self.stats.rejected += 1
                self._resolve_failed(TaskletId(body.tasklet_id), body.reason)
            return []
        if isinstance(body, TaskletComplete):
            self._on_complete(body)
            return []
        return []

    def _on_complete(self, body: TaskletComplete) -> None:
        tasklet_id = TaskletId(body.tasklet_id)
        with self._lock:
            future = self._futures.pop(tasklet_id, None)
            submitted_at = self._submitted_at.pop(tasklet_id, 0.0)
            ctx = self._trace_ctx.pop(tasklet_id, None)
        if future is None:
            return  # duplicate completion
        executions = [ExecutionRecord.from_dict(item) for item in body.executions]
        result = TaskletResult(
            tasklet_id=tasklet_id,
            ok=body.ok,
            value=body.value,
            error=body.error,
            attempts=body.attempts,
            cost=body.cost,
            executions=executions,
            submitted_at=submitted_at,
            completed_at=self.clock.now(),
        )
        if result.ok:
            self.stats.completed += 1
        else:
            self.stats.failed += 1
        self._record_finish(
            tasklet_id,
            ok=result.ok,
            submitted_at=submitted_at,
            ctx=ctx,
            failure_kind=None if result.ok else self._failure_kind(result.error),
        )
        future.resolve(result)

    def _resolve_failed(self, tasklet_id: TaskletId, reason: str) -> None:
        with self._lock:
            future = self._futures.pop(tasklet_id, None)
            submitted_at = self._submitted_at.pop(tasklet_id, 0.0)
            ctx = self._trace_ctx.pop(tasklet_id, None)
        if future is None:
            return
        self.stats.failed += 1
        self._record_finish(
            tasklet_id,
            ok=False,
            submitted_at=submitted_at,
            ctx=ctx,
            failure_kind="rejected",
        )
        future.resolve(
            TaskletResult(
                tasklet_id=tasklet_id,
                ok=False,
                error=f"rejected by broker: {reason}",
                submitted_at=submitted_at,
                completed_at=self.clock.now(),
            )
        )

    # -- telemetry ----------------------------------------------------------

    def _record_finish(
        self,
        tasklet_id: TaskletId,
        ok: bool,
        submitted_at: float,
        ctx: TraceContext | None,
        failure_kind: str | None,
    ) -> None:
        """Metrics and the root ``tasklet`` span for one resolved future."""
        if self._metrics is None:
            return
        now = self.clock.now()
        self._metrics.completed.labels(outcome="ok" if ok else "failed").inc()
        if failure_kind is not None:
            self._metrics.failures.labels(kind=failure_kind).inc()
        self._metrics.latency.observe(max(0.0, now - submitted_at))
        if self._tracer is not None and ctx is not None:
            self._tracer.record(
                name="tasklet",
                context=ctx,
                node=str(self.node_id),
                start=submitted_at,
                end=now,
                status="ok" if ok else (failure_kind or "failed"),
                attrs={"tasklet_id": str(tasklet_id)},
            )

    @staticmethod
    def _failure_kind(error: str | None) -> str:
        """Coarse error family for the ``failures_total`` counter."""
        error = error or ""
        if "disagreed" in error:
            return "disagreement"
        if "insufficient agreeing" in error:
            return "insufficient_votes"
        if "executions failed" in error:
            return "executions_failed"
        if "rejected by broker" in error:
            return "rejected"
        if "broker unreachable" in error:
            return "broker_unreachable"
        return "other"

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._futures)
