"""The consumer core: submission bookkeeping and future resolution.

Sans-IO like its broker and provider counterparts: ``submit`` produces the
envelope to send, ``handle`` consumes broker replies and resolves the
matching :class:`~repro.core.futures.TaskletFuture`.

The future table is guarded by a lock because the real TCP deployment
drives this core from two threads: the application submits while the
receive thread resolves (or, on disconnect, fails) pending futures.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..common.clock import Clock
from ..common.errors import BrokerUnreachable, WorkflowFailed, WorkflowSpecError
from ..common.ids import NodeId, TaskletId
from ..core.futures import TaskletFuture
from ..core.results import ExecutionRecord, TaskletResult
from ..core.tasklet import Tasklet
from ..dag.handle import WorkflowHandle
from ..dag.spec import WorkflowSpec
from ..obs import events as ev
from ..obs.telemetry import ConsumerMetrics, Telemetry
from ..obs.trace import TraceContext
from ..transport.message import (
    BROKER_ADDRESS,
    Envelope,
    SubmitAck,
    SubmitTasklet,
    SubmitWorkflow,
    TaskletComplete,
    WorkflowAck,
    WorkflowComplete,
    WorkflowUpdate,
    body_of,
)


@dataclass
class ConsumerStats:
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    workflows_submitted: int = 0
    workflows_completed: int = 0
    workflows_failed: int = 0


class ConsumerCore:
    """One consumer node's middleware state."""

    def __init__(
        self,
        node_id: NodeId,
        clock: Clock,
        broker: NodeId = BROKER_ADDRESS,
        telemetry: Telemetry | None = None,
    ):
        self.node_id = node_id
        self.clock = clock
        self.broker = broker
        self.telemetry = telemetry
        self._metrics = ConsumerMetrics(telemetry.registry) if telemetry else None
        self._tracer = telemetry.tracer if telemetry else None
        self._events = telemetry.events if telemetry else None
        self.stats = ConsumerStats()
        self._lock = threading.Lock()
        self._futures: dict[TaskletId, TaskletFuture] = {}
        self._submitted_at: dict[TaskletId, float] = {}
        #: Root trace context per in-flight tasklet (telemetry only).
        self._trace_ctx: dict[TaskletId, TraceContext] = {}
        #: In-flight DAG workflows by workflow id.
        self._workflows: dict[str, WorkflowHandle] = {}
        #: Root trace context + submit time per in-flight workflow.
        self._wf_trace: dict[str, tuple[TraceContext, float]] = {}

    # -- submission -----------------------------------------------------------

    def submit(self, tasklet: Tasklet) -> tuple[TaskletFuture, list[Envelope]]:
        """Register a future for ``tasklet`` and produce the submit message."""
        future = TaskletFuture(tasklet.tasklet_id)
        ctx = self._tracer.start_trace() if self._tracer is not None else None
        with self._lock:
            self._futures[tasklet.tasklet_id] = future
            self._submitted_at[tasklet.tasklet_id] = self.clock.now()
            if ctx is not None:
                self._trace_ctx[tasklet.tasklet_id] = ctx
            self.stats.submitted += 1
        if self._metrics is not None:
            self._metrics.submitted.inc()
        envelope = SubmitTasklet(tasklet=tasklet.to_dict()).envelope(
            src=self.node_id, dst=self.broker
        )
        if ctx is not None:
            envelope.trace = ctx.to_dict()
        return future, [envelope]

    def submit_many(
        self, tasklets: list[Tasklet]
    ) -> tuple[list[TaskletFuture], list[Envelope]]:
        """Batch submission: register every future under one lock acquisition.

        Equivalent to calling :meth:`submit` per tasklet but pays the
        lock / clock / stats overhead once for the whole batch — the fast
        path for stage-at-a-time workloads (and the naive DAG baseline).
        """
        futures: list[TaskletFuture] = []
        contexts: list[TraceContext | None] = []
        now = self.clock.now()
        with self._lock:
            for tasklet in tasklets:
                future = TaskletFuture(tasklet.tasklet_id)
                ctx = (
                    self._tracer.start_trace()
                    if self._tracer is not None
                    else None
                )
                self._futures[tasklet.tasklet_id] = future
                self._submitted_at[tasklet.tasklet_id] = now
                if ctx is not None:
                    self._trace_ctx[tasklet.tasklet_id] = ctx
                futures.append(future)
                contexts.append(ctx)
            self.stats.submitted += len(tasklets)
        if self._metrics is not None and tasklets:
            self._metrics.submitted.inc(len(tasklets))
        envelopes: list[Envelope] = []
        for tasklet, ctx in zip(tasklets, contexts):
            envelope = SubmitTasklet(tasklet=tasklet.to_dict()).envelope(
                src=self.node_id, dst=self.broker
            )
            if ctx is not None:
                envelope.trace = ctx.to_dict()
            envelopes.append(envelope)
        return futures, envelopes

    def submit_workflow(
        self, spec: WorkflowSpec
    ) -> tuple[WorkflowHandle, list[Envelope]]:
        """Register a handle for a whole DAG and produce its submit message.

        The broker owns the graph from here: node outputs feed successor
        arguments broker-side, and the handle resolves once on
        ``workflow_complete`` with the sink-node outputs.
        """
        spec.validate()
        handle = WorkflowHandle(spec.workflow_id)
        ctx = self._tracer.start_trace() if self._tracer is not None else None
        now = self.clock.now()
        with self._lock:
            if spec.workflow_id in self._workflows:
                raise WorkflowSpecError(
                    f"workflow {spec.workflow_id!r} is already in flight"
                )
            self._workflows[spec.workflow_id] = handle
            if ctx is not None:
                self._wf_trace[spec.workflow_id] = (ctx, now)
            self.stats.workflows_submitted += 1
        envelope = SubmitWorkflow(workflow=spec.to_dict()).envelope(
            src=self.node_id, dst=self.broker
        )
        if ctx is not None:
            envelope.trace = ctx.to_dict()
        return handle, [envelope]

    def resolve_local(self, tasklet_id: TaskletId, result: TaskletResult) -> None:
        """Resolve a future without broker involvement (local execution)."""
        with self._lock:
            future = self._futures.pop(tasklet_id, None)
            submitted_at = self._submitted_at.pop(tasklet_id, 0.0)
            ctx = self._trace_ctx.pop(tasklet_id, None)
        if future is not None:
            if result.ok:
                self.stats.completed += 1
            else:
                self.stats.failed += 1
            self._record_finish(
                tasklet_id,
                ok=result.ok,
                submitted_at=submitted_at,
                ctx=ctx,
                failure_kind=None if result.ok else self._failure_kind(result.error),
            )
            future.resolve(result)

    def fail_all_pending(self, reason: str) -> int:
        """Fail every pending future with :class:`BrokerUnreachable`.

        Called by the transport when the broker connection is lost: a
        disconnected consumer can never receive ``tasklet_complete``, so
        waiting callers are woken with a typed error instead of hanging
        until their timeout.  Returns the number of futures failed.
        """
        with self._lock:
            pending = list(self._futures.items())
            submitted = dict(self._submitted_at)
            contexts = dict(self._trace_ctx)
            workflows = list(self._workflows.values())
            self._futures.clear()
            self._submitted_at.clear()
            self._trace_ctx.clear()
            self._workflows.clear()
        now = self.clock.now()
        for handle in workflows:
            self.stats.workflows_failed += 1
            self._record_workflow_finish(
                handle.workflow_id, status="broker_unreachable"
            )
            handle.fail(
                BrokerUnreachable(
                    f"workflow {handle.workflow_id}: {reason}"
                )
            )
        if pending and self._events is not None:
            self._events.record(
                ev.DISCONNECT,
                node=str(self.node_id),
                ts=now,
                reason=reason,
                pending_failed=len(pending),
            )
        for tasklet_id, future in pending:
            self.stats.failed += 1
            self._record_finish(
                tasklet_id,
                ok=False,
                submitted_at=submitted.get(tasklet_id, 0.0),
                ctx=contexts.get(tasklet_id),
                failure_kind="broker_unreachable",
            )
            future.fail(
                BrokerUnreachable(f"tasklet {tasklet_id}: {reason}"),
                TaskletResult(
                    tasklet_id=tasklet_id,
                    ok=False,
                    error=f"broker unreachable: {reason}",
                    completed_at=now,
                ),
            )
        return len(pending)

    # -- broker replies ----------------------------------------------------------

    def handle(self, envelope: Envelope) -> list[Envelope]:
        body = body_of(envelope)
        if isinstance(body, SubmitAck):
            if not body.accepted:
                self.stats.rejected += 1
                self._resolve_failed(TaskletId(body.tasklet_id), body.reason)
            return []
        if isinstance(body, TaskletComplete):
            self._on_complete(body)
            return []
        if isinstance(body, WorkflowAck):
            if not body.accepted:
                with self._lock:
                    handle = self._workflows.pop(body.workflow_id, None)
                if handle is not None:
                    self.stats.workflows_failed += 1
                    self._record_workflow_finish(body.workflow_id, status="rejected")
                    handle.fail(
                        WorkflowSpecError(
                            f"workflow {body.workflow_id!r} rejected by "
                            f"broker: {body.reason}"
                        )
                    )
            return []
        if isinstance(body, WorkflowUpdate):
            with self._lock:
                handle = self._workflows.get(body.workflow_id)
            if handle is not None:
                handle.node_states[body.node_id] = body.state
            return []
        if isinstance(body, WorkflowComplete):
            self._on_workflow_complete(body)
            return []
        return []

    def _on_workflow_complete(self, body: WorkflowComplete) -> None:
        with self._lock:
            handle = self._workflows.pop(body.workflow_id, None)
        if handle is None:
            return  # duplicate terminal message
        handle.nodes_total = body.nodes_total
        handle.nodes_memoized = body.nodes_memoized
        self._record_workflow_finish(
            body.workflow_id,
            status="ok" if body.ok else "failed",
            attrs={
                "nodes_total": body.nodes_total,
                "nodes_memoized": body.nodes_memoized,
            },
        )
        if body.ok:
            self.stats.workflows_completed += 1
            for node_id in body.outputs:
                handle.node_states[node_id] = "done"
            handle.resolve(body.outputs)
        else:
            self.stats.workflows_failed += 1
            if body.failed_node:
                handle.node_states[body.failed_node] = "failed"
            handle.fail(
                WorkflowFailed(
                    body.error
                    or f"workflow {body.workflow_id!r} failed at node "
                    f"{body.failed_node!r}",
                    node_id=body.failed_node,
                    dependents=body.dependents,
                )
            )

    def _on_complete(self, body: TaskletComplete) -> None:
        tasklet_id = TaskletId(body.tasklet_id)
        with self._lock:
            future = self._futures.pop(tasklet_id, None)
            submitted_at = self._submitted_at.pop(tasklet_id, 0.0)
            ctx = self._trace_ctx.pop(tasklet_id, None)
        if future is None:
            return  # duplicate completion
        executions = [ExecutionRecord.from_dict(item) for item in body.executions]
        result = TaskletResult(
            tasklet_id=tasklet_id,
            ok=body.ok,
            value=body.value,
            error=body.error,
            attempts=body.attempts,
            cost=body.cost,
            executions=executions,
            submitted_at=submitted_at,
            completed_at=self.clock.now(),
        )
        if result.ok:
            self.stats.completed += 1
        else:
            self.stats.failed += 1
        self._record_finish(
            tasklet_id,
            ok=result.ok,
            submitted_at=submitted_at,
            ctx=ctx,
            failure_kind=None if result.ok else self._failure_kind(result.error),
        )
        future.resolve(result)

    def _resolve_failed(self, tasklet_id: TaskletId, reason: str) -> None:
        with self._lock:
            future = self._futures.pop(tasklet_id, None)
            submitted_at = self._submitted_at.pop(tasklet_id, 0.0)
            ctx = self._trace_ctx.pop(tasklet_id, None)
        if future is None:
            return
        self.stats.failed += 1
        self._record_finish(
            tasklet_id,
            ok=False,
            submitted_at=submitted_at,
            ctx=ctx,
            failure_kind="rejected",
        )
        future.resolve(
            TaskletResult(
                tasklet_id=tasklet_id,
                ok=False,
                error=f"rejected by broker: {reason}",
                submitted_at=submitted_at,
                completed_at=self.clock.now(),
            )
        )

    # -- telemetry ----------------------------------------------------------

    def _record_finish(
        self,
        tasklet_id: TaskletId,
        ok: bool,
        submitted_at: float,
        ctx: TraceContext | None,
        failure_kind: str | None,
    ) -> None:
        """Metrics and the root ``tasklet`` span for one resolved future."""
        if self._metrics is None:
            return
        now = self.clock.now()
        self._metrics.completed.labels(outcome="ok" if ok else "failed").inc()
        if failure_kind is not None:
            self._metrics.failures.labels(kind=failure_kind).inc()
        self._metrics.latency.observe(max(0.0, now - submitted_at))
        if self._tracer is not None and ctx is not None:
            self._tracer.record(
                name="tasklet",
                context=ctx,
                node=str(self.node_id),
                start=submitted_at,
                end=now,
                status="ok" if ok else (failure_kind or "failed"),
                attrs={"tasklet_id": str(tasklet_id)},
            )

    def _record_workflow_finish(
        self,
        workflow_id: str,
        status: str,
        attrs: dict | None = None,
    ) -> None:
        """The root ``workflow`` span for one resolved DAG submission."""
        with self._lock:
            entry = self._wf_trace.pop(workflow_id, None)
        if entry is None or self._tracer is None:
            return
        ctx, submitted_at = entry
        span_attrs = {"workflow_id": workflow_id}
        if attrs:
            span_attrs.update(attrs)
        self._tracer.record(
            name="workflow",
            context=ctx,
            node=str(self.node_id),
            start=submitted_at,
            end=self.clock.now(),
            status=status,
            attrs=span_attrs,
        )

    @staticmethod
    def _failure_kind(error: str | None) -> str:
        """Coarse error family for the ``failures_total`` counter."""
        error = error or ""
        if "disagreed" in error:
            return "disagreement"
        if "insufficient agreeing" in error:
            return "insufficient_votes"
        if "executions failed" in error:
            return "executions_failed"
        if "rejected by broker" in error:
            return "rejected"
        if "broker unreachable" in error:
            return "broker_unreachable"
        return "other"

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._futures) + len(self._workflows)
