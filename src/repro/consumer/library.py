"""The Tasklet Library: the public API applications program against.

This is the paper's "Tasklet Library" — the thin layer an application
links to issue Tasklets without caring where they run.  It adds, on top of
a :class:`Session` (simulated or TCP):

* source compilation with caching (``compile``);
* one-call submission (``submit``) and bulk fan-out (``map``);
* the *privacy* QoC goal: ``local_only`` Tasklets never reach the session —
  they run on the consumer's own TVM, synchronously;
* seed management so that every Tasklet gets a distinct but reproducible
  PRNG seed derived from the library's base seed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..dag.handle import WorkflowHandle
    from ..dag.spec import WorkflowSpec

from ..common.errors import WorkflowSpecError
from ..common.ids import IdGenerator
from ..common.rng import derive_seed
from ..core.futures import TaskletFuture
from ..core.qoc import QoC
from ..core.results import (
    ExecutionRecord,
    ExecutionStatus,
    TaskletResult,
)
from ..core.tasklet import Tasklet
from ..provider.executor import TaskletExecutor
from ..transport.message import AssignExecution
from ..tvm.bytecode import CompiledProgram
from ..tvm.compiler import compile_source
from ..tvm.vm import DEFAULT_FUEL


class Session(Protocol):
    """Where remote Tasklets go: the simulator or a TCP connection."""

    def submit_tasklet(self, tasklet: Tasklet) -> TaskletFuture:
        """Hand one Tasklet to the middleware; returns its future."""
        ...

    def now(self) -> float:
        """Session time (virtual in simulation, wall on TCP)."""
        ...


class TaskletLibrary:
    """Application-facing entry point (see module docstring).

    >>> library = TaskletLibrary(session)          # doctest: +SKIP
    >>> program = library.compile(SOURCE)          # doctest: +SKIP
    >>> future = library.submit(program, args=[4]) # doctest: +SKIP
    >>> future.result()                            # doctest: +SKIP
    """

    def __init__(self, session: Session, base_seed: int = 0):
        self.session = session
        self.base_seed = base_seed
        self.ids = IdGenerator()
        self._source_cache: dict[str, CompiledProgram] = {}
        self._local_executor = TaskletExecutor()

    # -- compilation ---------------------------------------------------------

    def compile(self, source: str) -> CompiledProgram:
        """Compile Tasklet source (memoised per distinct source text)."""
        cached = self._source_cache.get(source)
        if cached is not None:
            return cached
        program = compile_source(source)
        self._source_cache[source] = program
        return program

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        program: CompiledProgram | str,
        entry: str = "main",
        args: Sequence[Any] | None = None,
        qoc: QoC | None = None,
        fuel: int = DEFAULT_FUEL,
        seed: int | None = None,
        tasklet_id: str | None = None,
    ) -> TaskletFuture:
        """Issue one Tasklet; returns its future.

        ``program`` may be source text (compiled and cached) or an
        already-compiled program.  ``seed`` defaults to a deterministic
        per-Tasklet derivation from the library's ``base_seed``.

        ``tasklet_id`` defaults to a fresh id.  Passing an explicit id
        makes resubmission idempotent: after a broker or connection
        failure (``BrokerUnreachable``), submitting again with the same
        id re-attaches to the in-flight attempt or re-delivers the
        journalled result — it never runs the work twice.  The derived
        seed depends only on the id, so a resubmit is bit-identical.
        """
        if isinstance(program, str):
            program = self.compile(program)
        qoc = qoc or QoC()
        if tasklet_id is None:
            tasklet_id = self.ids.next_tasklet()
        if seed is None:
            seed = derive_seed(self.base_seed, tasklet_id)
        tasklet = Tasklet(
            tasklet_id=tasklet_id,
            program=program,
            entry=entry,
            args=list(args or []),
            qoc=qoc,
            seed=seed,
            fuel=fuel,
        )
        if qoc.local_only:
            return self._run_local(tasklet)
        return self.session.submit_tasklet(tasklet)

    def map(
        self,
        program: CompiledProgram | str,
        args_list: Sequence[Sequence[Any]],
        entry: str = "main",
        qoc: QoC | None = None,
        fuel: int = DEFAULT_FUEL,
    ) -> list[TaskletFuture]:
        """Fan one program out over many argument tuples (bag of tasks)."""
        if isinstance(program, str):
            program = self.compile(program)
        return [
            self.submit(program, entry=entry, args=args, qoc=qoc, fuel=fuel)
            for args in args_list
        ]

    def submit_workflow(self, spec: "WorkflowSpec") -> "WorkflowHandle":
        """Submit a whole DAG of Tasklets in one message.

        The broker owns the graph: it releases nodes as predecessors
        complete and injects their outputs into successor arguments, so
        multi-stage pipelines pay no consumer round-trip between stages.
        The returned :class:`~repro.dag.WorkflowHandle` resolves with the
        sink-node outputs (``{node_id: value}``), or raises
        :class:`~repro.common.errors.WorkflowFailed` if a node exhausts
        its retries.

        Requires a session that supports workflows (the simulator and the
        TCP consumer both do).
        """
        spec.validate()
        submit = getattr(self.session, "submit_workflow", None)
        if submit is None:
            raise WorkflowSpecError(
                f"session {type(self.session).__name__} does not support "
                "workflow submission"
            )
        return submit(spec)

    @staticmethod
    def gather(futures: Sequence[TaskletFuture], timeout: float | None = None) -> list[Any]:
        """Wait for all futures; returns their values in order.

        Raises :class:`~repro.common.errors.ExecutionFailed` on the first
        failed Tasklet (partial results are available on the futures).
        """
        return [future.result(timeout) for future in futures]

    # -- local (privacy QoC) ----------------------------------------------------

    def _run_local(self, tasklet: Tasklet) -> TaskletFuture:
        """Execute on the consumer's own TVM, never leaving the device."""
        future = TaskletFuture(tasklet.tasklet_id)
        request = AssignExecution(
            execution_id=f"local-{tasklet.tasklet_id}",
            tasklet_id=tasklet.tasklet_id,
            consumer_id="local",
            program=tasklet.program.to_dict(),
            entry=tasklet.entry,
            args=tasklet.args,
            seed=tasklet.seed,
            fuel=tasklet.fuel,
        )
        started = self.session.now()
        outcome = self._local_executor.execute(request)
        finished = self.session.now()
        record = ExecutionRecord(
            execution_id=request.execution_id,
            tasklet_id=tasklet.tasklet_id,
            provider_id="local",
            status=outcome.status,
            value=outcome.value,
            error=outcome.error,
            instructions=outcome.instructions,
            started_at=started,
            finished_at=finished,
        )
        future.resolve(
            TaskletResult(
                tasklet_id=tasklet.tasklet_id,
                ok=outcome.ok,
                value=outcome.value,
                error=outcome.error,
                attempts=1,
                executions=[record],
                submitted_at=started,
                completed_at=finished,
            )
        )
        return future
