"""Consumer: the Tasklet Library and the consumer-side middleware core."""

from .core import ConsumerCore, ConsumerStats
from .library import Session, TaskletLibrary

__all__ = ["ConsumerCore", "ConsumerStats", "Session", "TaskletLibrary"]
