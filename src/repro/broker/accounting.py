"""Cost accounting: the market ledger behind the cost QoC goal.

Providers register with a *price* (cost units per 10⁹ TVM instructions).
The ledger charges each successful execution at the executing provider's
price and tracks, per consumer, what was spent and, per provider, what
was earned.  Together with the strategies' ``cost_ceiling`` filtering
this forms the middleware's simple compute market:

* consumers bound what they will pay via ``QoC(cost_ceiling=...)``;
* the broker never places work on providers above the ceiling;
* completed work is billed at the provider's registered price;
* replicas and retries are billed too — reliability costs real money,
  which experiment F6 quantifies in provider-seconds and this ledger
  turns into cost units.

The ledger is deliberately an in-memory value object: persistence and
settlement are deployment concerns outside the middleware's scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.ids import NodeId

#: Price unit: cost per this many TVM instructions.
PRICE_QUANTUM = 1e9


def execution_cost(instructions: int, price: float) -> float:
    """Cost of one execution at ``price`` units per 10⁹ instructions."""
    if instructions < 0:
        raise ValueError(f"negative instruction count {instructions}")
    if price < 0:
        raise ValueError(f"negative price {price}")
    return instructions / PRICE_QUANTUM * price


@dataclass
class ConsumerAccount:
    """What one consumer has spent."""

    consumer_id: NodeId
    spent: float = 0.0
    executions_billed: int = 0
    instructions_billed: int = 0


@dataclass
class ProviderAccount:
    """What one provider has earned."""

    provider_id: NodeId
    earned: float = 0.0
    executions_billed: int = 0
    instructions_billed: int = 0


@dataclass
class CostLedger:
    """All charges recorded by one broker."""

    consumers: dict[NodeId, ConsumerAccount] = field(default_factory=dict)
    providers: dict[NodeId, ProviderAccount] = field(default_factory=dict)
    total_billed: float = 0.0
    _per_tasklet: dict[str, float] = field(default_factory=dict)

    def charge(
        self,
        consumer_id: NodeId,
        provider_id: NodeId,
        tasklet_key: str,
        instructions: int,
        price: float,
    ) -> float:
        """Bill one successful execution; returns the charged amount."""
        amount = execution_cost(instructions, price)
        consumer = self.consumers.setdefault(
            consumer_id, ConsumerAccount(consumer_id=consumer_id)
        )
        consumer.spent += amount
        consumer.executions_billed += 1
        consumer.instructions_billed += instructions
        provider = self.providers.setdefault(
            provider_id, ProviderAccount(provider_id=provider_id)
        )
        provider.earned += amount
        provider.executions_billed += 1
        provider.instructions_billed += instructions
        self.total_billed += amount
        self._per_tasklet[tasklet_key] = (
            self._per_tasklet.get(tasklet_key, 0.0) + amount
        )
        return amount

    def spent_by(self, consumer_id: NodeId) -> float:
        account = self.consumers.get(consumer_id)
        return account.spent if account else 0.0

    def earned_by(self, provider_id: NodeId) -> float:
        account = self.providers.get(provider_id)
        return account.earned if account else 0.0

    def cost_of(self, tasklet_key: str) -> float:
        """Total billed for one Tasklet (all replicas and retries)."""
        return self._per_tasklet.get(tasklet_key, 0.0)

    def pop_cost_of(self, tasklet_key: str) -> float:
        """Like :meth:`cost_of` but releases the per-Tasklet entry
        (called when the Tasklet completes, to bound memory)."""
        return self._per_tasklet.pop(tasklet_key, 0.0)

    @property
    def conservation_holds(self) -> bool:
        """Invariant: total spent == total earned == total billed."""
        spent = sum(account.spent for account in self.consumers.values())
        earned = sum(account.earned for account in self.providers.values())
        return (
            abs(spent - self.total_billed) < 1e-9
            and abs(earned - self.total_billed) < 1e-9
        )
