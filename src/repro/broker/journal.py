"""Broker durability: the work journal and result memoization.

The journal is the broker's crash-survivable memory, modeled on the
minimal two-state (``pending``/``complete``) pull queue of the
dashcam-processor task system: an append-only JSONL file holding one
record per state transition —

* ``admitted`` — a Tasklet passed admission; the record carries the full
  wire-form Tasklet so a restarted broker can re-admit and re-issue it
  without the consumer doing anything;
* ``complete`` — the Tasklet reached a terminal outcome; the record
  carries the voted value (or error), so an idempotent resubmit after a
  restart is answered from the journal instead of re-executed.

A Tasklet is *pending* iff its ``admitted`` record has no matching
``complete`` record.  There is deliberately no ``in_progress`` state:
replica placement is reconstructed by re-issuing, which is safe because
Tasklets are side-effect-free and deterministic.

That same determinism is what makes the journal double as a result
cache: two submissions agreeing on (program fingerprint, entry, args,
seed, fuel) must produce bit-identical values, so :class:`ResultCache`
memoizes successful completions under :func:`memo_key_of` and the broker
serves repeats with zero executions issued.

Replay tolerates a truncated or corrupt trailing line — the signature of
a crash mid-append — and, more generally, skips any undecodable line
(JSONL lines are independent), counting them in
:attr:`JournalSnapshot.malformed`.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

#: Journal record kinds — the complete state vocabulary.  Workflow kinds
#: mirror the tasklet pair at the graph level: a ``wf_admitted`` record
#: carries the whole :class:`repro.dag.WorkflowSpec` wire dict, and node
#: executions reuse plain ``admitted``/``complete`` records tagged with
#: their owning workflow key (see :meth:`WorkJournal.record_admitted`).
KIND_ADMITTED = "admitted"
KIND_COMPLETE = "complete"
KIND_WF_ADMITTED = "wf_admitted"
KIND_WF_COMPLETE = "wf_complete"


def memo_key_of(
    program_fingerprint: str,
    entry: str,
    args: list[Any],
    seed: int,
    fuel: int,
) -> str | None:
    """Identity of a Tasklet's *computation* (not its submission).

    Everything that determines the result of a deterministic Tasklet:
    the program content hash plus entry point, arguments, PRNG seed, and
    fuel (fuel is included because exhaustion depends on it).  Returns
    ``None`` when no fingerprint was stamped or the arguments do not
    canonicalise — such submissions are simply never memoized.
    """
    if not program_fingerprint:
        return None
    try:
        canonical = json.dumps(
            [entry, args, seed, fuel], sort_keys=True, separators=(",", ":")
        )
    except (TypeError, ValueError):
        return None
    digest = hashlib.sha256(
        (program_fingerprint + "\x00" + canonical).encode("utf-8")
    )
    return digest.hexdigest()[:32]


@dataclass(frozen=True)
class CompletionRecord:
    """Terminal outcome of one Tasklet, as journalled.

    Per-execution records are deliberately not persisted (they can dwarf
    the result); a re-delivered or memoized completion therefore carries
    ``executions: []`` on the wire.
    """

    key: str  # broker-internal identity: consumer_id/tasklet_id
    tasklet_id: str
    consumer_id: str
    ok: bool
    value: Any = None
    error: str | None = None
    attempts: int = 0
    cost: float = 0.0
    memo_key: str | None = None
    completed_at: float = 0.0
    #: Broker whose providers actually executed this tasklet ("" when the
    #: outcome came from the result cache or a journal redelivery).  Lets
    #: federation audits assert exactly-once across all broker journals.
    executed_by: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "tasklet_id": self.tasklet_id,
            "consumer_id": self.consumer_id,
            "ok": self.ok,
            "value": self.value,
            "error": self.error,
            "attempts": self.attempts,
            "cost": self.cost,
            "memo_key": self.memo_key,
            "completed_at": self.completed_at,
            "executed_by": self.executed_by,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CompletionRecord":
        return cls(
            key=str(data["key"]),
            tasklet_id=str(data["tasklet_id"]),
            consumer_id=str(data.get("consumer_id", "")),
            ok=bool(data["ok"]),
            value=data.get("value"),
            error=data.get("error"),
            attempts=int(data.get("attempts", 0)),
            cost=float(data.get("cost", 0.0)),
            memo_key=data.get("memo_key"),
            completed_at=float(data.get("completed_at", 0.0)),
            executed_by=str(data.get("executed_by", "")),
        )


@dataclass
class JournalSnapshot:
    """Result of replaying one journal file."""

    #: ``admitted`` records (raw dicts) with no matching completion, in
    #: admission order — the work a restarted broker must re-issue.
    pending: list[dict] = field(default_factory=list)
    #: Terminal outcomes by Tasklet key, most recent write winning.
    completions: "OrderedDict[str, CompletionRecord]" = field(
        default_factory=OrderedDict
    )
    admitted: int = 0
    completed: int = 0
    #: Undecodable or schema-less lines skipped (crash-truncated tail,
    #: torn writes); never fatal.
    malformed: int = 0
    #: ``wf_admitted`` records (raw dicts) with no matching
    #: ``wf_complete``, in admission order — workflows a restarted broker
    #: must resume.
    workflows: list[dict] = field(default_factory=list)
    #: Workflow key -> ``wf_complete`` record dict, most recent winning.
    workflow_completions: "OrderedDict[str, dict]" = field(
        default_factory=OrderedDict
    )
    #: Workflow-tagged node ``admitted`` records, in admission order.
    #: Informational (CLI rendering): node re-release during recovery is
    #: driven by the spec + completions, not by these.
    workflow_nodes: list[dict] = field(default_factory=list)
    workflows_admitted: int = 0
    workflows_completed: int = 0

    @property
    def pending_keys(self) -> list[str]:
        return [str(entry.get("key", "")) for entry in self.pending]

    @property
    def pending_workflow_keys(self) -> list[str]:
        return [str(entry.get("key", "")) for entry in self.workflows]

    def workflow_node_state(self, node_key: str) -> str:
        """Journal-derived state of one workflow node.

        ``done``/``failed`` if a completion was journalled, ``running``
        if the node was released (admitted) but never finished, and
        ``waiting`` if the broker had not yet released it.
        """
        completion = self.completions.get(node_key)
        if completion is not None:
            return "done" if completion.ok else "failed"
        for record in self.workflow_nodes:
            if record.get("key") == node_key:
                return "running"
        return "waiting"


def replay_journal(path: str) -> JournalSnapshot:
    """Read one journal file into a :class:`JournalSnapshot`.

    Missing file ⇒ empty snapshot (a fresh broker with a configured
    journal path that has never written).
    """
    snapshot = JournalSnapshot()
    try:
        handle = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        return snapshot
    admitted_by_key: "OrderedDict[str, dict]" = OrderedDict()
    wf_by_key: "OrderedDict[str, dict]" = OrderedDict()
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                snapshot.malformed += 1
                continue
            if not isinstance(record, dict):
                snapshot.malformed += 1
                continue
            kind = record.get("kind")
            if kind == KIND_ADMITTED:
                key = record.get("key")
                if not isinstance(key, str) or "tasklet" not in record:
                    snapshot.malformed += 1
                    continue
                snapshot.admitted += 1
                if record.get("workflow"):
                    # Node of a workflow: owned by its graph, never
                    # re-admitted standalone.
                    snapshot.workflow_nodes.append(record)
                    continue
                admitted_by_key[key] = record
            elif kind == KIND_WF_ADMITTED:
                key = record.get("key")
                if not isinstance(key, str) or "workflow" not in record:
                    snapshot.malformed += 1
                    continue
                snapshot.workflows_admitted += 1
                wf_by_key[key] = record
            elif kind == KIND_WF_COMPLETE:
                key = record.get("key")
                if not isinstance(key, str) or "outcome" not in record:
                    snapshot.malformed += 1
                    continue
                snapshot.workflows_completed += 1
                snapshot.workflow_completions[key] = record
                snapshot.workflow_completions.move_to_end(key)
            elif kind == KIND_COMPLETE:
                try:
                    completion = CompletionRecord.from_dict(record)
                except (KeyError, TypeError, ValueError):
                    snapshot.malformed += 1
                    continue
                snapshot.completed += 1
                snapshot.completions[completion.key] = completion
                snapshot.completions.move_to_end(completion.key)
            else:
                snapshot.malformed += 1
    snapshot.pending = [
        record
        for key, record in admitted_by_key.items()
        if key not in snapshot.completions
    ]
    snapshot.workflows = [
        record
        for key, record in wf_by_key.items()
        if key not in snapshot.workflow_completions
    ]
    return snapshot


class WorkJournal:
    """Append-only JSONL journal of admitted and completed Tasklets.

    Writes are serialised by an internal lock (the TCP broker drives the
    core from several threads) and flushed per record so a crash loses at
    most the line being written — which replay tolerates.  ``fsync=True``
    additionally syncs every append for machines where the page cache
    must not be trusted; off by default because it dominates admission
    latency (``benchmarks/bench_micro_journal.py`` measures both paths).

    ``auto_compact_records`` / ``auto_compact_bytes`` arm automatic
    compaction: once that many records have been appended since the last
    compaction (or the file exceeds that many bytes), the next
    :meth:`maybe_compact` call rewrites the journal in place, dropping
    ``admitted`` records that already completed.  Both default to off —
    compaction stays manual via ``repro journal --compact``.
    """

    #: Appends required between byte-triggered compactions, so a journal
    #: dominated by live (incompactable) state cannot re-trigger a
    #: rewrite on every write.
    MIN_APPENDS_BETWEEN_COMPACTIONS = 32

    def __init__(
        self,
        path: str,
        fsync: bool = False,
        auto_compact_records: int | None = None,
        auto_compact_bytes: int | None = None,
    ):
        self.path = path
        self.fsync = fsync
        self.auto_compact_records = auto_compact_records
        self.auto_compact_bytes = auto_compact_bytes
        self._lock = threading.Lock()
        self._appended = 0  # records written since open / last compaction
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._file = open(path, "a", encoding="utf-8")
        self._size = self._file.tell()

    # -- writes ---------------------------------------------------------------

    def record_admitted(
        self, key: str, consumer_id: str, tasklet: dict, ts: float,
        origin: str = "",
        workflow: str = "",
    ) -> None:
        """Journal one admission (the full wire-form Tasklet).

        ``origin`` names the originating broker for work forwarded by a
        federation peer: such admissions are the *origin's* durable
        responsibility, so replay never re-admits them here (the origin
        reclaims and re-issues them when this broker is lost).

        ``workflow`` names the owning workflow key for a node released
        from a DAG: replay keeps such records out of
        :attr:`JournalSnapshot.pending` (the workflow's own recovery
        path re-releases nodes from the spec + completions).
        """
        record = {
            "kind": KIND_ADMITTED,
            "key": key,
            "consumer_id": consumer_id,
            "ts": ts,
            "tasklet": tasklet,
        }
        if origin:
            record["origin"] = origin
        if workflow:
            record["workflow"] = workflow
        self._write(record)

    def record_complete(self, completion: CompletionRecord) -> None:
        """Journal one terminal outcome."""
        record = completion.to_dict()
        record["kind"] = KIND_COMPLETE
        self._write(record)

    def record_workflow_admitted(
        self, key: str, consumer_id: str, workflow: dict, ts: float
    ) -> None:
        """Journal one admitted workflow (the full wire-form spec)."""
        self._write(
            {
                "kind": KIND_WF_ADMITTED,
                "key": key,
                "consumer_id": consumer_id,
                "ts": ts,
                "workflow": workflow,
            }
        )

    def record_workflow_complete(
        self, key: str, outcome: dict, ts: float
    ) -> None:
        """Journal one workflow's terminal outcome dict."""
        self._write(
            {
                "kind": KIND_WF_COMPLETE,
                "key": key,
                "ts": ts,
                "outcome": outcome,
            }
        )

    def _write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._file.closed:
                return  # shutdown race: losing a tail record is recoverable
            self._file.write(line + "\n")
            self._file.flush()
            if self.fsync:
                os.fsync(self._file.fileno())
            self._appended += 1
            self._size += len(line) + 1

    # -- reads ----------------------------------------------------------------

    def replay(self) -> JournalSnapshot:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
        return replay_journal(self.path)

    # -- maintenance ----------------------------------------------------------

    def compact(self, keep_completions: int | None = None) -> JournalSnapshot:
        """Rewrite the journal keeping only live state.

        Drops ``admitted`` records that already completed (the program
        payloads dominate journal size) and, when ``keep_completions``
        is given, all but the most recent N completions.  State an
        in-flight workflow still needs survives unconditionally: its
        ``wf_admitted`` record, its not-yet-completed node admissions,
        and its node completions (exempt from the ``keep_completions``
        trim — recovery replays them into the rebuilt scheduler).  The
        rewrite is atomic (temp file + rename); returns the snapshot it
        kept.
        """
        snapshot = self.replay()
        pending_wf = set(snapshot.pending_workflow_keys)

        def _owned_by_pending_workflow(node_key: str) -> bool:
            return any(node_key.startswith(wf + ":") for wf in pending_wf)

        completions = list(snapshot.completions.values())
        if keep_completions is not None and keep_completions >= 0:
            tail = (
                {c.key for c in completions[-keep_completions:]}
                if keep_completions
                else set()
            )
            completions = [
                completion
                for completion in completions
                if completion.key in tail
                or _owned_by_pending_workflow(completion.key)
            ]
        live_nodes = [
            record
            for record in snapshot.workflow_nodes
            if record.get("workflow") in pending_wf
            and record.get("key") not in snapshot.completions
        ]
        temp_path = self.path + ".compact"
        with self._lock:
            with open(temp_path, "w", encoding="utf-8") as temp:

                def _emit(record: dict) -> None:
                    temp.write(
                        json.dumps(record, sort_keys=True, separators=(",", ":"))
                        + "\n"
                    )

                for entry in snapshot.pending:
                    _emit(entry)
                for entry in snapshot.workflows:
                    _emit(entry)
                for entry in live_nodes:
                    _emit(entry)
                for completion in completions:
                    record = completion.to_dict()
                    record["kind"] = KIND_COMPLETE
                    _emit(record)
                for entry in snapshot.workflow_completions.values():
                    _emit(entry)
                temp.flush()
                os.fsync(temp.fileno())
            if not self._file.closed:
                self._file.close()
            os.replace(temp_path, self.path)
            self._file = open(self.path, "a", encoding="utf-8")
            self._size = self._file.tell()
            self._appended = 0
        kept = JournalSnapshot(
            pending=snapshot.pending,
            completions=OrderedDict(
                (completion.key, completion) for completion in completions
            ),
            admitted=len(snapshot.pending) + len(live_nodes),
            completed=len(completions),
            malformed=0,
            workflows=snapshot.workflows,
            workflow_completions=OrderedDict(snapshot.workflow_completions),
            workflow_nodes=live_nodes,
            workflows_admitted=len(snapshot.workflows),
            workflows_completed=len(snapshot.workflow_completions),
        )
        return kept

    def should_compact(self) -> bool:
        """True when an armed auto-compaction threshold has been crossed."""
        with self._lock:
            if self._file.closed:
                return False
            if (
                self.auto_compact_records is not None
                and self._appended >= self.auto_compact_records
            ):
                return True
            return (
                self.auto_compact_bytes is not None
                and self._size >= self.auto_compact_bytes
                and self._appended >= self.MIN_APPENDS_BETWEEN_COMPACTIONS
            )

    def maybe_compact(self) -> dict | None:
        """Compact if a threshold is crossed; stats dict or ``None``.

        Called by the broker after journal writes (never while holding
        the journal lock — :meth:`compact` takes it itself).  The stats
        feed the ``journal_compacted`` event.
        """
        if not self.should_compact():
            return None
        bytes_before = self._size
        snapshot = self.compact()
        return {
            "records_kept": snapshot.admitted + snapshot.completed,
            "pending": len(snapshot.pending),
            "completions": len(snapshot.completions),
            "bytes_before": bytes_before,
            "bytes_after": self._size,
        }

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


class ResultCache:
    """LRU memoization of *successful* completions by computation identity.

    Only ``ok`` outcomes are cached: a success of a deterministic,
    side-effect-free Tasklet is a property of its inputs, while a failure
    is usually a property of the moment (provider churn, exhausted pool)
    and must stay retryable.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, CompletionRecord]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> CompletionRecord | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: str, completion: CompletionRecord) -> None:
        if not completion.ok:
            return
        with self._lock:
            self._entries[key] = completion
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }
