"""The broker's provider registry.

Tracks every registered provider: static capabilities (device class,
capacity, self-benchmark score, price), liveness (heartbeat-based failure
detection), load (executions outstanding), and learned behaviour (EWMA of
observed execution speed, success/failure history).  Scheduling strategies
consume :class:`ProviderView` snapshots from here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import RegistrationError
from ..common.ids import NodeId
from ..common.stats import EwmaTracker

#: A provider missing this many heartbeat intervals is declared dead.
DEFAULT_HEARTBEAT_INTERVAL = 1.0
DEFAULT_HEARTBEAT_TOLERANCE = 3.0  # intervals


@dataclass
class ProviderRecord:
    """Mutable broker-side state for one provider."""

    provider_id: NodeId
    device_class: str
    capacity: int
    benchmark_score: float  # instructions/second, self-reported
    price: float = 0.0
    heartbeat_interval: float = 1.0  # promised by the provider at registration
    registered_at: float = 0.0
    last_heartbeat: float = 0.0
    alive: bool = True
    outstanding: int = 0  # executions assigned, not yet terminal
    completed: int = 0
    failed: int = 0
    observed_speed: EwmaTracker = field(default_factory=lambda: EwmaTracker(alpha=0.3))

    @property
    def free_slots(self) -> int:
        return max(0, self.capacity - self.outstanding)

    @property
    def effective_speed(self) -> float:
        """Best current estimate of instructions/second.

        The self-reported benchmark seeds the estimate; observed execution
        rates take over as evidence accumulates, so a provider that
        overstated its benchmark (or got slower) is re-ranked quickly.
        """
        observed = self.observed_speed.value
        return observed if observed is not None else self.benchmark_score

    @property
    def reliability(self) -> float:
        """Smoothed success ratio in [0, 1] (Laplace-smoothed)."""
        return (self.completed + 1) / (self.completed + self.failed + 2)

    def record_result(
        self, ok: bool, instructions: int, duration: float, learn_speed: bool = True
    ) -> None:
        """Fold one terminal execution into the learned statistics.

        This is the *single* accounting path for terminal outcomes —
        results, rejections, timeouts, and provider losses all land here,
        so the slot is always released and ``reliability`` sees every
        failure mode with the same weight.
        """
        self.outstanding = max(0, self.outstanding - 1)
        if ok:
            self.completed += 1
            if learn_speed and duration > 0 and instructions > 0:
                self.observed_speed.add(instructions / duration)
        else:
            self.failed += 1

    def release_slot(self) -> None:
        """Free one slot without grading the provider (cancelled replica:
        the vote already decided, so the outcome says nothing about it)."""
        self.outstanding = max(0, self.outstanding - 1)


@dataclass(frozen=True)
class ProviderView:
    """Immutable snapshot handed to scheduling strategies."""

    provider_id: NodeId
    device_class: str
    capacity: int
    free_slots: int
    effective_speed: float
    reliability: float
    price: float
    outstanding: int


class ProviderRegistry:
    """All providers known to one broker."""

    def __init__(
        self,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_tolerance: float = DEFAULT_HEARTBEAT_TOLERANCE,
        learn_speed: bool = True,
        pipeline_depth: int = 0,
    ):
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_tolerance = heartbeat_tolerance
        self.learn_speed = learn_speed
        #: Extra executions the broker may keep in flight per provider
        #: beyond its slot count, hiding the network round trip between a
        #: result and the next assignment (see ablation A5).  The provider
        #: queues them locally.
        self.pipeline_depth = pipeline_depth
        self._providers: dict[NodeId, ProviderRecord] = {}

    # -- membership ----------------------------------------------------------

    def register(
        self,
        provider_id: NodeId,
        device_class: str,
        capacity: int,
        benchmark_score: float,
        price: float,
        now: float,
        heartbeat_interval: float | None = None,
    ) -> ProviderRecord:
        """Add (or re-add after a crash) a provider."""
        if capacity < 1:
            raise RegistrationError(f"capacity must be >= 1, got {capacity}")
        if benchmark_score <= 0:
            raise RegistrationError(
                f"benchmark score must be positive, got {benchmark_score}"
            )
        record = ProviderRecord(
            provider_id=provider_id,
            device_class=device_class,
            capacity=capacity,
            benchmark_score=benchmark_score,
            price=price,
            heartbeat_interval=heartbeat_interval or self.heartbeat_interval,
            registered_at=now,
            last_heartbeat=now,
        )
        # Re-registration replaces the old record: a provider that crashed
        # and came back starts with a clean slate of outstanding work.
        self._providers[provider_id] = record
        return record

    def unregister(self, provider_id: NodeId) -> ProviderRecord | None:
        """Remove a provider (graceful leave); returns its record."""
        return self._providers.pop(provider_id, None)

    def get(self, provider_id: NodeId) -> ProviderRecord | None:
        return self._providers.get(provider_id)

    def __len__(self) -> int:
        return len(self._providers)

    def __contains__(self, provider_id: NodeId) -> bool:
        return provider_id in self._providers

    # -- liveness ------------------------------------------------------------

    def heartbeat(self, provider_id: NodeId, now: float) -> bool:
        """Record a heartbeat; returns False for unknown or dead providers.

        A provider declared dead must re-register rather than be revived
        by a bare heartbeat: its outstanding executions were already
        failed over when it was declared dead, so silently resurrecting
        the record would leave phantom ``outstanding`` load (and stale
        learned state) attached to a node the broker wrote off.  False
        makes the broker answer with ``REASON_UNKNOWN_PROVIDER``, which
        both transports treat as "register again".
        """
        record = self._providers.get(provider_id)
        if record is None or not record.alive:
            return False
        record.last_heartbeat = now
        return True

    def detect_failures(self, now: float) -> list[NodeId]:
        """Mark silent providers dead; returns the newly dead ones.

        Each provider's horizon honours the heartbeat interval it promised
        at registration, so slow-beating providers are not flapped dead by
        a broker configured for a faster cadence.
        """
        newly_dead: list[NodeId] = []
        for record in self._providers.values():
            horizon = (
                max(self.heartbeat_interval, record.heartbeat_interval)
                * self.heartbeat_tolerance
            )
            if record.alive and now - record.last_heartbeat > horizon:
                record.alive = False
                newly_dead.append(record.provider_id)
        return newly_dead

    # -- snapshots for scheduling -------------------------------------------------

    def alive_providers(self) -> list[ProviderRecord]:
        return [record for record in self._providers.values() if record.alive]

    def records(self) -> list[ProviderRecord]:
        """All records (alive or not), in stable (id) order — the health
        model grades dead providers too."""
        return sorted(self._providers.values(), key=lambda r: r.provider_id)

    def views(self, require_free_slot: bool = False) -> list[ProviderView]:
        """Snapshot of all alive providers, in stable (id) order.

        Stable ordering keeps strategy decisions deterministic for a given
        registry state, which the simulator's reproducibility relies on.
        """
        views = [
            ProviderView(
                provider_id=record.provider_id,
                device_class=record.device_class,
                capacity=record.capacity,
                free_slots=max(
                    0,
                    record.capacity + self.pipeline_depth - record.outstanding,
                ),
                effective_speed=record.effective_speed,
                reliability=record.reliability,
                price=record.price,
                outstanding=record.outstanding,
            )
            for record in sorted(
                self.alive_providers(), key=lambda item: item.provider_id
            )
        ]
        if require_free_slot:
            views = [view for view in views if view.free_slots > 0]
        return views
