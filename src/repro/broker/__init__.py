"""Broker: provider registry, scheduling strategies, and the broker core."""

from .core import BrokerConfig, BrokerCore, BrokerStats
from .registry import ProviderRecord, ProviderRegistry, ProviderView
from .scheduling import (
    FastestFirstStrategy,
    LeastLoadedStrategy,
    QoCStrategy,
    RandomStrategy,
    ReliabilityAwareStrategy,
    RoundRobinStrategy,
    STRATEGIES,
    Strategy,
    make_strategy,
)

__all__ = [
    "BrokerConfig",
    "BrokerCore",
    "BrokerStats",
    "ProviderRecord",
    "ProviderRegistry",
    "ProviderView",
    "FastestFirstStrategy",
    "LeastLoadedStrategy",
    "QoCStrategy",
    "RandomStrategy",
    "ReliabilityAwareStrategy",
    "RoundRobinStrategy",
    "STRATEGIES",
    "Strategy",
    "make_strategy",
]
