"""Broker: provider registry, scheduling strategies, and the broker core."""

from .core import BrokerConfig, BrokerCore, BrokerStats
from .federation import FederationConfig, FederationCore, PeerState
from .journal import (
    CompletionRecord,
    JournalSnapshot,
    ResultCache,
    WorkJournal,
    memo_key_of,
    replay_journal,
)
from .registry import ProviderRecord, ProviderRegistry, ProviderView
from .scheduling import (
    FastestFirstStrategy,
    LeastLoadedStrategy,
    QoCStrategy,
    RandomStrategy,
    ReliabilityAwareStrategy,
    RoundRobinStrategy,
    STRATEGIES,
    Strategy,
    make_strategy,
)

__all__ = [
    "BrokerConfig",
    "BrokerCore",
    "BrokerStats",
    "CompletionRecord",
    "FederationConfig",
    "FederationCore",
    "PeerState",
    "JournalSnapshot",
    "ProviderRecord",
    "ProviderRegistry",
    "ProviderView",
    "ResultCache",
    "WorkJournal",
    "memo_key_of",
    "replay_journal",
    "FastestFirstStrategy",
    "LeastLoadedStrategy",
    "QoCStrategy",
    "RandomStrategy",
    "ReliabilityAwareStrategy",
    "RoundRobinStrategy",
    "STRATEGIES",
    "Strategy",
    "make_strategy",
]
