"""Broker federation: the peer table and gossip bookkeeping.

A federation is a *static peer set*: every broker is configured with the
ids of its peers (and, on TCP, their addresses) and exchanges periodic
:class:`~repro.transport.message.GossipDigest` messages summarising its
registry, load, and health grades.  The digest stream doubles as the
peer failure detector — a peer whose digests stop arriving for
``peer_tolerance`` gossip intervals is declared dead.

:class:`FederationCore` is sans-IO state shared by the simulator and the
TCP deployment, mirroring the broker-core pattern: it never sends
anything itself, it only answers questions (*which peers are alive*,
*who has capacity*, *is gossip due*, *did a peer's epoch change*) for
:class:`~repro.broker.core.BrokerCore`, which turns the answers into
envelopes.

Epochs are incarnation ids: each broker process mints a fresh one at
start.  A peer observing a changed epoch knows the broker restarted and
that everything forwarded to the previous incarnation is gone — the
trigger for reclaiming forwarded work.  (The restarted broker itself
never re-admits peer-forwarded work from its journal: ``admitted``
records carrying an ``origin`` are the origin broker's responsibility.)
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field


@dataclass
class FederationConfig:
    """Tunable federation behaviour (attach to :class:`BrokerCore`)."""

    #: Ids of the peer brokers in the static peer set.
    peers: list[str] = field(default_factory=list)
    #: Seconds between outbound gossip digests.
    gossip_interval: float = 1.0
    #: Gossip intervals of digest silence before a peer is declared dead.
    peer_tolerance: float = 3.0
    #: Forward a submission to a peer with free capacity when no local
    #: provider has a free slot.
    forward_when_saturated: bool = True
    #: Re-send an unacknowledged forward after this many seconds (safe:
    #: forwards are idempotent on the receiving peer).
    forward_resend_interval: float = 5.0
    #: Forwarded tasklets are never forwarded again past this hop count.
    max_hops: int = 1
    #: peer broker id -> journal path.  When a peer dies and this broker
    #: is the deterministic successor (lowest live broker id), it adopts
    #: the dead peer's journal: completions become re-deliverable here
    #: and pending work is re-admitted and executed.
    peer_journals: dict[str, str] = field(default_factory=dict)
    #: Incarnation id override (tests); ``None`` mints a fresh one.
    epoch: str | None = None


@dataclass
class PeerState:
    """Last known view of one peer broker, fed by hellos and digests."""

    broker_id: str
    epoch: str = ""
    alive: bool = False
    last_seen: float = 0.0
    seen_ever: bool = False
    providers_total: int = 0
    providers_alive: int = 0
    free_slots: int = 0
    pending_tasklets: int = 0
    backlog_replicas: int = 0
    grades: dict[str, int] = field(default_factory=dict)

    def to_dict(self, now: float) -> dict:
        return {
            "broker_id": self.broker_id,
            "alive": self.alive,
            "epoch": self.epoch,
            "last_seen_age_s": (
                round(max(0.0, now - self.last_seen), 3) if self.seen_ever else None
            ),
            "providers_alive": self.providers_alive,
            "providers_total": self.providers_total,
            "free_slots": self.free_slots,
            "pending_tasklets": self.pending_tasklets,
            "backlog_replicas": self.backlog_replicas,
            "grades": dict(self.grades),
        }


#: Transitions :meth:`FederationCore.observe` reports to the broker core.
PEER_CAME_UP = "up"
PEER_EPOCH_CHANGED = "epoch_changed"


class FederationCore:
    """Peer table + gossip timing for one broker (see module docstring)."""

    def __init__(self, node_id: str, config: FederationConfig | None = None):
        self.node_id = node_id
        self.config = config or FederationConfig()
        self.epoch = self.config.epoch or uuid.uuid4().hex[:12]
        self.peers: dict[str, PeerState] = {
            peer_id: PeerState(broker_id=peer_id)
            for peer_id in self.config.peers
            if peer_id != node_id
        }
        self._last_gossip: float | None = None

    # -- observations --------------------------------------------------------

    def observe(self, broker_id: str, epoch: str, now: float) -> list[str]:
        """Fold one peer sighting (hello or digest) into the table.

        Returns the transitions it caused: :data:`PEER_CAME_UP` when a
        dead/unseen peer became alive, :data:`PEER_EPOCH_CHANGED` when a
        known peer returned under a new incarnation (its previous
        incarnation's state — including work forwarded to it — is gone).
        Unknown peers are added defensively so asymmetric configurations
        still converge.
        """
        if broker_id == self.node_id:
            return []
        peer = self.peers.get(broker_id)
        if peer is None:
            peer = PeerState(broker_id=broker_id)
            self.peers[broker_id] = peer
        transitions = []
        if peer.seen_ever and peer.epoch and epoch and peer.epoch != epoch:
            transitions.append(PEER_EPOCH_CHANGED)
        if not peer.alive:
            transitions.append(PEER_CAME_UP)
        peer.alive = True
        peer.seen_ever = True
        peer.last_seen = now
        if epoch:
            peer.epoch = epoch
        return transitions

    def update_load(
        self,
        broker_id: str,
        providers_total: int,
        providers_alive: int,
        free_slots: int,
        pending_tasklets: int,
        backlog_replicas: int,
        grades: dict[str, int],
    ) -> None:
        """Fold one digest's load/health summary into the peer table."""
        peer = self.peers.get(broker_id)
        if peer is None:
            return
        peer.providers_total = providers_total
        peer.providers_alive = providers_alive
        peer.free_slots = free_slots
        peer.pending_tasklets = pending_tasklets
        peer.backlog_replicas = backlog_replicas
        peer.grades = dict(grades)

    # -- timing ---------------------------------------------------------------

    def tick(self, now: float) -> tuple[list[str], bool]:
        """Advance timers: ``(newly dead peer ids, gossip due?)``."""
        horizon = self.config.peer_tolerance * self.config.gossip_interval
        dead = []
        for peer in self.peers.values():
            if peer.alive and now - peer.last_seen > horizon:
                peer.alive = False
                dead.append(peer.broker_id)
        gossip_due = (
            self._last_gossip is None
            or now - self._last_gossip >= self.config.gossip_interval
        )
        if gossip_due:
            self._last_gossip = now
        return dead, gossip_due

    # -- queries ---------------------------------------------------------------

    def peer_ids(self) -> list[str]:
        return sorted(self.peers)

    def alive_peers(self) -> list[PeerState]:
        return [peer for peer in self.peers.values() if peer.alive]

    def choose_peer(self, exclude: set[str] | None = None) -> str | None:
        """Best forwarding target: most free capacity, ties by id.

        Only peers currently alive *and* advertising free slots qualify
        (routing on the gossiped health/load view, not blind
        round-robin); ``None`` means keep the work local.
        """
        exclude = exclude or set()
        candidates = [
            peer
            for peer in self.peers.values()
            if peer.alive and peer.free_slots > 0 and peer.broker_id not in exclude
        ]
        if not candidates:
            return None
        candidates.sort(key=lambda peer: (-peer.free_slots, peer.broker_id))
        return candidates[0].broker_id

    def successor_of(self, dead_broker_id: str) -> str:
        """Deterministic adopter of a dead peer's journal.

        The lowest broker id among the live candidates (this broker and
        its currently-alive peers); every surviving broker computes the
        same answer from its own view, so exactly one adopts.
        """
        candidates = [self.node_id] + [
            peer.broker_id for peer in self.alive_peers()
            if peer.broker_id != dead_broker_id
        ]
        return min(candidates)
