"""Provider-selection strategies.

A strategy answers one question: *given the current provider pool, which
providers should run the next ``n`` replicas of this Tasklet?*  The broker
invokes it once per issue/re-issue decision.

All strategies are deterministic given the registry snapshot and their own
internal state (round-robin cursor, seeded RNG), which keeps simulation
runs reproducible.

The QoC-composite strategy — the paper's scheduling contribution as we
reconstruct it — dispatches on the Tasklet's goals:

* ``speed``      → fastest-first by effective (learned) speed;
* ``redundancy`` → replicas placed on *distinct* providers, spread across
  device classes when possible (anti-correlation of failures);
* ``cost_ceiling`` → providers above the ceiling are filtered out;
* otherwise     → least-loaded (load balancing).
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence

from ..common.ids import NodeId
from ..core.qoc import QoC
from .registry import ProviderView


class Strategy(Protocol):
    """Interface every scheduling strategy implements."""

    name: str

    def select(
        self, views: Sequence[ProviderView], n: int, qoc: QoC
    ) -> list[NodeId]:
        """Pick up to ``n`` providers for replicas of one Tasklet.

        Fewer than ``n`` may be returned when the pool is small; the
        broker then queues the remaining replicas until capacity appears.
        Implementations must not return the same provider twice for one
        call when ``n > 1`` replicas are requested (replica independence).
        """
        ...


def _apply_cost_filter(
    views: Sequence[ProviderView], qoc: QoC
) -> list[ProviderView]:
    if qoc.cost_ceiling is None:
        return list(views)
    return [view for view in views if view.price <= qoc.cost_ceiling]


def _with_free_slots(views: Sequence[ProviderView]) -> list[ProviderView]:
    return [view for view in views if view.free_slots > 0]


class RandomStrategy:
    """Uniformly random placement (the oblivious baseline in F4)."""

    name = "random"

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def select(
        self, views: Sequence[ProviderView], n: int, qoc: QoC
    ) -> list[NodeId]:
        candidates = _with_free_slots(_apply_cost_filter(views, qoc))
        if not candidates:
            return []
        count = min(n, len(candidates))
        chosen = self._rng.sample(candidates, count)
        return [view.provider_id for view in chosen]


class RoundRobinStrategy:
    """Cycle through providers in id order (classic fair baseline)."""

    name = "round_robin"

    def __init__(self):
        self._cursor = 0

    def select(
        self, views: Sequence[ProviderView], n: int, qoc: QoC
    ) -> list[NodeId]:
        candidates = _with_free_slots(_apply_cost_filter(views, qoc))
        if not candidates:
            return []
        count = min(n, len(candidates))
        chosen = []
        for offset in range(count):
            chosen.append(candidates[(self._cursor + offset) % len(candidates)])
        self._cursor = (self._cursor + count) % max(1, len(candidates))
        return [view.provider_id for view in chosen]


class LeastLoadedStrategy:
    """Fill the emptiest providers first (load balancing)."""

    name = "least_loaded"

    def select(
        self, views: Sequence[ProviderView], n: int, qoc: QoC
    ) -> list[NodeId]:
        candidates = _with_free_slots(_apply_cost_filter(views, qoc))
        # Relative load; capacity>=1 is guaranteed by registration.
        candidates.sort(key=lambda view: (view.outstanding / view.capacity, view.provider_id))
        return [view.provider_id for view in candidates[:n]]


class FastestFirstStrategy:
    """Benchmark/EWMA-aware placement: highest effective speed first.

    This is the heterogeneity-aware strategy the Tasklet system uses for
    the ``speed`` QoC goal.  Ties break toward lower load so a single fast
    machine does not absorb the whole burst.
    """

    name = "fastest_first"

    def select(
        self, views: Sequence[ProviderView], n: int, qoc: QoC
    ) -> list[NodeId]:
        candidates = _with_free_slots(_apply_cost_filter(views, qoc))
        candidates.sort(
            key=lambda view: (
                -view.effective_speed,
                view.outstanding / view.capacity,
                view.provider_id,
            )
        )
        return [view.provider_id for view in candidates[:n]]


class ReliabilityAwareStrategy:
    """Rank by expected useful speed: speed × observed success ratio.

    A fast provider that loses half its executions to churn is worth as
    much as a half-speed stable one; this strategy encodes exactly that
    trade-off.
    """

    name = "reliability_aware"

    def select(
        self, views: Sequence[ProviderView], n: int, qoc: QoC
    ) -> list[NodeId]:
        candidates = _with_free_slots(_apply_cost_filter(views, qoc))
        candidates.sort(
            key=lambda view: (
                -view.effective_speed * view.reliability,
                view.provider_id,
            )
        )
        return [view.provider_id for view in candidates[:n]]


class QoCStrategy:
    """Goal-dispatching composite (the default broker strategy).

    Replica placement additionally spreads across device classes: replicas
    of one Tasklet land on providers of *different* classes when the pool
    allows, reducing correlated failures (e.g. all phones leaving WiFi).
    """

    name = "qoc"

    def __init__(self):
        self._fast = FastestFirstStrategy()
        self._balanced = LeastLoadedStrategy()

    def select(
        self, views: Sequence[ProviderView], n: int, qoc: QoC
    ) -> list[NodeId]:
        inner = self._fast if qoc.speed else self._balanced
        ranked = inner.select(views, len(views), qoc)
        if n == 1 or len(ranked) <= 1:
            return ranked[:n]
        # Spread replicas across device classes, preserving rank order.
        by_id = {view.provider_id: view for view in views}
        chosen: list[NodeId] = []
        used_classes: set[str] = set()
        remaining = list(ranked)
        while remaining and len(chosen) < n:
            pick = next(
                (
                    provider_id
                    for provider_id in remaining
                    if by_id[provider_id].device_class not in used_classes
                ),
                remaining[0],
            )
            chosen.append(pick)
            used_classes.add(by_id[pick].device_class)
            remaining.remove(pick)
            if len(used_classes) >= len({view.device_class for view in views}):
                used_classes.clear()  # all classes used once; start over
        return chosen


#: Strategy registry for configuration by name (benchmarks sweep this).
STRATEGIES = {
    "random": RandomStrategy,
    "round_robin": RoundRobinStrategy,
    "least_loaded": LeastLoadedStrategy,
    "fastest_first": FastestFirstStrategy,
    "reliability_aware": ReliabilityAwareStrategy,
    "qoc": QoCStrategy,
}


def make_strategy(name: str, seed: int = 0) -> Strategy:
    """Instantiate a strategy by registry name."""
    if name not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {name!r}; known: {', '.join(sorted(STRATEGIES))}"
        )
    strategy_class = STRATEGIES[name]
    if strategy_class is RandomStrategy:
        return strategy_class(seed=seed)
    return strategy_class()
