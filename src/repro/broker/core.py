"""The broker: sans-IO mediation between consumers and providers.

:class:`BrokerCore` is a pure state machine: every inbound
:class:`~repro.transport.message.Envelope` (and every timer ``tick``)
returns the list of outbound envelopes to deliver.  It performs no IO and
reads time only through the injected clock, so the identical broker runs
unchanged inside the discrete-event simulator and behind the real TCP
server.

Responsibilities:

* provider membership and heartbeat-based failure detection;
* admission of Tasklets and replica placement through a pluggable
  scheduling strategy;
* the QoC machinery: redundant execution with majority voting, re-issue
  of failed/lost/timed-out executions within the attempt budget, deadline
  enforcement, cost filtering (inside the strategy);
* replica queueing when the pool is saturated, drained as capacity frees;
* durability: admissions and terminal outcomes are journalled (when a
  :class:`~repro.broker.journal.WorkJournal` is attached), pending work is
  re-admitted after a restart, and identical resubmissions are answered
  from journalled completions or the result-memoization cache instead of
  being re-executed (Tasklets are deterministic and side-effect-free).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..common.clock import Clock
from ..common.errors import TaskletError, WorkflowSpecError
from ..common.ids import ExecutionId, IdGenerator, NodeId, TaskletId
from ..core.qoc import QoC
from ..core.results import ExecutionRecord, ExecutionStatus, VoteCollector
from ..core.tasklet import Tasklet
from ..dag.scheduler import DONE as NODE_DONE
from ..dag.scheduler import FAILED as NODE_FAILED
from ..dag.scheduler import RUNNING as NODE_RUNNING
from ..dag.scheduler import DagScheduler
from ..dag.spec import WorkflowSpec
from ..obs import events as ev
from ..obs.health import (
    GRADE_RANK,
    HealthMetrics,
    HealthModel,
    StragglerWatchdog,
    overall_status,
)
from ..obs.telemetry import (
    BrokerMetrics,
    FederationMetrics,
    Telemetry,
    WorkflowMetrics,
)
from ..obs.trace import TraceContext
from .accounting import CostLedger
from .federation import (
    FederationConfig,
    FederationCore,
    PEER_CAME_UP,
    PEER_EPOCH_CHANGED,
)
from .journal import (
    CompletionRecord,
    ResultCache,
    WorkJournal,
    memo_key_of,
    replay_journal,
)
from .registry import ProviderRegistry
from .scheduling import QoCStrategy, Strategy
from ..transport.message import (
    AssignExecution,
    BROKER_ADDRESS,
    CancelExecution,
    Envelope,
    ExecutionRejected,
    ExecutionResult,
    ForwardAck,
    ForwardComplete,
    ForwardTasklet,
    GossipDigest,
    Heartbeat,
    HeartbeatAck,
    MessageBody,
    PeerHello,
    REASON_UNKNOWN_PROVIDER,
    RegisterAck,
    RegisterProvider,
    SubmitAck,
    SubmitTasklet,
    SubmitWorkflow,
    TaskletComplete,
    Unregister,
    WorkflowAck,
    WorkflowComplete,
    WorkflowUpdate,
    body_of,
)


@dataclass
class BrokerConfig:
    """Tunable broker behaviour."""

    heartbeat_interval: float = 1.0
    heartbeat_tolerance: float = 3.0  # intervals of silence before "dead"
    execution_timeout: float | None = 30.0  # per-execution re-issue horizon
    max_queued_replicas: int = 100_000
    #: When False, scheduling trusts self-reported benchmark scores and
    #: never learns from observed execution rates (ablation A1).
    learn_speed: bool = True
    #: Executions kept in flight per provider beyond its slots; hides the
    #: result->assign network round trip for fine-grained Tasklets
    #: (ablation A5).  0 = assign only to genuinely free slots.
    pipeline_depth: int = 0
    #: Straggler watchdog: alert when an outstanding execution exceeds
    #: this multiple of its expected runtime (learned program profile /
    #: provider speed).  Advisory only; re-issue policy is unchanged.
    straggler_multiple: float = 4.0
    #: Floor on expected runtime, absorbing scheduling/transport jitter
    #: for very short programs.
    straggler_min_expected_s: float = 0.05
    #: Serve repeated identical submissions (same program fingerprint,
    #: entry, args, seed, fuel) from the result cache with zero
    #: executions issued.  Safe because Tasklets are deterministic and
    #: side-effect-free; disable to force every submission to execute.
    memoize_results: bool = True
    #: LRU capacity of the result-memoization cache (<= 0 disables it
    #: regardless of ``memoize_results``).
    result_cache_size: int = 4096
    #: Completed-tasklet records retained in memory for idempotent
    #: resubmit re-delivery (LRU by completion recency).
    completed_retention: int = 8192


@dataclass
class BrokerStats:
    """Counters the benchmark harness reads after a run."""

    tasklets_submitted: int = 0
    tasklets_completed: int = 0
    tasklets_failed: int = 0
    executions_issued: int = 0
    executions_succeeded: int = 0
    executions_failed: int = 0
    executions_timed_out: int = 0
    executions_lost: int = 0
    replicas_queued: int = 0
    providers_failed: int = 0
    #: Replicas dropped because the scheduling backlog was full (the
    #: owning tasklet is failed fast instead of stranded).
    replicas_overflowed: int = 0
    #: Pending tasklets re-admitted from the work journal at startup.
    tasklets_recovered: int = 0
    #: Journalled completions re-delivered on idempotent resubmit.
    completions_redelivered: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    #: Automatic in-place journal rewrites (threshold-triggered).
    journal_compactions: int = 0
    # -- federation ---------------------------------------------------------
    #: Submissions placed on a peer broker instead of the local pool.
    tasklets_forwarded: int = 0
    #: Forwards admitted from peer brokers (executed here on their behalf).
    forwards_received: int = 0
    #: Forwarded tasklets whose terminal outcome came back from a peer.
    forwards_completed: int = 0
    #: Forwarded tasklets taken back (peer died/restarted/rejected).
    forwards_reclaimed: int = 0
    #: Pending tasklets adopted from a dead peer's journal.
    tasklets_adopted: int = 0
    #: Completions adopted from a dead peer's journal.
    completions_adopted: int = 0
    # -- workflows ----------------------------------------------------------
    workflows_submitted: int = 0
    workflows_completed: int = 0
    workflows_failed: int = 0
    #: In-flight workflows resumed from the journal at startup.
    workflows_recovered: int = 0
    #: Workflow nodes that reached a terminal state (including memoized).
    workflow_nodes_completed: int = 0
    #: Workflow nodes short-circuited by the result cache or a journalled
    #: completion: zero executions issued.
    workflow_nodes_memoized: int = 0


@dataclass
class _Outstanding:
    execution_id: ExecutionId
    provider_id: NodeId
    issued_at: float
    #: Telemetry context of the ``broker.assign`` span (None when disabled).
    trace_ctx: TraceContext | None = None


@dataclass
class _TaskletState:
    """Broker-side lifecycle of one Tasklet.

    ``key`` is the broker-internal identity ``consumer_id/tasklet_id``:
    tasklet ids only need to be unique *per consumer*, never globally.
    """

    key: str
    tasklet_id: TaskletId
    consumer_id: NodeId
    qoc: QoC
    program: dict
    program_fingerprint: str
    entry: str
    args: list
    seed: int
    fuel: int
    submitted_at: float
    collector: VoteCollector
    outstanding: dict[ExecutionId, _Outstanding] = field(default_factory=dict)
    #: Providers whose execution of this tasklet already failed; re-issue
    #: avoids them while alternatives exist.
    failed_providers: set[NodeId] = field(default_factory=set)
    pending_replicas: int = 0  # replicas wanted but not yet placeable
    issued: int = 0  # total executions ever issued
    done: bool = False
    #: Computation identity for result memoization (None = not memoizable).
    memo_key: str | None = None
    #: Federation: broker this tasklet was forwarded *from* (we execute on
    #: its behalf and return a ForwardComplete there instead of talking to
    #: the consumer)...
    origin_broker: NodeId | None = None
    #: ...or the peer it was forwarded *to* (nothing runs locally until
    #: the forward completes or is reclaimed).
    forwarded_to: NodeId | None = None
    forwarded_at: float = 0.0
    forward_acked: bool = False
    forward_last_sent: float = 0.0
    #: The consumer resubmitted this forwarded-in tasklet directly (it
    #: failed over to this broker while the work was in flight), so the
    #: outcome must be delivered to the consumer as well as the origin.
    direct_consumer: bool = False
    #: Telemetry contexts: the ``broker.tasklet`` span and the consumer's
    #: root context it parents on (both None when telemetry is disabled).
    trace_ctx: TraceContext | None = None
    trace_parent: TraceContext | None = None
    #: Context of the in-flight ``broker.forward`` span; the peer broker
    #: parents its ``broker.tasklet`` on it, keeping forwarded executions
    #: inside the origin's trace.
    forward_trace_ctx: TraceContext | None = None

    @property
    def budget(self) -> int:
        return self.qoc.redundancy * self.qoc.max_attempts

    @property
    def budget_left(self) -> int:
        return max(0, self.budget - self.issued - self.pending_replicas)


@dataclass
class _WorkflowState:
    """Broker-side lifecycle of one DAG workflow.

    ``key`` is ``consumer_id/workflow_id``; node executions live in the
    ordinary ``_tasklets`` table under ``consumer_id/workflow_id:node_id``
    (the tasklet id embeds the graph), mapped back here via ``_wf_nodes``.
    """

    key: str
    workflow_id: str
    consumer_id: NodeId
    spec: WorkflowSpec
    scheduler: DagScheduler
    submitted_at: float
    #: Content hash of the spec — idempotent-resubmit identity.
    spec_fingerprint: str
    nodes_memoized: int = 0
    done: bool = False
    #: Telemetry contexts: the ``broker.workflow`` span and the consumer's
    #: root ``workflow`` context it parents on (None when disabled).
    trace_ctx: TraceContext | None = None
    trace_parent: TraceContext | None = None
    #: Per released node: the ``wf.node`` span context + release time,
    #: popped when the node reaches a terminal state.
    node_traces: dict[str, tuple[TraceContext, float]] = field(
        default_factory=dict
    )


class BrokerCore:
    """One broker node (see module docstring)."""

    def __init__(
        self,
        clock: Clock,
        strategy: Strategy | None = None,
        config: BrokerConfig | None = None,
        node_id: NodeId = BROKER_ADDRESS,
        id_generator: IdGenerator | None = None,
        telemetry: Telemetry | None = None,
        journal: WorkJournal | None = None,
        federation: FederationConfig | None = None,
    ):
        self.node_id = node_id
        self.clock = clock
        self.strategy = strategy or QoCStrategy()
        self.config = config or BrokerConfig()
        self.ids = id_generator or IdGenerator()
        self.telemetry = telemetry
        self._metrics = BrokerMetrics(telemetry.registry) if telemetry else None
        self._tracer = telemetry.tracer if telemetry else None
        self._events = telemetry.events if telemetry else None
        #: Cluster health model + straggler watchdog; only maintained when
        #: telemetry is enabled (the disabled hot path stays one check).
        self.health: HealthModel | None = (
            HealthModel(
                heartbeat_interval=self.config.heartbeat_interval,
                heartbeat_tolerance=self.config.heartbeat_tolerance,
                watchdog=StragglerWatchdog(
                    multiple=self.config.straggler_multiple,
                    min_expected_s=self.config.straggler_min_expected_s,
                ),
            )
            if telemetry
            else None
        )
        self._health_metrics = HealthMetrics(telemetry.registry) if telemetry else None
        self.registry = ProviderRegistry(
            heartbeat_interval=self.config.heartbeat_interval,
            heartbeat_tolerance=self.config.heartbeat_tolerance,
            learn_speed=self.config.learn_speed,
            pipeline_depth=self.config.pipeline_depth,
        )
        self.stats = BrokerStats()
        self.ledger = CostLedger()
        self._tasklets: dict[str, _TaskletState] = {}
        self._by_execution: dict[ExecutionId, str] = {}
        #: Tasklet keys with queued replicas, in FIFO order of first queueing.
        self._backlog: list[str] = []
        #: Durability: journal (may be None), terminal outcomes by tasklet
        #: key (LRU-bounded, serves idempotent resubmits), and the result
        #: memoization cache by computation identity.
        self.journal = journal
        self._completed: "OrderedDict[str, CompletionRecord]" = OrderedDict()
        self.result_cache: ResultCache | None = (
            ResultCache(self.config.result_cache_size)
            if self.config.memoize_results and self.config.result_cache_size > 0
            else None
        )
        #: Federation peer table (None = standalone broker, zero overhead).
        self.federation: FederationCore | None = (
            FederationCore(str(node_id), federation)
            if federation is not None
            else None
        )
        self._fed_metrics = (
            FederationMetrics(telemetry.registry)
            if telemetry and self.federation is not None
            else None
        )
        #: DAG workflows: graph state by workflow key, node-key -> owning
        #: (workflow key, node id), and terminal outcomes (LRU) serving
        #: idempotent workflow resubmits.
        self._workflows: dict[str, _WorkflowState] = {}
        self._wf_nodes: dict[str, tuple[str, str]] = {}
        self._wf_completed: "OrderedDict[str, dict]" = OrderedDict()
        self._wf_metrics = (
            WorkflowMetrics(telemetry.registry) if telemetry else None
        )
        if journal is not None:
            self._recover(journal)

    # -- message dispatch ----------------------------------------------------

    def handle(self, envelope: Envelope) -> list[Envelope]:
        """Process one inbound envelope; returns outbound envelopes."""
        body = body_of(envelope)
        if isinstance(body, RegisterProvider):
            out = self._on_register(envelope.src, body)
        elif isinstance(body, Unregister):
            out = self._on_unregister(body)
        elif isinstance(body, Heartbeat):
            out = self._on_heartbeat(body)
        elif isinstance(body, SubmitTasklet):
            out = self._on_submit(envelope.src, body, envelope.trace)
        elif isinstance(body, SubmitWorkflow):
            out = self._on_submit_workflow(envelope.src, body, envelope.trace)
        elif isinstance(body, ExecutionResult):
            out = self._on_result(body)
        elif isinstance(body, ExecutionRejected):
            out = self._on_rejected(body)
        elif self.federation is not None and isinstance(body, PeerHello):
            out = self._on_peer_hello(body)
        elif self.federation is not None and isinstance(body, GossipDigest):
            out = self._on_gossip(body)
        elif self.federation is not None and isinstance(body, ForwardTasklet):
            out = self._on_forward(body, envelope.trace)
        elif self.federation is not None and isinstance(body, ForwardAck):
            out = self._on_forward_ack(body)
        elif self.federation is not None and isinstance(body, ForwardComplete):
            out = self._on_forward_complete(body)
        else:
            # Unknown-but-registered types addressed to us are ignored
            # rather than fatal: forward compatibility with newer peers.
            out = []
        # Any inbound message may have freed capacity (a result, a
        # registration); give queued replicas a chance immediately rather
        # than waiting for the next tick.
        out.extend(self._drain_backlog())
        return out

    def tick(self) -> list[Envelope]:
        """Periodic maintenance: failure detection, timeouts, backlog."""
        now = self.clock.now()
        out: list[Envelope] = []
        for provider_id in self.registry.detect_failures(now):
            self.stats.providers_failed += 1
            if self._metrics is not None:
                self._metrics.providers_failed.inc()
            if self._events is not None:
                self._events.record(
                    ev.NODE_DEAD, node=str(provider_id), ts=now
                )
            out.extend(self._fail_provider_executions(provider_id))
        out.extend(self._expire_executions(now))
        if self.federation is not None:
            out.extend(self._federation_tick(now))
        out.extend(self._drain_backlog())
        if self._metrics is not None:
            # Gauges are sampled once per tick, not per message, so the
            # O(tasklets) backlog sum stays off the message hot path.
            self._metrics.pending_tasklets.set(len(self._tasklets))
            self._metrics.backlog_replicas.set(
                sum(state.pending_replicas for state in self._tasklets.values())
            )
            self._metrics.providers_alive.set(len(self.registry.alive_providers()))
        self._run_watchdog(now)
        return out

    # -- membership handlers ----------------------------------------------------

    def _on_register(self, src: NodeId, body: RegisterProvider) -> list[Envelope]:
        out: list[Envelope] = []
        was_known = NodeId(body.provider_id) in self.registry
        try:
            self.registry.register(
                provider_id=NodeId(body.provider_id),
                device_class=body.device_class,
                capacity=body.capacity,
                benchmark_score=body.benchmark_score,
                price=body.price,
                now=self.clock.now(),
                heartbeat_interval=body.heartbeat_interval,
            )
        except TaskletError as exc:
            ack = RegisterAck(accepted=False, reason=str(exc))
            out.append(self._send(ack, NodeId(body.provider_id)))
            return out
        out.append(self._send(RegisterAck(accepted=True), NodeId(body.provider_id)))
        now = self.clock.now()
        if self._events is not None:
            self._events.record(
                ev.NODE_FLAP if was_known else ev.NODE_JOIN,
                node=body.provider_id,
                ts=now,
                device_class=body.device_class,
                capacity=body.capacity,
                benchmark_score=body.benchmark_score,
            )
        if was_known and self.health is not None:
            if self.health.record_flap(body.provider_id, now):
                self._raise_alert(
                    ev.FLAPPING_ALERT,
                    node=body.provider_id,
                    ts=now,
                    flaps=self.health.flap_count(body.provider_id),
                    window_s=self.health.flap_window_s,
                )
        if was_known:
            # A provider we already know re-registering means it crashed
            # and came back: everything assigned to its previous
            # incarnation is lost.  Failing those executions now (instead
            # of waiting for the execution timeout) is what keeps fast
            # churn — "flapping" shorter than the heartbeat detection
            # window — recoverable.  The fresh registration above means
            # re-issue may legitimately pick this same provider again.
            out.extend(self._fail_provider_executions(NodeId(body.provider_id)))
        out.extend(self._drain_backlog())
        return out

    def _on_unregister(self, body: Unregister) -> list[Envelope]:
        provider_id = NodeId(body.provider_id)
        self.registry.unregister(provider_id)
        if self._events is not None:
            self._events.record(
                ev.NODE_LEAVE, node=body.provider_id, ts=self.clock.now()
            )
        return self._fail_provider_executions(provider_id)

    def _on_heartbeat(self, body: Heartbeat) -> list[Envelope]:
        now = self.clock.now()
        provider_id = NodeId(body.provider_id)
        if self._metrics is not None:
            record = self.registry.get(provider_id)
            if record is not None and record.last_heartbeat > 0:
                self._metrics.heartbeat_gap.observe(now - record.last_heartbeat)
        known = self.registry.heartbeat(provider_id, now)
        if not known:
            # A provider we do not know (e.g. we restarted): ask it to
            # re-register by rejecting the heartbeat.
            return [
                self._send(
                    RegisterAck(accepted=False, reason=REASON_UNKNOWN_PROVIDER),
                    provider_id,
                )
            ]
        out: list[Envelope] = []
        if body.sent_at:
            # Timestamped heartbeats ask for an echo (RTT telemetry).
            out.append(
                self._send(
                    HeartbeatAck(
                        provider_id=body.provider_id, echo_sent_at=body.sent_at
                    ),
                    provider_id,
                )
            )
        out.extend(self._drain_backlog())
        return out

    # -- submission -----------------------------------------------------------

    def _on_submit(
        self,
        src: NodeId,
        body: SubmitTasklet,
        trace: dict[str, str] | None = None,
    ) -> list[Envelope]:
        self.stats.tasklets_submitted += 1
        if self._metrics is not None:
            self._metrics.tasklets_submitted.inc()
        try:
            tasklet = Tasklet.from_dict(body.tasklet)
        except (TaskletError, KeyError, ValueError) as exc:
            ack = SubmitAck(
                tasklet_id=str(body.tasklet.get("tasklet_id", "?")),
                accepted=False,
                reason=f"malformed tasklet: {exc}",
            )
            return [self._send(ack, src)]
        if tasklet.qoc.local_only:
            ack = SubmitAck(
                tasklet_id=tasklet.tasklet_id,
                accepted=False,
                reason="local_only tasklets must be executed by the consumer library",
            )
            return [self._send(ack, src)]
        key = f"{src}/{tasklet.tasklet_id}"
        completed = self._completed.get(key)
        if completed is not None:
            # Idempotent resubmit of an already-completed tasklet (the
            # consumer reconnected, or the broker restarted between the
            # result and the consumer seeing it): re-deliver the
            # journalled outcome, execute nothing.
            return self._redeliver(completed, src)
        existing = self._tasklets.get(key)
        if existing is not None:
            fingerprint = body.tasklet.get("program_fingerprint", "")
            if (
                existing.program_fingerprint == fingerprint
                and existing.entry == tasklet.entry
                and existing.args == tasklet.args
                and existing.seed == tasklet.seed
                and existing.fuel == tasklet.fuel
            ):
                # Idempotent resubmit of in-flight work (e.g. after a
                # consumer reconnect): re-ack, keep the running attempt,
                # and it will complete to the resubmitting consumer.
                if existing.origin_broker is not None:
                    # The work arrived here via a peer forward, but the
                    # consumer is now talking to this broker directly
                    # (failover after the origin died): deliver the
                    # outcome to both — the origin gets its
                    # ForwardComplete for bookkeeping if it is alive.
                    existing.direct_consumer = True
                ack = SubmitAck(tasklet_id=tasklet.tasklet_id, accepted=True)
                return [self._send(ack, src)]
            ack = SubmitAck(
                tasklet_id=tasklet.tasklet_id,
                accepted=False,
                reason="duplicate tasklet id",
            )
            return [self._send(ack, src)]

        now = self.clock.now()
        memo = memo_key_of(
            body.tasklet.get("program_fingerprint", ""),
            tasklet.entry,
            tasklet.args,
            tasklet.seed,
            tasklet.fuel,
        )
        if self.result_cache is not None and memo is not None:
            hit = self.result_cache.get(memo)
            if hit is not None:
                return self._complete_from_cache(key, tasklet, src, hit, memo, now)
            self.stats.memo_misses += 1
            if self._metrics is not None:
                self._metrics.memo_cache.labels(result="miss").inc()

        state = self._build_state(src, tasklet, body.tasklet, now)
        state.memo_key = memo
        if self._tracer is not None:
            parent = TraceContext.from_dict(trace)
            state.trace_parent = parent
            state.trace_ctx = (
                self._tracer.child(parent) if parent else self._tracer.start_trace()
            )
        self._tasklets[key] = state
        if self.journal is not None:
            self.journal.record_admitted(key, str(src), body.tasklet, ts=now)
            if self._metrics is not None:
                self._metrics.journal_records.labels(kind="admitted").inc()
        out = [self._send(SubmitAck(tasklet_id=tasklet.tasklet_id, accepted=True), src)]
        peer = self._forward_target()
        if peer is not None:
            # The admission is journalled (ours to survive) but placement
            # goes to the peer: no local provider has a free slot and the
            # gossip view says this peer does.
            out.append(self._forward(state, peer, now))
        else:
            out.extend(self._issue(state, tasklet.qoc.redundancy))
        return out

    def _forward_target(self) -> str | None:
        """Peer to forward a fresh admission to, or ``None`` (keep local)."""
        if (
            self.federation is None
            or not self.federation.config.forward_when_saturated
        ):
            return None
        if self.registry.views(require_free_slot=True):
            return None  # local capacity exists; no reason to forward
        return self.federation.choose_peer()

    def _build_state(
        self, src: NodeId, tasklet: Tasklet, tasklet_dict: dict, now: float
    ) -> _TaskletState:
        return _TaskletState(
            key=f"{src}/{tasklet.tasklet_id}",
            tasklet_id=tasklet.tasklet_id,
            consumer_id=src,
            qoc=tasklet.qoc,
            program=tasklet_dict["program"],
            program_fingerprint=tasklet_dict.get("program_fingerprint", ""),
            entry=tasklet.entry,
            args=tasklet.args,
            seed=tasklet.seed,
            fuel=tasklet.fuel,
            submitted_at=now,
            collector=VoteCollector(tasklet.qoc.redundancy),
        )

    def _complete_from_cache(
        self,
        key: str,
        tasklet: Tasklet,
        src: NodeId,
        hit: CompletionRecord,
        memo: str,
        now: float,
    ) -> list[Envelope]:
        """Serve a submission from the result cache: zero executions."""
        self.stats.memo_hits += 1
        self.stats.tasklets_completed += 1
        if self._metrics is not None:
            self._metrics.memo_cache.labels(result="hit").inc()
            self._metrics.tasklets_completed.labels(outcome="memoized").inc()
        if self._events is not None:
            self._events.record(
                ev.MEMO_HIT,
                node=str(src),
                ts=now,
                tasklet_id=str(tasklet.tasklet_id),
                memo_key=memo,
            )
        completion = CompletionRecord(
            key=key,
            tasklet_id=str(tasklet.tasklet_id),
            consumer_id=str(src),
            ok=True,
            value=hit.value,
            attempts=0,
            cost=0.0,
            memo_key=memo,
            completed_at=now,
        )
        self._remember_completion(completion)
        return [
            self._send(SubmitAck(tasklet_id=tasklet.tasklet_id, accepted=True), src),
            self._send(
                TaskletComplete(
                    tasklet_id=tasklet.tasklet_id,
                    ok=True,
                    value=hit.value,
                    attempts=0,
                    cost=0.0,
                    executions=[],
                ),
                src,
            ),
        ]

    def _redeliver(
        self, completion: CompletionRecord, src: NodeId
    ) -> list[Envelope]:
        """Answer a resubmit of completed work from the journalled outcome."""
        self.stats.completions_redelivered += 1
        if self._metrics is not None:
            self._metrics.completions_redelivered.inc()
        if self._events is not None:
            self._events.record(
                ev.RESULT_REDELIVERED,
                node=str(src),
                ts=self.clock.now(),
                tasklet_id=completion.tasklet_id,
                ok=completion.ok,
            )
        return [
            self._send(
                SubmitAck(tasklet_id=completion.tasklet_id, accepted=True), src
            ),
            self._send(
                TaskletComplete(
                    tasklet_id=completion.tasklet_id,
                    ok=completion.ok,
                    value=completion.value,
                    error=completion.error,
                    attempts=completion.attempts,
                    cost=completion.cost,
                    executions=[],
                ),
                src,
            ),
        ]

    def _remember_completion(
        self, completion: CompletionRecord, journal_write: bool = True
    ) -> None:
        """Index (and optionally journal) one terminal outcome."""
        self._completed[completion.key] = completion
        self._completed.move_to_end(completion.key)
        while len(self._completed) > max(1, self.config.completed_retention):
            self._completed.popitem(last=False)
        if (
            completion.ok
            and completion.memo_key
            and self.result_cache is not None
        ):
            self.result_cache.put(completion.memo_key, completion)
        if journal_write and self.journal is not None:
            self.journal.record_complete(completion)
            if self._metrics is not None:
                self._metrics.journal_records.labels(kind="complete").inc()
            self._maybe_compact_journal()

    def _maybe_compact_journal(self) -> None:
        """Auto-compact the journal when its thresholds are crossed.

        Called after completion writes (the moment ``admitted`` records
        become droppable) and never while holding the journal lock —
        ``compact`` takes it itself.
        """
        if self.journal is None:
            return
        stats = self.journal.maybe_compact()
        if stats is None:
            return
        self.stats.journal_compactions += 1
        if self._metrics is not None:
            self._metrics.journal_compactions.inc()
        if self._events is not None:
            self._events.record(
                ev.JOURNAL_COMPACTED,
                node=str(self.node_id),
                ts=self.clock.now(),
                **stats,
            )

    # -- crash recovery ---------------------------------------------------------

    def _recover(self, journal: WorkJournal) -> None:
        """Replay the journal: re-index completions, re-admit pending work.

        Runs during construction, before any provider can register, so
        re-issuing pending tasklets only queues replicas in the backlog;
        they are placed as providers (re)join.  The SubmitAcks that
        re-admission would imply are not re-sent — the consumer already
        got them from the previous incarnation, and the resubmit path
        answers anyone who asks again.
        """
        snapshot = journal.replay()
        for completion in snapshot.completions.values():
            self._remember_completion(completion, journal_write=False)
        recovered = 0
        for entry in snapshot.pending:
            state = self._admit_from_journal(entry)
            if state is None:
                continue
            recovered += 1
            # Envelopes are discarded: the registry is empty at this
            # point, so every replica lands in the backlog.
            self._issue(state, state.qoc.redundancy)
        self.stats.tasklets_recovered = recovered
        for record in snapshot.workflow_completions.values():
            key = str(record.get("key", ""))
            outcome = record.get("outcome")
            if key and isinstance(outcome, dict):
                self._wf_completed[key] = outcome
                self._wf_completed.move_to_end(key)
        while len(self._wf_completed) > max(1, self.config.completed_retention):
            self._wf_completed.popitem(last=False)
        wf_recovered = 0
        for entry in snapshot.workflows:
            if self._resume_workflow_from_journal(entry):
                wf_recovered += 1
        self.stats.workflows_recovered = wf_recovered
        if self._metrics is not None and recovered:
            self._metrics.tasklets_recovered.inc(recovered)
        if self._events is not None:
            self._events.record(
                ev.JOURNAL_RECOVERED,
                node=str(self.node_id),
                ts=self.clock.now(),
                pending=recovered,
                completions=len(snapshot.completions),
                workflows=wf_recovered,
                malformed=snapshot.malformed,
            )

    def _admit_from_journal(self, entry: dict) -> _TaskletState | None:
        if entry.get("origin"):
            # Work a federation peer forwarded to this broker: the origin
            # still holds the durable admission and reclaims it when this
            # broker is lost, so re-admitting here would double-execute.
            return None
        try:
            tasklet = Tasklet.from_dict(entry["tasklet"])
        except (TaskletError, KeyError, TypeError, ValueError):
            return None
        if tasklet.qoc.local_only:
            return None
        consumer_id = NodeId(str(entry.get("consumer_id", "")))
        key = f"{consumer_id}/{tasklet.tasklet_id}"
        if key in self._tasklets or key in self._completed:
            return None
        state = self._build_state(
            consumer_id, tasklet, entry["tasklet"], self.clock.now()
        )
        state.memo_key = memo_key_of(
            state.program_fingerprint,
            state.entry,
            state.args,
            state.seed,
            state.fuel,
        )
        self._tasklets[key] = state
        return state

    # -- workflows ----------------------------------------------------------------

    @staticmethod
    def _node_key(wf: _WorkflowState, node_id: str) -> str:
        return f"{wf.consumer_id}/{wf.workflow_id}:{node_id}"

    def _on_submit_workflow(
        self,
        src: NodeId,
        body: SubmitWorkflow,
        trace: dict[str, str] | None = None,
    ) -> list[Envelope]:
        self.stats.workflows_submitted += 1
        if self._wf_metrics is not None:
            self._wf_metrics.submitted.inc()
        workflow_id = "?"
        if isinstance(body.workflow, dict):
            workflow_id = str(body.workflow.get("workflow_id", "?"))
        try:
            spec = WorkflowSpec.from_dict(body.workflow)
            spec.validate()
        except (WorkflowSpecError, TaskletError, TypeError) as exc:
            return [
                self._send(
                    WorkflowAck(
                        workflow_id=workflow_id,
                        accepted=False,
                        reason=f"invalid workflow: {exc}",
                    ),
                    src,
                )
            ]
        key = f"{src}/{spec.workflow_id}"
        outcome = self._wf_completed.get(key)
        if outcome is not None:
            # Idempotent resubmit of a finished workflow (consumer
            # reconnected, or the broker restarted between the terminal
            # message and the consumer seeing it): redeliver the stored
            # outcome, run nothing.
            return self._redeliver_workflow(outcome, src)
        existing = self._workflows.get(key)
        if existing is not None:
            if existing.spec_fingerprint == spec.fingerprint():
                # Same graph resubmitted while in flight: re-ack and let
                # the running instance complete to this consumer.
                return [
                    self._send(
                        WorkflowAck(
                            workflow_id=spec.workflow_id, accepted=True
                        ),
                        src,
                    )
                ]
            return [
                self._send(
                    WorkflowAck(
                        workflow_id=spec.workflow_id,
                        accepted=False,
                        reason="duplicate workflow id",
                    ),
                    src,
                )
            ]
        now = self.clock.now()
        wf = _WorkflowState(
            key=key,
            workflow_id=spec.workflow_id,
            consumer_id=src,
            spec=spec,
            scheduler=DagScheduler(spec),
            submitted_at=now,
            spec_fingerprint=spec.fingerprint(),
        )
        if self._tracer is not None:
            parent = TraceContext.from_dict(trace)
            wf.trace_parent = parent
            wf.trace_ctx = (
                self._tracer.child(parent) if parent else self._tracer.start_trace()
            )
        self._workflows[key] = wf
        if self._wf_metrics is not None:
            self._wf_metrics.active.set(len(self._workflows))
        if self.journal is not None:
            self.journal.record_workflow_admitted(
                key, str(src), spec.to_dict(), ts=now
            )
            if self._metrics is not None:
                self._metrics.journal_records.labels(kind="wf_admitted").inc()
        if self._events is not None:
            self._events.record(
                ev.WORKFLOW_ADMITTED,
                node=str(src),
                ts=now,
                workflow_id=spec.workflow_id,
                nodes=len(spec.nodes),
            )
        out = [
            self._send(
                WorkflowAck(workflow_id=spec.workflow_id, accepted=True), src
            )
        ]
        out.extend(self._release_nodes(wf, wf.scheduler.start()))
        return out

    def _redeliver_workflow(self, outcome: dict, src: NodeId) -> list[Envelope]:
        """Answer a resubmit of a finished workflow from the stored outcome."""
        self.stats.completions_redelivered += 1
        if self._metrics is not None:
            self._metrics.completions_redelivered.inc()
        if self._events is not None:
            self._events.record(
                ev.RESULT_REDELIVERED,
                node=str(src),
                ts=self.clock.now(),
                workflow_id=str(outcome.get("workflow_id", "")),
                ok=bool(outcome.get("ok")),
            )
        return [
            self._send(
                WorkflowAck(
                    workflow_id=str(outcome.get("workflow_id", "")),
                    accepted=True,
                ),
                src,
            ),
            self._send(self._workflow_complete_message(outcome), src),
        ]

    @staticmethod
    def _workflow_complete_message(outcome: dict) -> WorkflowComplete:
        return WorkflowComplete(
            workflow_id=str(outcome.get("workflow_id", "")),
            ok=bool(outcome.get("ok")),
            outputs=dict(outcome.get("outputs") or {}),
            error=outcome.get("error"),
            failed_node=str(outcome.get("failed_node", "")),
            dependents=list(outcome.get("dependents") or []),
            nodes_total=int(outcome.get("nodes_total", 0)),
            nodes_memoized=int(outcome.get("nodes_memoized", 0)),
        )

    def _release_nodes(
        self, wf: _WorkflowState, node_ids: list[str]
    ) -> list[Envelope]:
        """Issue READY nodes; short-circuit ones whose result is known.

        A worklist rather than plain iteration: a node served from the
        result cache (or a journalled completion, during recovery)
        completes instantly and may release its successors in the same
        call.  Ends by finishing the workflow if the cascade drained it.
        """
        out: list[Envelope] = []
        worklist = list(node_ids)
        while worklist and not wf.done:
            node_id = worklist.pop(0)
            node = wf.spec.node(node_id)
            node_key = self._node_key(wf, node_id)
            now = self.clock.now()
            prior = self._completed.get(node_key)
            if prior is not None and not prior.ok:
                # A journalled failure for this exact node (recovery, or
                # a re-run of a failed graph whose outcome was evicted):
                # the workflow fails the same way it did before.
                self._record_node_span(wf, node_id, status="failed", now=now)
                dependents = wf.scheduler.fail(node_id)
                out.extend(
                    self._finish_workflow(
                        wf,
                        ok=False,
                        error=prior.error
                        or f"node {node_id!r} failed previously",
                        failed_node=node_id,
                        dependents=dependents,
                    )
                )
                break
            if prior is not None:
                # Journalled success — recovery replay, zero executions.
                out.extend(
                    self._short_circuit_node(wf, node_id, prior.value, now)
                )
                worklist.extend(wf.scheduler.complete(node_id, prior.value))
                continue
            try:
                args = wf.scheduler.args_of(node_id)
                tasklet_dict = {
                    "tasklet_id": f"{wf.workflow_id}:{node_id}",
                    "program": wf.spec.programs[node.program_fingerprint],
                    "program_fingerprint": node.program_fingerprint,
                    "entry": node.entry,
                    "args": args,
                    "qoc": {"max_attempts": node.max_attempts},
                    "seed": node.seed,
                    "fuel": node.fuel,
                }
                tasklet = Tasklet.from_dict(tasklet_dict)
            except (TaskletError, KeyError, TypeError, ValueError) as exc:
                dependents = wf.scheduler.fail(node_id)
                out.extend(
                    self._finish_workflow(
                        wf,
                        ok=False,
                        error=f"node {node_id!r} could not be released: {exc}",
                        failed_node=node_id,
                        dependents=dependents,
                    )
                )
                break
            memo = memo_key_of(
                node.program_fingerprint,
                node.entry,
                args,
                node.seed,
                node.fuel,
            )
            if self.result_cache is not None and memo is not None:
                hit = self.result_cache.get(memo)
                if hit is not None:
                    # Same computation seen before (any submitter):
                    # the node completes with zero executions.
                    self.stats.memo_hits += 1
                    if self._metrics is not None:
                        self._metrics.memo_cache.labels(result="hit").inc()
                    self._remember_completion(
                        CompletionRecord(
                            key=node_key,
                            tasklet_id=f"{wf.workflow_id}:{node_id}",
                            consumer_id=str(wf.consumer_id),
                            ok=True,
                            value=hit.value,
                            attempts=0,
                            cost=0.0,
                            memo_key=memo,
                            completed_at=now,
                        )
                    )
                    out.extend(
                        self._short_circuit_node(wf, node_id, hit.value, now)
                    )
                    worklist.extend(wf.scheduler.complete(node_id, hit.value))
                    continue
                self.stats.memo_misses += 1
                if self._metrics is not None:
                    self._metrics.memo_cache.labels(result="miss").inc()
            state = self._build_state(
                wf.consumer_id, tasklet, tasklet_dict, now
            )
            state.memo_key = memo
            if self._tracer is not None and wf.trace_ctx is not None:
                # One ``wf.node`` span per released node, parented on the
                # ``broker.workflow`` span; the node's ``broker.tasklet``
                # span parents on it, so the whole graph shares the
                # consumer's trace id.
                node_ctx = self._tracer.child(wf.trace_ctx)
                wf.node_traces[node_id] = (node_ctx, now)
                state.trace_parent = node_ctx
                state.trace_ctx = self._tracer.child(node_ctx)
            self._tasklets[node_key] = state
            self._wf_nodes[node_key] = (wf.key, node_id)
            wf.scheduler.mark_running(node_id)
            if self.journal is not None:
                self.journal.record_admitted(
                    node_key,
                    str(wf.consumer_id),
                    tasklet_dict,
                    ts=now,
                    workflow=wf.key,
                )
                if self._metrics is not None:
                    self._metrics.journal_records.labels(kind="admitted").inc()
            if self._events is not None:
                self._events.record(
                    ev.WORKFLOW_NODE_RELEASED,
                    node=str(wf.consumer_id),
                    ts=now,
                    workflow_id=wf.workflow_id,
                    node_id=node_id,
                )
            out.append(
                self._send(
                    WorkflowUpdate(
                        workflow_id=wf.workflow_id,
                        node_id=node_id,
                        state=NODE_RUNNING,
                    ),
                    wf.consumer_id,
                )
            )
            peer = self._forward_target()
            if peer is not None:
                # No local slot but a gossiped peer has one: workflow
                # nodes saturate-forward exactly like fresh admissions;
                # the ForwardComplete routes back through ``_wf_nodes``.
                out.append(self._forward(state, peer, now))
            else:
                out.extend(self._issue(state, tasklet.qoc.redundancy))
        if not wf.done and wf.scheduler.finished:
            out.extend(self._finish_workflow(wf, ok=not wf.scheduler.failed))
        return out

    def _short_circuit_node(
        self, wf: _WorkflowState, node_id: str, value, now: float
    ) -> list[Envelope]:
        """Bookkeeping for a node completed without executing anything."""
        self._record_node_span(wf, node_id, status="memoized", now=now)
        wf.nodes_memoized += 1
        self.stats.workflow_nodes_memoized += 1
        self.stats.workflow_nodes_completed += 1
        if self._wf_metrics is not None:
            self._wf_metrics.nodes.labels(outcome="memoized").inc()
        if self._events is not None:
            self._events.record(
                ev.MEMO_HIT,
                node=str(wf.consumer_id),
                ts=now,
                workflow_id=wf.workflow_id,
                node_id=node_id,
            )
        return [
            self._send(
                WorkflowUpdate(
                    workflow_id=wf.workflow_id,
                    node_id=node_id,
                    state=NODE_DONE,
                    attempts=0,
                ),
                wf.consumer_id,
            )
        ]

    def _record_node_span(
        self,
        wf: _WorkflowState,
        node_id: str,
        status: str,
        now: float,
        attempts: int = 0,
    ) -> None:
        """Record the ``wf.node`` span for one node reaching a terminal
        state.  ``deps`` ride as an attribute so critical-path analysis
        can walk the graph from spans alone."""
        if self._tracer is None or wf.trace_ctx is None:
            return
        entry = wf.node_traces.pop(node_id, None)
        if entry is not None:
            ctx, ready_at = entry
        else:
            # Never released (short-circuited straight from the cache or
            # journal): a zero-length span keeps the graph complete.
            ctx, ready_at = self._tracer.child(wf.trace_ctx), now
        try:
            deps = list(wf.spec.node(node_id).deps())
        except (KeyError, WorkflowSpecError):
            deps = []
        self._tracer.record(
            name="wf.node",
            context=ctx,
            node=str(self.node_id),
            start=ready_at,
            end=now,
            parent_id=wf.trace_ctx.span_id,
            status=status,
            attrs={
                "workflow_id": wf.workflow_id,
                "node_id": node_id,
                "deps": deps,
                "attempts": attempts,
            },
        )

    def _on_node_terminal(
        self,
        wf_key: str,
        node_id: str,
        ok: bool,
        value,
        error: str | None,
        attempts: int,
    ) -> list[Envelope]:
        """A workflow node's tasklet reached a terminal outcome."""
        wf = self._workflows.get(wf_key)
        if wf is None or wf.done:
            return []
        self._record_node_span(
            wf,
            node_id,
            status="ok" if ok else "failed",
            now=self.clock.now(),
            attempts=attempts,
        )
        self.stats.workflow_nodes_completed += 1
        if self._wf_metrics is not None:
            self._wf_metrics.nodes.labels(
                outcome="ok" if ok else "failed"
            ).inc()
        if ok:
            out = [
                self._send(
                    WorkflowUpdate(
                        workflow_id=wf.workflow_id,
                        node_id=node_id,
                        state=NODE_DONE,
                        attempts=attempts,
                    ),
                    wf.consumer_id,
                )
            ]
            released = wf.scheduler.complete(node_id, value)
            out.extend(self._release_nodes(wf, released))
            return out
        dependents = wf.scheduler.fail(node_id)
        out = [
            self._send(
                WorkflowUpdate(
                    workflow_id=wf.workflow_id,
                    node_id=node_id,
                    state=NODE_FAILED,
                    attempts=attempts,
                    error=error,
                ),
                wf.consumer_id,
            )
        ]
        out.extend(
            self._finish_workflow(
                wf,
                ok=False,
                error=error or f"node {node_id!r} failed",
                failed_node=node_id,
                dependents=dependents,
            )
        )
        return out

    def _finish_workflow(
        self,
        wf: _WorkflowState,
        ok: bool,
        error: str | None = None,
        failed_node: str = "",
        dependents: list[str] | None = None,
    ) -> list[Envelope]:
        """Terminate one workflow: cancel stragglers, journal, notify."""
        if wf.done:
            return []
        wf.done = True
        out: list[Envelope] = []
        # Cancel sibling nodes still running (their results are useless
        # once the graph has failed).  ``_complete`` routes each back
        # through ``_on_node_terminal``, which the ``done`` flag above
        # turns into a no-op.
        for node_key, (owner_key, _node_id) in list(self._wf_nodes.items()):
            if owner_key != wf.key:
                continue
            state = self._tasklets.get(node_key)
            if state is not None and not state.done:
                out.extend(
                    self._complete(
                        state,
                        ok=False,
                        error=(
                            f"workflow {wf.workflow_id!r} cancelled: "
                            f"{error or 'failed'}"
                        ),
                    )
                )
            else:
                self._wf_nodes.pop(node_key, None)
        now = self.clock.now()
        outcome = {
            "workflow_id": wf.workflow_id,
            "consumer_id": str(wf.consumer_id),
            "ok": ok,
            "outputs": wf.scheduler.outputs() if ok else {},
            "error": error,
            "failed_node": failed_node,
            "dependents": list(dependents or []),
            "nodes_total": len(wf.spec.nodes),
            "nodes_memoized": wf.nodes_memoized,
        }
        self._wf_completed[wf.key] = outcome
        self._wf_completed.move_to_end(wf.key)
        while len(self._wf_completed) > max(1, self.config.completed_retention):
            self._wf_completed.popitem(last=False)
        if self.journal is not None:
            self.journal.record_workflow_complete(wf.key, outcome, ts=now)
            if self._metrics is not None:
                self._metrics.journal_records.labels(kind="wf_complete").inc()
            self._maybe_compact_journal()
        if ok:
            self.stats.workflows_completed += 1
        else:
            self.stats.workflows_failed += 1
        if self._wf_metrics is not None:
            self._wf_metrics.completed.labels(
                outcome="ok" if ok else "failed"
            ).inc()
        if self._events is not None:
            if ok:
                self._events.record(
                    ev.WORKFLOW_COMPLETE,
                    node=str(wf.consumer_id),
                    ts=now,
                    workflow_id=wf.workflow_id,
                    nodes=len(wf.spec.nodes),
                    memoized=wf.nodes_memoized,
                    elapsed_s=round(now - wf.submitted_at, 6),
                )
            else:
                self._raise_alert(
                    ev.WORKFLOW_FAILED,
                    node=str(wf.consumer_id),
                    ts=now,
                    workflow_id=wf.workflow_id,
                    failed_node=failed_node,
                    dependents=len(outcome["dependents"]),
                    error=error or "",
                )
        if self._tracer is not None and wf.trace_ctx is not None:
            # Dependents that never got released can never run: they get
            # zero-length ``failed`` spans so every node of the DAG shows
            # up in the trace.  Nodes still open after that were running
            # when the graph died — cancelled, not failed (their
            # ``_on_node_terminal`` is gated on ``wf.done``).
            for node_id in outcome["dependents"]:
                if node_id not in wf.node_traces:
                    self._record_node_span(wf, node_id, status="failed", now=now)
            for node_id in list(wf.node_traces):
                self._record_node_span(wf, node_id, status="cancelled", now=now)
            self._tracer.record(
                name="broker.workflow",
                context=wf.trace_ctx,
                node=str(self.node_id),
                start=wf.submitted_at,
                end=now,
                parent_id=(
                    wf.trace_parent.span_id if wf.trace_parent else None
                ),
                status="ok" if ok else "failed",
                attrs={
                    "workflow_id": wf.workflow_id,
                    "nodes_total": len(wf.spec.nodes),
                    "nodes_memoized": wf.nodes_memoized,
                },
            )
        out.append(
            self._send(self._workflow_complete_message(outcome), wf.consumer_id)
        )
        del self._workflows[wf.key]
        if self._wf_metrics is not None:
            self._wf_metrics.active.set(len(self._workflows))
        return out

    def _resume_workflow_from_journal(self, entry: dict) -> bool:
        """Rebuild one in-flight workflow during crash recovery.

        The graph is reconstructed from the ``wf_admitted`` spec; node
        completions already replayed into ``_completed`` short-circuit
        through ``_release_nodes`` (zero re-execution), and the still-
        missing frontier re-issues into the backlog.  Envelopes are
        discarded — the consumer re-learns the outcome by resubmitting.
        """
        try:
            spec = WorkflowSpec.from_dict(entry["workflow"])
            spec.validate()
        except (
            WorkflowSpecError,
            TaskletError,
            KeyError,
            TypeError,
            ValueError,
        ):
            return False
        consumer_id = NodeId(str(entry.get("consumer_id", "")))
        key = f"{consumer_id}/{spec.workflow_id}"
        if key in self._workflows or key in self._wf_completed:
            return False
        wf = _WorkflowState(
            key=key,
            workflow_id=spec.workflow_id,
            consumer_id=consumer_id,
            spec=spec,
            scheduler=DagScheduler(spec),
            submitted_at=self.clock.now(),
            spec_fingerprint=spec.fingerprint(),
        )
        if self._tracer is not None:
            # The consumer's root context died with the previous
            # incarnation; the recovered run gets a fresh trace id.
            wf.trace_ctx = self._tracer.start_trace()
        self._workflows[key] = wf
        self._release_nodes(wf, wf.scheduler.start())
        if self._events is not None:
            self._events.record(
                ev.WORKFLOW_RECOVERED,
                node=str(consumer_id),
                ts=self.clock.now(),
                workflow_id=spec.workflow_id,
                nodes=len(spec.nodes),
                done=wf.scheduler.counts()[NODE_DONE],
            )
        return True

    @property
    def pending_workflows(self) -> int:
        """Workflows admitted but not yet terminal (for tests/monitoring)."""
        return len(self._workflows)

    # -- execution lifecycle ------------------------------------------------------

    def _issue(
        self, state: _TaskletState, count: int, requeue: bool = False
    ) -> list[Envelope]:
        """Place up to ``count`` replicas; queue what cannot be placed.

        ``requeue`` marks replicas that were already counted in
        ``stats.replicas_queued`` once (backlog drains), so the counter
        reflects distinct queueing decisions, not drain retries.
        """
        if state.done or count <= 0:
            return []
        running = {
            outstanding.provider_id for outstanding in state.outstanding.values()
        }
        all_views = self.registry.views(require_free_slot=True)
        views = [
            view
            for view in all_views
            if view.provider_id not in running
            and view.provider_id not in state.failed_providers
        ]
        if not views:
            # Every candidate already failed this tasklet once; retrying
            # them beats giving up (transient faults are common).
            views = [
                view for view in all_views if view.provider_id not in running
            ]
        chosen = self.strategy.select(views, count, state.qoc)
        out: list[Envelope] = []
        now = self.clock.now()
        placed = 0
        for provider_id in chosen:
            record = self.registry.get(provider_id)
            if record is None or not record.alive:
                # Chosen, but the provider died between the registry
                # snapshot and placement (or a strategy returned a stale
                # id).  Not counting it as placed routes the replica into
                # ``missing`` below, so it queues in the backlog instead
                # of silently vanishing from the attempt budget.
                continue
            execution_id = self.ids.next_execution()
            record.outstanding += 1
            assign_ctx = None
            if self._tracer is not None and state.trace_ctx is not None:
                assign_ctx = self._tracer.child(state.trace_ctx)
            state.outstanding[execution_id] = _Outstanding(
                execution_id=execution_id,
                provider_id=provider_id,
                issued_at=now,
                trace_ctx=assign_ctx,
            )
            state.issued += 1
            self.stats.executions_issued += 1
            self._by_execution[execution_id] = state.key
            if self.health is not None:
                self.health.watchdog.on_issue(
                    execution_id=str(execution_id),
                    provider_id=str(provider_id),
                    tasklet_id=str(state.tasklet_id),
                    fingerprint=state.program_fingerprint,
                    speed_ips=record.effective_speed,
                    now=now,
                )
            if self._events is not None:
                self._events.record(
                    ev.PLACEMENT,
                    node=str(provider_id),
                    ts=now,
                    execution_id=str(execution_id),
                    tasklet_id=str(state.tasklet_id),
                )
            envelope = self._send(
                AssignExecution(
                    execution_id=execution_id,
                    tasklet_id=state.tasklet_id,
                    consumer_id=state.consumer_id,
                    program=state.program,
                    program_fingerprint=state.program_fingerprint,
                    entry=state.entry,
                    args=state.args,
                    seed=state.seed,
                    fuel=state.fuel,
                ),
                provider_id,
            )
            if assign_ctx is not None:
                envelope.trace = assign_ctx.to_dict()
            out.append(envelope)
            placed += 1
        if placed and self._metrics is not None:
            self._metrics.executions_issued.inc(placed)
            self._metrics.placements.labels(
                strategy=getattr(self.strategy, "name", "unknown")
            ).inc(placed)
        missing = count - placed
        if missing > 0:
            queued_total = sum(
                s.pending_replicas for s in self._tasklets.values()
            )
            allowed = max(0, self.config.max_queued_replicas - queued_total)
            to_queue = min(missing, allowed)
            overflow = missing - to_queue
            if to_queue > 0:
                state.pending_replicas += to_queue
                if not requeue:
                    self.stats.replicas_queued += to_queue
                    if self._metrics is not None:
                        self._metrics.replicas_queued.inc(to_queue)
                if state.key not in self._backlog:
                    self._backlog.append(state.key)
            if overflow > 0:
                # The backlog is full.  Dropping the replicas silently
                # would strand the tasklet (nothing outstanding, nothing
                # pending, no TaskletComplete — the consumer waits
                # forever), so account for the drop and, if nothing else
                # is carrying this tasklet, fail it now.
                self.stats.replicas_overflowed += overflow
                if self._metrics is not None:
                    self._metrics.replicas_overflowed.inc(overflow)
                if self._events is not None:
                    self._raise_alert(
                        ev.BACKLOG_OVERFLOW,
                        node=str(state.consumer_id),
                        ts=now,
                        tasklet_id=str(state.tasklet_id),
                        dropped=overflow,
                        max_queued_replicas=self.config.max_queued_replicas,
                    )
                if not state.outstanding and state.pending_replicas == 0:
                    out.extend(
                        self._complete(
                            state,
                            ok=False,
                            error=(
                                f"scheduling backlog full: {overflow} replica(s) "
                                "dropped (max_queued_replicas="
                                f"{self.config.max_queued_replicas})"
                            ),
                        )
                    )
        return out

    def _drain_backlog(self) -> list[Envelope]:
        """Try to place queued replicas (FIFO across Tasklets)."""
        if not self._backlog:
            return []
        out: list[Envelope] = []
        still_waiting: list[str] = []
        for key in self._backlog:
            state = self._tasklets.get(key)
            if state is None or state.done or state.pending_replicas == 0:
                continue
            wanted = state.pending_replicas
            state.pending_replicas = 0
            out.extend(self._issue(state, wanted, requeue=True))
            if state.pending_replicas > 0:
                still_waiting.append(key)
        self._backlog = still_waiting
        return out

    def _on_result(self, body: ExecutionResult) -> list[Envelope]:
        execution_id = ExecutionId(body.execution_id)
        key = self._by_execution.pop(execution_id, None)
        if key is None:
            return []  # late result for an already-decided tasklet
        state = self._tasklets.get(key)
        if state is None:
            return []
        outstanding = state.outstanding.pop(execution_id, None)
        record = ExecutionRecord(
            execution_id=execution_id,
            tasklet_id=state.tasklet_id,
            provider_id=NodeId(body.provider_id),
            status=ExecutionStatus(body.status),
            value=body.value,
            error=body.error,
            instructions=body.instructions,
            started_at=body.started_at,
            finished_at=body.finished_at,
        )
        if self._metrics is not None:
            self._metrics.execution_results.labels(status=record.status.value).inc()
        if self.health is not None:
            self.health.watchdog.on_result(
                str(execution_id), record.ok, record.instructions
            )
        if self._events is not None and not record.ok:
            self._events.record(
                ev.EXECUTION_FAULT,
                node=body.provider_id,
                ts=self.clock.now(),
                execution_id=str(execution_id),
                tasklet_id=str(state.tasklet_id),
                status=record.status.value,
                error=record.error or "",
            )
        self._end_assign_span(
            state, outstanding, "ok" if record.ok else record.status.value
        )
        provider = self.registry.get(NodeId(body.provider_id))
        if provider is not None and outstanding is not None:
            provider.record_result(
                record.ok,
                record.instructions,
                record.duration,
                learn_speed=self.registry.learn_speed,
            )
        if record.ok:
            self.stats.executions_succeeded += 1
            if provider is not None:
                self.ledger.charge(
                    consumer_id=state.consumer_id,
                    provider_id=NodeId(body.provider_id),
                    tasklet_key=state.key,
                    instructions=record.instructions,
                    price=provider.price,
                )
        else:
            self.stats.executions_failed += 1
        return self._fold_record(state, record)

    def _on_rejected(self, body: ExecutionRejected) -> list[Envelope]:
        result = ExecutionResult(
            execution_id=body.execution_id,
            tasklet_id=body.tasklet_id,
            provider_id=body.provider_id,
            status=ExecutionStatus.REJECTED.value,
            error=body.reason or "rejected by provider",
        )
        return self._on_result(result)

    def _fold_record(
        self, state: _TaskletState, record: ExecutionRecord
    ) -> list[Envelope]:
        """Update the vote and drive the tasklet toward completion."""
        if state.done:
            return []
        if not record.ok:
            state.failed_providers.add(record.provider_id)
        state.collector.add(record)
        winner = state.collector.winner()
        if winner is not None:
            return self._complete(state, ok=True, value=winner[0].value)

        out: list[Envelope] = []
        if not record.ok and state.budget_left > 0:
            if self._metrics is not None:
                self._metrics.executions_reissued.inc()
            if self._events is not None:
                self._events.record(
                    ev.REISSUE,
                    node=str(record.provider_id),
                    ts=self.clock.now(),
                    tasklet_id=str(state.tasklet_id),
                    after=record.status.value,
                )
            out.extend(self._issue(state, 1))

        if not state.outstanding and state.pending_replicas == 0:
            if state.budget_left > 0:
                # Successful-but-undecided vote (e.g. r=3 with one success
                # and two losses): spend remaining budget on more replicas.
                needed = max(
                    1, state.collector.required - self._best_group_size(state)
                )
                if self._metrics is not None:
                    self._metrics.executions_reissued.inc(needed)
                if self._events is not None:
                    self._events.record(
                        ev.REISSUE,
                        node="",
                        ts=self.clock.now(),
                        tasklet_id=str(state.tasklet_id),
                        after="undecided_vote",
                        count=needed,
                    )
                out.extend(self._issue(state, needed))
            if not state.outstanding and state.pending_replicas == 0:
                out.extend(self._complete_failed(state))
        return out

    @staticmethod
    def _best_group_size(state: _TaskletState) -> int:
        groups = state.collector.successes.values()
        return max((len(group) for group in groups), default=0)

    def _complete_failed(self, state: _TaskletState) -> list[Envelope]:
        if state.collector.disagreement():
            error = (
                "replicas disagreed and no majority formed "
                f"({len(state.collector.successes)} distinct values)"
            )
        elif state.collector.successes:
            error = (
                f"insufficient agreeing replicas: needed "
                f"{state.collector.required}, got {self._best_group_size(state)}"
            )
        else:
            failures = state.collector.failures
            last_error = failures[-1].error if failures else "no executions possible"
            error = f"all {len(failures)} executions failed; last: {last_error}"
        return self._complete(state, ok=False, error=error)

    def _complete(
        self,
        state: _TaskletState,
        ok: bool,
        value=None,
        error: str | None = None,
        attempts: int | None = None,
        cost: float | None = None,
        executions: list[dict] | None = None,
        executed_by: str | None = None,
    ) -> list[Envelope]:
        """Finish one tasklet.  The override parameters carry the outcome
        of a *forwarded* execution back from a peer broker (attempts,
        cost, and execution records happened there, not here); all default
        to this broker's own bookkeeping."""
        if state.done:
            # Completion is single-shot: a caller further up the stack
            # (e.g. _fold_record re-checking after a failed _issue)
            # already finished this tasklet.
            return []
        state.done = True
        if ok:
            self.stats.tasklets_completed += 1
        else:
            self.stats.tasklets_failed += 1
        if self._metrics is not None:
            self._metrics.tasklets_completed.labels(
                outcome="ok" if ok else "failed"
            ).inc()
        if self._events is not None:
            now = self.clock.now()
            elapsed = now - state.submitted_at
            if not ok:
                self._raise_alert(
                    ev.TASKLET_FAILED,
                    node=str(state.consumer_id),
                    ts=now,
                    tasklet_id=str(state.tasklet_id),
                    error=error or "",
                    attempts=state.issued,
                )
            elif state.qoc.deadline_s is not None and elapsed > state.qoc.deadline_s:
                self._raise_alert(
                    ev.SLO_BREACH,
                    node=str(state.consumer_id),
                    ts=now,
                    tasklet_id=str(state.tasklet_id),
                    deadline_s=state.qoc.deadline_s,
                    elapsed_s=round(elapsed, 6),
                )
        if self._tracer is not None and state.trace_ctx is not None:
            self._tracer.record(
                name="broker.tasklet",
                context=state.trace_ctx,
                node=str(self.node_id),
                start=state.submitted_at,
                end=self.clock.now(),
                parent_id=(
                    state.trace_parent.span_id if state.trace_parent else None
                ),
                status="ok" if ok else "failed",
                attrs={"tasklet_id": str(state.tasklet_id), "attempts": state.issued},
            )
        out: list[Envelope] = []
        if state.forward_trace_ctx is not None:
            # Completion raced an in-flight forward (e.g. workflow
            # cancellation): close its span so the tree stays connected.
            self._end_forward_span(
                state, "cancelled", str(state.forwarded_to or "")
            )
        # Cancel replicas still in flight and release registry bookkeeping.
        for outstanding in state.outstanding.values():
            # The replica's result is no longer needed; close its span so
            # a late ``provider.execute`` still has a parent in the tree.
            self._end_assign_span(state, outstanding, "cancelled")
            if self.health is not None:
                self.health.watchdog.on_lost(str(outstanding.execution_id))
            self._by_execution.pop(outstanding.execution_id, None)
            provider = self.registry.get(outstanding.provider_id)
            if provider is not None:
                provider.release_slot()
            out.append(
                self._send(
                    CancelExecution(execution_id=outstanding.execution_id),
                    outstanding.provider_id,
                )
            )
        state.outstanding.clear()
        state.pending_replicas = 0
        local_cost = self.ledger.pop_cost_of(state.key)
        if cost is None:
            cost = local_cost
        if attempts is None:
            attempts = state.issued
        if executions is None:
            executions = [
                record.to_dict() for record in state.collector.all_records
            ]
        if executed_by is None:
            executed_by = str(self.node_id) if state.issued > 0 else ""
        self._remember_completion(
            CompletionRecord(
                key=state.key,
                tasklet_id=str(state.tasklet_id),
                consumer_id=str(state.consumer_id),
                ok=ok,
                value=value,
                error=error,
                attempts=attempts,
                cost=cost,
                memo_key=state.memo_key,
                completed_at=self.clock.now(),
                executed_by=executed_by,
            )
        )
        wf_ref = self._wf_nodes.pop(state.key, None)
        if wf_ref is not None:
            # A workflow node: the outcome feeds the graph, not a
            # consumer future.  Successor release / workflow failure is
            # handled by the DAG layer; no TaskletComplete is sent.
            del self._tasklets[state.key]
            owner_key, node_id = wf_ref
            out.extend(
                self._on_node_terminal(
                    owner_key, node_id, ok, value, error, attempts
                )
            )
            return out
        if state.origin_broker is not None:
            # Forwarded work: the consumer belongs to the origin broker,
            # so the outcome flows back there instead.
            complete = self._send(
                ForwardComplete(
                    tasklet_id=str(state.tasklet_id),
                    consumer_id=str(state.consumer_id),
                    broker_id=str(self.node_id),
                    ok=ok,
                    value=value,
                    error=error,
                    attempts=attempts,
                    cost=cost,
                    executions=executions,
                    executed_by=executed_by,
                ),
                state.origin_broker,
            )
            if state.direct_consumer:
                out.append(
                    self._send(
                        TaskletComplete(
                            tasklet_id=state.tasklet_id,
                            ok=ok,
                            value=value,
                            error=error,
                            attempts=attempts,
                            cost=cost,
                            executions=executions,
                        ),
                        state.consumer_id,
                    )
                )
        else:
            complete = self._send(
                TaskletComplete(
                    tasklet_id=state.tasklet_id,
                    ok=ok,
                    value=value,
                    error=error,
                    attempts=attempts,
                    cost=cost,
                    executions=executions,
                ),
                state.consumer_id,
            )
        if state.trace_ctx is not None:
            complete.trace = state.trace_ctx.to_dict()
        out.append(complete)
        del self._tasklets[state.key]
        return out

    # -- federation -------------------------------------------------------------

    def _wire_tasklet(self, state: _TaskletState) -> dict:
        """Reassemble the wire-form Tasklet dict from admitted state."""
        return {
            "tasklet_id": str(state.tasklet_id),
            "program": state.program,
            "program_fingerprint": state.program_fingerprint,
            "entry": state.entry,
            "args": list(state.args),
            "qoc": state.qoc.to_dict(),
            "seed": state.seed,
            "fuel": state.fuel,
        }

    def _forward(
        self, state: _TaskletState, peer_id: str, now: float
    ) -> Envelope:
        """Hand a fresh admission to a peer broker with free capacity."""
        state.forwarded_to = NodeId(peer_id)
        state.forwarded_at = now
        state.forward_acked = False
        if self._tracer is not None and state.trace_ctx is not None:
            # The peer parents its ``broker.tasklet`` on this context, so
            # the forwarded execution stays inside the origin's trace.
            state.forward_trace_ctx = self._tracer.child(state.trace_ctx)
        self.stats.tasklets_forwarded += 1
        if self._fed_metrics is not None:
            self._fed_metrics.forwards.labels(direction="out").inc()
        if self._events is not None:
            self._events.record(
                ev.TASKLET_FORWARDED,
                node=str(peer_id),
                ts=now,
                tasklet_id=str(state.tasklet_id),
                consumer_id=str(state.consumer_id),
            )
        return self._forward_envelope(state, now)

    def _forward_envelope(self, state: _TaskletState, now: float) -> Envelope:
        """(Re-)send one forward; idempotent on the receiving peer."""
        state.forward_last_sent = now
        envelope = self._send(
            ForwardTasklet(
                origin_broker=str(self.node_id),
                consumer_id=str(state.consumer_id),
                tasklet=self._wire_tasklet(state),
            ),
            state.forwarded_to,
        )
        if state.forward_trace_ctx is not None:
            envelope.trace = state.forward_trace_ctx.to_dict()
        return envelope

    def _forward_complete_of(self, completion: CompletionRecord) -> ForwardComplete:
        """Terminal outcome of forwarded work, rebuilt from the record
        (serves duplicate forwards idempotently)."""
        return ForwardComplete(
            tasklet_id=completion.tasklet_id,
            consumer_id=completion.consumer_id,
            broker_id=str(self.node_id),
            ok=completion.ok,
            value=completion.value,
            error=completion.error,
            attempts=completion.attempts,
            cost=completion.cost,
            executions=[],
            executed_by=completion.executed_by,
        )

    def _on_forward(
        self, body: ForwardTasklet, trace: dict[str, str] | None = None
    ) -> list[Envelope]:
        """Admit (or idempotently re-answer) work forwarded by a peer."""
        origin = NodeId(body.origin_broker)
        now = self.clock.now()
        try:
            tasklet = Tasklet.from_dict(body.tasklet)
        except (TaskletError, KeyError, TypeError, ValueError) as exc:
            ack = ForwardAck(
                tasklet_id=str(body.tasklet.get("tasklet_id", "?")),
                consumer_id=body.consumer_id,
                accepted=False,
                broker_id=str(self.node_id),
                reason=f"malformed tasklet: {exc}",
            )
            return [self._send(ack, origin)]
        key = f"{body.consumer_id}/{tasklet.tasklet_id}"
        accept = ForwardAck(
            tasklet_id=str(tasklet.tasklet_id),
            consumer_id=body.consumer_id,
            accepted=True,
            broker_id=str(self.node_id),
        )
        completed = self._completed.get(key)
        if completed is not None:
            # Duplicate of already-finished work (the origin re-sent an
            # unacked forward): re-deliver the journalled outcome.
            return [
                self._send(accept, origin),
                self._send(self._forward_complete_of(completed), origin),
            ]
        if key in self._tasklets:
            return [self._send(accept, origin)]  # still running; just re-ack
        if body.hops > self.federation.config.max_hops:
            return [
                self._send(
                    ForwardAck(
                        tasklet_id=str(tasklet.tasklet_id),
                        consumer_id=body.consumer_id,
                        accepted=False,
                        broker_id=str(self.node_id),
                        reason=f"too many hops ({body.hops})",
                    ),
                    origin,
                )
            ]
        if not self.registry.views(require_free_slot=True):
            # The gossip view the origin routed on is stale; rejecting
            # (rather than queueing) sends the work back to a broker that
            # holds the durable admission.
            return [
                self._send(
                    ForwardAck(
                        tasklet_id=str(tasklet.tasklet_id),
                        consumer_id=body.consumer_id,
                        accepted=False,
                        broker_id=str(self.node_id),
                        reason="no free capacity",
                    ),
                    origin,
                )
            ]
        memo = memo_key_of(
            body.tasklet.get("program_fingerprint", ""),
            tasklet.entry,
            tasklet.args,
            tasklet.seed,
            tasklet.fuel,
        )
        if self.result_cache is not None and memo is not None:
            hit = self.result_cache.get(memo)
            if hit is not None:
                self.stats.memo_hits += 1
                if self._metrics is not None:
                    self._metrics.memo_cache.labels(result="hit").inc()
                completion = CompletionRecord(
                    key=key,
                    tasklet_id=str(tasklet.tasklet_id),
                    consumer_id=body.consumer_id,
                    ok=True,
                    value=hit.value,
                    attempts=0,
                    cost=0.0,
                    memo_key=memo,
                    completed_at=now,
                )
                self._remember_completion(completion)
                return [
                    self._send(accept, origin),
                    self._send(self._forward_complete_of(completion), origin),
                ]
        state = self._build_state(
            NodeId(body.consumer_id), tasklet, body.tasklet, now
        )
        state.memo_key = memo
        state.origin_broker = origin
        if self._tracer is not None:
            # Parent on the origin broker's ``broker.forward`` span so the
            # remote execution lands in the same trace tree.
            parent = TraceContext.from_dict(trace)
            state.trace_parent = parent
            state.trace_ctx = (
                self._tracer.child(parent) if parent else self._tracer.start_trace()
            )
        self._tasklets[key] = state
        self.stats.forwards_received += 1
        if self._fed_metrics is not None:
            self._fed_metrics.forwards.labels(direction="in").inc()
        if self.journal is not None:
            # Origin-tagged: the origin holds the durable admission, so a
            # restart of *this* broker never re-admits it (see
            # _admit_from_journal); the record exists for the cross-journal
            # exactly-once audit.
            self.journal.record_admitted(
                key, body.consumer_id, body.tasklet, ts=now,
                origin=body.origin_broker,
            )
            if self._metrics is not None:
                self._metrics.journal_records.labels(kind="admitted").inc()
        out = [self._send(accept, origin)]
        out.extend(self._issue(state, tasklet.qoc.redundancy))
        return out

    def _on_forward_ack(self, body: ForwardAck) -> list[Envelope]:
        key = f"{body.consumer_id}/{body.tasklet_id}"
        state = self._tasklets.get(key)
        if state is None or state.done or state.forwarded_to is None:
            return []
        if body.broker_id and body.broker_id != str(state.forwarded_to):
            return []  # ack from a peer this tasklet was reclaimed from
        if body.accepted:
            state.forward_acked = True
            return []
        return self._reclaim_forward(
            state, reason=body.reason or "rejected by peer"
        )

    def _on_forward_complete(self, body: ForwardComplete) -> list[Envelope]:
        key = f"{body.consumer_id}/{body.tasklet_id}"
        state = self._tasklets.get(key)
        if state is None or state.done:
            return []  # duplicate outcome; the first one already won
        self.stats.forwards_completed += 1
        if self._fed_metrics is not None:
            self._fed_metrics.forward_results.labels(
                outcome="ok" if body.ok else "failed"
            ).inc()
        self._end_forward_span(
            state, "ok" if body.ok else "failed", body.broker_id
        )
        # _complete cancels any local replicas issued by a racing reclaim,
        # so a peer outcome arriving late still resolves exactly once.
        return self._complete(
            state,
            ok=body.ok,
            value=body.value,
            error=body.error,
            attempts=body.attempts,
            cost=body.cost,
            executions=list(body.executions),
            executed_by=body.executed_by,
        )

    def _reclaim_forward(
        self, state: _TaskletState, reason: str
    ) -> list[Envelope]:
        """Take forwarded work back and run it locally.

        Only called when the forward is *known* dead — peer declared
        dead, peer restarted under a new epoch, or explicit rejection —
        never on a blind timeout, which is what preserves exactly-once.
        """
        if state.done or state.forwarded_to is None:
            return []
        peer_id = str(state.forwarded_to)
        self._end_forward_span(state, "reclaimed", peer_id)
        state.forwarded_to = None
        state.forwarded_at = 0.0
        state.forward_acked = False
        state.forward_last_sent = 0.0
        self.stats.forwards_reclaimed += 1
        if self._events is not None:
            self._events.record(
                ev.FORWARD_RECLAIMED,
                node=peer_id,
                ts=self.clock.now(),
                tasklet_id=str(state.tasklet_id),
                reason=reason,
            )
        return self._issue(state, state.qoc.redundancy)

    def _reclaim_forwards_to(self, peer_id: str, reason: str) -> list[Envelope]:
        out: list[Envelope] = []
        for state in list(self._tasklets.values()):
            if state.forwarded_to is not None and str(state.forwarded_to) == peer_id:
                out.extend(self._reclaim_forward(state, reason))
        return out

    def _observe_peer(
        self, broker_id: str, epoch: str, now: float
    ) -> list[Envelope]:
        """Fold a peer sighting into the table; react to transitions."""
        out: list[Envelope] = []
        for transition in self.federation.observe(broker_id, epoch, now):
            if transition == PEER_CAME_UP and self._events is not None:
                self._events.record(
                    ev.PEER_UP, node=broker_id, ts=now, epoch=epoch
                )
            elif transition == PEER_EPOCH_CHANGED:
                # The previous incarnation's in-memory state — including
                # everything we forwarded to it — is gone.
                out.extend(
                    self._reclaim_forwards_to(
                        broker_id, reason="peer restarted (epoch changed)"
                    )
                )
        return out

    def _on_peer_hello(self, body: PeerHello) -> list[Envelope]:
        out = self._observe_peer(body.broker_id, body.epoch, self.clock.now())
        if body.reply_expected:
            out.append(
                self._send(
                    PeerHello(
                        broker_id=str(self.node_id),
                        epoch=self.federation.epoch,
                    ),
                    NodeId(body.broker_id),
                )
            )
        return out

    def _on_gossip(self, body: GossipDigest) -> list[Envelope]:
        now = self.clock.now()
        out = self._observe_peer(body.broker_id, body.epoch, now)
        self.federation.update_load(
            body.broker_id,
            providers_total=body.providers_total,
            providers_alive=body.providers_alive,
            free_slots=body.free_slots,
            pending_tasklets=body.pending_tasklets,
            backlog_replicas=body.backlog_replicas,
            grades=body.grades,
        )
        if self._fed_metrics is not None:
            self._fed_metrics.gossip.labels(direction="in").inc()
        return out

    def _federation_tick(self, now: float) -> list[Envelope]:
        """Gossip, peer failure detection, and unacked-forward re-sends."""
        out: list[Envelope] = []
        dead, gossip_due = self.federation.tick(now)
        for peer_id in dead:
            self._raise_alert(ev.PEER_DOWN, node=peer_id, ts=now)
            out.extend(self._on_peer_dead(peer_id, now))
        if gossip_due and self.federation.peers:
            digest = self._build_digest(now)
            for peer_id in self.federation.peer_ids():
                out.append(self._send(digest, NodeId(peer_id)))
                if self._fed_metrics is not None:
                    self._fed_metrics.gossip.labels(direction="out").inc()
        resend_after = self.federation.config.forward_resend_interval
        for state in list(self._tasklets.values()):
            if state.done or state.forwarded_to is None or state.forward_acked:
                continue
            if now - state.forward_last_sent < resend_after:
                continue
            peer = self.federation.peers.get(str(state.forwarded_to))
            if peer is not None and peer.alive:
                # Safe to repeat: the peer admits forwards idempotently.
                out.append(self._forward_envelope(state, now))
        if self._fed_metrics is not None:
            self._fed_metrics.peers_alive.set(len(self.federation.alive_peers()))
        return out

    def _on_peer_dead(self, peer_id: str, now: float) -> list[Envelope]:
        out = self._reclaim_forwards_to(peer_id, reason="peer broker dead")
        journal_path = self.federation.config.peer_journals.get(peer_id)
        if (
            journal_path
            and self.federation.successor_of(peer_id) == str(self.node_id)
        ):
            out.extend(self._adopt_journal(peer_id, journal_path, now))
        return out

    def _adopt_journal(
        self, peer_id: str, path: str, now: float
    ) -> list[Envelope]:
        """Adopt a dead peer's journal (this broker is its successor).

        Completions become re-deliverable here (consumers failing over
        get journalled outcomes instead of re-executions); pending
        admissions are re-admitted and executed.  Origin-tagged entries
        are skipped by ``_admit_from_journal`` — their origin broker
        reclaims them itself.
        """
        try:
            snapshot = replay_journal(path)
        except OSError:
            return []
        out: list[Envelope] = []
        adopted_completions = 0
        adopted_pending = 0
        for completion in snapshot.completions.values():
            if completion.key in self._completed or completion.key in self._tasklets:
                continue
            self._remember_completion(completion)
            adopted_completions += 1
        for entry in snapshot.pending:
            state = self._admit_from_journal(entry)
            if state is None:
                continue
            if self.journal is not None:
                self.journal.record_admitted(
                    state.key,
                    str(state.consumer_id),
                    entry["tasklet"],
                    ts=now,
                )
            adopted_pending += 1
            out.extend(self._issue(state, state.qoc.redundancy))
        self.stats.completions_adopted += adopted_completions
        self.stats.tasklets_adopted += adopted_pending
        if self._fed_metrics is not None:
            if adopted_completions:
                self._fed_metrics.handoff.labels(kind="complete").inc(
                    adopted_completions
                )
            if adopted_pending:
                self._fed_metrics.handoff.labels(kind="pending").inc(
                    adopted_pending
                )
        if self._events is not None:
            self._events.record(
                ev.JOURNAL_HANDOFF,
                node=peer_id,
                ts=now,
                successor=str(self.node_id),
                pending=adopted_pending,
                completions=adopted_completions,
                malformed=snapshot.malformed,
            )
        return out

    def _build_digest(self, now: float) -> GossipDigest:
        records = self.registry.records()
        grades: dict[str, int] = {}
        if self.health is not None:
            for card in self.health.scorecards(records, now):
                grades[card.grade] = grades.get(card.grade, 0) + 1
        return GossipDigest(
            broker_id=str(self.node_id),
            epoch=self.federation.epoch,
            sent_at=now,
            providers_total=len(records),
            providers_alive=sum(1 for record in records if record.alive),
            free_slots=sum(view.free_slots for view in self.registry.views()),
            pending_tasklets=len(self._tasklets),
            backlog_replicas=sum(
                state.pending_replicas for state in self._tasklets.values()
            ),
            grades=grades,
        )

    # -- failure handling ---------------------------------------------------------

    def _fail_provider_executions(self, provider_id: NodeId) -> list[Envelope]:
        """Convert every outstanding execution on a dead provider into a
        PROVIDER_LOST record and let the vote logic re-issue."""
        out: list[Envelope] = []
        now = self.clock.now()
        provider = self.registry.get(provider_id)
        for state in list(self._tasklets.values()):
            lost = [
                outstanding
                for outstanding in state.outstanding.values()
                if outstanding.provider_id == provider_id
            ]
            for outstanding in lost:
                state.outstanding.pop(outstanding.execution_id, None)
                self._by_execution.pop(outstanding.execution_id, None)
                if self.health is not None:
                    self.health.watchdog.on_lost(str(outstanding.execution_id))
                self.stats.executions_lost += 1
                self.stats.executions_failed += 1
                if provider is not None:
                    # Same accounting path as results and timeouts: frees
                    # the slot (no phantom ``outstanding`` load if the
                    # provider re-registers later) and grades the loss
                    # into ``reliability``.
                    provider.record_result(ok=False, instructions=0, duration=0.0)
                record = ExecutionRecord(
                    execution_id=outstanding.execution_id,
                    tasklet_id=state.tasklet_id,
                    provider_id=provider_id,
                    status=ExecutionStatus.PROVIDER_LOST,
                    error="provider failed or left",
                    started_at=outstanding.issued_at,
                    finished_at=now,
                )
                if self._metrics is not None:
                    self._metrics.execution_results.labels(
                        status=record.status.value
                    ).inc()
                self._end_assign_span(state, outstanding, record.status.value)
                out.extend(self._fold_record(state, record))
        return out

    def _expire_executions(self, now: float) -> list[Envelope]:
        """Re-issue executions that outlived their timeout/deadline."""
        out: list[Envelope] = []
        for state in list(self._tasklets.values()):
            horizon = self.config.execution_timeout
            if state.qoc.deadline_s is not None:
                horizon = (
                    state.qoc.deadline_s
                    if horizon is None
                    else min(horizon, state.qoc.deadline_s)
                )
            if horizon is None:
                continue
            expired = [
                outstanding
                for outstanding in state.outstanding.values()
                if now - outstanding.issued_at > horizon
            ]
            for outstanding in expired:
                state.outstanding.pop(outstanding.execution_id, None)
                self._by_execution.pop(outstanding.execution_id, None)
                if self.health is not None:
                    self.health.watchdog.on_lost(str(outstanding.execution_id))
                self.stats.executions_timed_out += 1
                self.stats.executions_failed += 1
                provider = self.registry.get(outstanding.provider_id)
                if provider is not None:
                    # Unified accounting (see _fail_provider_executions).
                    provider.record_result(ok=False, instructions=0, duration=0.0)
                out.append(
                    self._send(
                        CancelExecution(execution_id=outstanding.execution_id),
                        outstanding.provider_id,
                    )
                )
                record = ExecutionRecord(
                    execution_id=outstanding.execution_id,
                    tasklet_id=state.tasklet_id,
                    provider_id=outstanding.provider_id,
                    status=ExecutionStatus.TIMEOUT,
                    error=f"no result within {horizon}s",
                    started_at=outstanding.issued_at,
                    finished_at=now,
                )
                if self._metrics is not None:
                    self._metrics.execution_results.labels(
                        status=record.status.value
                    ).inc()
                self._end_assign_span(state, outstanding, record.status.value)
                out.extend(self._fold_record(state, record))
        return out

    # -- health & alerts ---------------------------------------------------------

    def _run_watchdog(self, now: float) -> None:
        """Straggler detection + health gauges, once per tick."""
        if self.health is None:
            return
        for alert in self.health.watchdog.check(now):
            self._raise_alert(
                ev.STRAGGLER_ALERT,
                node=alert.provider_id,
                ts=now,
                execution_id=alert.execution_id,
                tasklet_id=alert.tasklet_id,
                expected_s=round(alert.expected_s, 6),
                elapsed_s=round(alert.elapsed_s, 6),
                multiple=alert.multiple,
            )
        metrics = self._health_metrics
        if metrics is None:
            return
        metrics.stragglers_active.set(len(self.health.watchdog.active_stragglers()))
        counts = {grade: 0 for grade in ("healthy", "degraded", "unhealthy")}
        for card in self.health.scorecards(self.registry.records(), now):
            metrics.provider_grade.labels(provider=card.provider_id).set(
                GRADE_RANK[card.grade]
            )
            counts[card.grade] = counts.get(card.grade, 0) + 1
        for grade, count in counts.items():
            metrics.providers_by_grade.labels(grade=grade).set(count)

    def _raise_alert(
        self, kind: str, node: str = "", ts: float | None = None, **attrs
    ) -> None:
        """Record an operator alert: flight-recorder event + counter."""
        if self._events is not None:
            self._events.record(kind, node=node, ts=ts, **attrs)
        if self._health_metrics is not None:
            self._health_metrics.alerts.labels(kind=kind).inc()

    def health_snapshot(self) -> dict:
        """The ``/healthz`` document: pool status plus provider scorecards.

        Works with telemetry disabled too (basic liveness only), so the
        ObsServer health callback never depends on construction order.
        """
        now = self.clock.now()
        records = list(self.registry.records())
        doc: dict = {
            "role": "broker",
            "node": str(self.node_id),
            "providers_total": len(records),
            "providers_alive": sum(1 for record in records if record.alive),
            "pending_tasklets": len(self._tasklets),
            "pending_workflows": len(self._workflows),
        }
        if self._workflows:
            doc["workflows"] = [
                {
                    "workflow_id": wf.workflow_id,
                    "consumer": str(wf.consumer_id),
                    "nodes": len(wf.spec.nodes),
                    "states": wf.scheduler.counts(),
                    "age_s": round(max(0.0, now - wf.submitted_at), 6),
                }
                for wf in list(self._workflows.values())[:16]
            ]
        if self.federation is not None:
            doc["federation"] = {
                "epoch": self.federation.epoch,
                "peers": [
                    peer.to_dict(now)
                    for peer in self.federation.peers.values()
                ],
                "forwarded_pending": sum(
                    1
                    for state in self._tasklets.values()
                    if state.forwarded_to is not None
                ),
            }
        if self.health is None:
            doc["status"] = "ok" if doc["providers_alive"] else "unhealthy"
            return doc
        cards = self.health.scorecards(records, now)
        doc["status"] = overall_status(cards)
        doc["providers"] = [card.to_dict() for card in cards]
        doc["stragglers"] = [
            {
                "execution_id": watch.execution_id,
                "provider_id": watch.provider_id,
                "tasklet_id": watch.tasklet_id,
                "elapsed_s": round(max(0.0, now - watch.issued_at), 6),
                "expected_s": (
                    round(watch.expected_s, 6)
                    if watch.expected_s is not None
                    else None
                ),
            }
            for watch in self.health.watchdog.active_stragglers()
        ]
        return doc

    # -- helpers ----------------------------------------------------------------

    def _end_assign_span(
        self,
        state: _TaskletState,
        outstanding: _Outstanding | None,
        status: str,
    ) -> None:
        """Close the ``broker.assign`` span for a terminal execution."""
        if (
            self._tracer is None
            or outstanding is None
            or outstanding.trace_ctx is None
        ):
            return
        self._tracer.record(
            name="broker.assign",
            context=outstanding.trace_ctx,
            node=str(self.node_id),
            start=outstanding.issued_at,
            end=self.clock.now(),
            parent_id=state.trace_ctx.span_id if state.trace_ctx else None,
            status=status,
            attrs={
                "execution_id": str(outstanding.execution_id),
                "provider_id": str(outstanding.provider_id),
            },
        )

    def _end_forward_span(
        self, state: _TaskletState, status: str, peer_id: str
    ) -> None:
        """Close the ``broker.forward`` span for a resolved forward."""
        ctx = state.forward_trace_ctx
        if self._tracer is None or ctx is None:
            return
        state.forward_trace_ctx = None
        self._tracer.record(
            name="broker.forward",
            context=ctx,
            node=str(self.node_id),
            start=state.forwarded_at or state.submitted_at,
            end=self.clock.now(),
            parent_id=state.trace_ctx.span_id if state.trace_ctx else None,
            status=status,
            attrs={"tasklet_id": str(state.tasklet_id), "peer": peer_id},
        )

    def _send(self, body: MessageBody, dst: NodeId) -> Envelope:
        return body.envelope(src=self.node_id, dst=dst)

    @property
    def pending_tasklets(self) -> int:
        """Tasklets admitted but not yet completed (for tests/monitoring)."""
        return len(self._tasklets)
