"""Command-line interface: the Tasklet toolchain.

    python -m repro compile  prog.tl -o prog.tvm   # source -> bytecode JSON
    python -m repro disasm   prog.tl               # human-readable listing
    python -m repro run      prog.tl 12 3.5        # execute locally
    python -m repro bench                          # TVM self-benchmark
    python -m repro simulate --providers desktop=2,sbc=4 --tasks 30
    python -m repro metrics  --format prom         # telemetered sim run
    python -m repro report F3 F4                   # regenerate experiments

``compile``/``disasm``/``run`` accept either Tasklet source (``.tl``, or
anything that does not parse as JSON) or compiled-bytecode JSON, so the
subcommands compose: compile once, disassemble or run the artifact later.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .common.errors import TaskletError
from .tvm.bytecode import CompiledProgram
from .tvm.compiler import compile_source
from .tvm.disassembler import disassemble
from .tvm.vm import DEFAULT_FUEL, VMLimits, execute


def _load_program(path: str) -> CompiledProgram:
    """Load a program from source text or bytecode JSON."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return CompiledProgram.from_dict(json.loads(text))
    return compile_source(text)


def _parse_cli_value(text: str):
    """Parse one command-line Tasklet argument.

    JSON first (numbers, bools, arrays, quoted strings); bare words fall
    back to strings, so ``run prog.tl 3 4.5 true hello`` all work.
    """
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _cmd_compile(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    disasm = args.disasm or args.quicken  # --quicken implies --disasm
    payload = json.dumps(program.to_dict(), indent=None, separators=(",", ":"))
    if args.output:
        Path(args.output).write_text(payload)
        instructions = sum(len(f.code) for f in program.functions)
        print(
            f"wrote {args.output}: {len(program.functions)} functions, "
            f"{instructions} instructions, fingerprint {program.fingerprint()}"
        )
    elif not disasm:
        print(payload)
    if disasm:
        # Quickening trusts verifier invariants, so verify first (a
        # no-op for freshly compiled source, load-bearing for JSON input).
        program.verify()
        print(disassemble(program, quickened=args.quicken))
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    if args.quicken:
        program.verify()
    print(disassemble(program, quickened=args.quicken))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    call_args = [_parse_cli_value(value) for value in args.args]
    result, stats = execute(
        program,
        entry=args.entry,
        args=call_args,
        limits=VMLimits(fuel=args.fuel),
        seed=args.seed,
    )
    print(json.dumps(result))
    if args.stats:
        print(
            f"instructions={stats.instructions} "
            f"calls={stats.function_calls} builtins={stats.builtin_calls} "
            f"max_stack={stats.max_stack_depth}",
            file=sys.stderr,
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .provider.benchmark import run_benchmark

    report = run_benchmark(limit=args.limit, repetitions=args.repetitions)
    print(f"TVM self-benchmark: {report.describe()}")
    return 0


def _parse_pool_spec(spec: str) -> dict[str, int]:
    pool: dict[str, int] = {}
    for part in spec.split(","):
        name, _, count = part.partition("=")
        pool[name.strip()] = int(count or 1)
    return pool


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .core.qoc import QoC
    from .sim.devices import make_pool
    from .sim.runner import Simulation
    from .sim.workloads import prime_count

    simulation = Simulation(seed=args.seed, strategy=args.strategy)
    pool = make_pool(_parse_pool_spec(args.providers), seed=args.seed)
    for config in pool:
        simulation.add_provider(config)
    consumer = simulation.add_consumer()
    workload = prime_count(tasks=args.tasks, limit=args.limit)
    qoc = QoC(redundancy=args.redundancy) if args.redundancy > 1 else QoC()
    futures = consumer.library.map(workload.program, workload.args_list, qoc=qoc)
    makespan = simulation.run(max_time=1e5)
    ok = sum(1 for future in futures if future.done and future.wait(0).ok)
    stats = simulation.broker.stats
    print(f"pool               : {args.providers} ({len(pool)} providers)")
    print(f"strategy           : {args.strategy}")
    print(f"tasks              : {args.tasks} x prime_count({args.limit})")
    print(f"completed          : {ok}/{args.tasks}")
    print(f"virtual makespan   : {makespan * 1e3:.1f} ms")
    print(f"executions issued  : {stats.executions_issued}")
    print(f"messages delivered : {simulation.messages_delivered}")
    print(f"total cost billed  : {simulation.broker.ledger.total_billed:.4f}")
    return 0 if ok == args.tasks else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run a short telemetered simulation and dump what it observed."""
    from .bench.simlib import run_workload
    from .obs.telemetry import Telemetry
    from .obs.trace import format_trace
    from .sim.devices import make_pool

    from .sim.workloads import prime_count

    telemetry = Telemetry()
    pool = make_pool(_parse_pool_spec(args.providers), seed=args.seed)
    workload = prime_count(tasks=args.tasks, limit=args.limit)
    run_workload(
        workload,
        pool,
        strategy=args.strategy,
        seed=args.seed,
        collect_metrics=True,
        telemetry=telemetry,
    )
    if args.format == "prom":
        print(telemetry.registry.render_prometheus(), end="")
    elif args.format == "json":
        print(json.dumps(telemetry.registry.snapshot(), indent=2, sort_keys=True))
    else:  # traces
        print(format_trace(telemetry.spans.spans()))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .bench.report import generate

    ok = generate(
        experiment_ids=args.ids or None,
        quick=not args.full,
        output_path=args.output,
    )
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Tasklet middleware toolchain"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    compile_cmd = commands.add_parser("compile", help="compile source to bytecode JSON")
    compile_cmd.add_argument("file")
    compile_cmd.add_argument("-o", "--output", help="output path (default: stdout)")
    compile_cmd.add_argument(
        "--disasm",
        action="store_true",
        help="print a human-readable listing instead of bytecode JSON",
    )
    compile_cmd.add_argument(
        "--quicken",
        action="store_true",
        help="with --disasm (implied): show the provider's fused internal "
        "form side by side with the portable bytecode",
    )
    compile_cmd.set_defaults(handler=_cmd_compile)

    disasm_cmd = commands.add_parser("disasm", help="disassemble a program")
    disasm_cmd.add_argument("file")
    disasm_cmd.add_argument(
        "--quicken",
        action="store_true",
        help="show the provider's fused internal form side by side",
    )
    disasm_cmd.set_defaults(handler=_cmd_disasm)

    run_cmd = commands.add_parser("run", help="execute a program locally")
    run_cmd.add_argument("file")
    run_cmd.add_argument("args", nargs="*", help="entry arguments (JSON or bare words)")
    run_cmd.add_argument("--entry", default="main")
    run_cmd.add_argument("--seed", type=int, default=0)
    run_cmd.add_argument("--fuel", type=int, default=DEFAULT_FUEL)
    run_cmd.add_argument("--stats", action="store_true", help="print VM stats to stderr")
    run_cmd.set_defaults(handler=_cmd_run)

    bench_cmd = commands.add_parser("bench", help="run the TVM self-benchmark")
    bench_cmd.add_argument("--limit", type=int, default=4000)
    bench_cmd.add_argument("--repetitions", type=int, default=3)
    bench_cmd.set_defaults(handler=_cmd_bench)

    simulate_cmd = commands.add_parser(
        "simulate", help="run a quick simulated deployment"
    )
    simulate_cmd.add_argument(
        "--providers", default="desktop=2,smartphone=2",
        help="pool spec, e.g. desktop=2,sbc=4",
    )
    simulate_cmd.add_argument("--tasks", type=int, default=20)
    simulate_cmd.add_argument("--limit", type=int, default=1000)
    simulate_cmd.add_argument("--strategy", default="qoc")
    simulate_cmd.add_argument("--redundancy", type=int, default=1)
    simulate_cmd.add_argument("--seed", type=int, default=0)
    simulate_cmd.set_defaults(handler=_cmd_simulate)

    metrics_cmd = commands.add_parser(
        "metrics",
        help="run a telemetered simulation and print its metrics/traces",
    )
    metrics_cmd.add_argument(
        "--providers", default="desktop=2,smartphone=2",
        help="pool spec, e.g. desktop=2,sbc=4",
    )
    metrics_cmd.add_argument("--tasks", type=int, default=10)
    metrics_cmd.add_argument("--limit", type=int, default=500)
    metrics_cmd.add_argument("--strategy", default="qoc")
    metrics_cmd.add_argument("--seed", type=int, default=0)
    metrics_cmd.add_argument(
        "--format", choices=("prom", "json", "traces"), default="prom",
        help="prom = Prometheus text exposition, json = registry snapshot, "
        "traces = span-tree dump",
    )
    metrics_cmd.set_defaults(handler=_cmd_metrics)

    report_cmd = commands.add_parser(
        "report", help="run experiments and rewrite EXPERIMENTS.md"
    )
    report_cmd.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    report_cmd.add_argument("--full", action="store_true")
    report_cmd.add_argument("--output", default="EXPERIMENTS.md")
    report_cmd.set_defaults(handler=_cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except TaskletError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
