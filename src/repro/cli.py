"""Command-line interface: the Tasklet toolchain.

    python -m repro compile  prog.tl -o prog.tvm   # source -> bytecode JSON
    python -m repro disasm   prog.tl               # human-readable listing
    python -m repro run      prog.tl 12 3.5        # execute locally
    python -m repro bench                          # TVM self-benchmark
    python -m repro simulate --providers desktop=2,sbc=4 --tasks 30
    python -m repro metrics  --format prom         # telemetered sim run
    python -m repro metrics  --from-url http://127.0.0.1:9150   # live scrape
    python -m repro top      http://127.0.0.1:9150 # live cluster view
    python -m repro trace    wf-1 --url http://127.0.0.1:9150  # workflow trace
    python -m repro journal  work_journal.jsonl    # inspect broker durability
    python -m repro broker   --port 7070 --broker-id b1 \
                             --peer b2=127.0.0.1:7071   # federated broker
    python -m repro report F3 F4                   # regenerate experiments

``compile``/``disasm``/``run`` accept either Tasklet source (``.tl``, or
anything that does not parse as JSON) or compiled-bytecode JSON, so the
subcommands compose: compile once, disassemble or run the artifact later.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .common.errors import TaskletError
from .tvm.bytecode import CompiledProgram
from .tvm.compiler import compile_source
from .tvm.disassembler import disassemble
from .tvm.vm import DEFAULT_FUEL, VMLimits, execute


def _load_program(path: str) -> CompiledProgram:
    """Load a program from source text or bytecode JSON."""
    text = Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return CompiledProgram.from_dict(json.loads(text))
    return compile_source(text)


def _parse_cli_value(text: str):
    """Parse one command-line Tasklet argument.

    JSON first (numbers, bools, arrays, quoted strings); bare words fall
    back to strings, so ``run prog.tl 3 4.5 true hello`` all work.
    """
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _cmd_compile(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    disasm = args.disasm or args.quicken  # --quicken implies --disasm
    payload = json.dumps(program.to_dict(), indent=None, separators=(",", ":"))
    if args.output:
        Path(args.output).write_text(payload)
        instructions = sum(len(f.code) for f in program.functions)
        print(
            f"wrote {args.output}: {len(program.functions)} functions, "
            f"{instructions} instructions, fingerprint {program.fingerprint()}"
        )
    elif not disasm:
        print(payload)
    if disasm:
        # Quickening trusts verifier invariants, so verify first (a
        # no-op for freshly compiled source, load-bearing for JSON input).
        program.verify()
        print(disassemble(program, quickened=args.quicken))
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    if args.quicken:
        program.verify()
    print(disassemble(program, quickened=args.quicken))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    program = _load_program(args.file)
    call_args = [_parse_cli_value(value) for value in args.args]
    result, stats = execute(
        program,
        entry=args.entry,
        args=call_args,
        limits=VMLimits(fuel=args.fuel),
        seed=args.seed,
    )
    print(json.dumps(result))
    if args.stats:
        print(
            f"instructions={stats.instructions} "
            f"calls={stats.function_calls} builtins={stats.builtin_calls} "
            f"max_stack={stats.max_stack_depth}",
            file=sys.stderr,
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .provider.benchmark import run_benchmark

    report = run_benchmark(limit=args.limit, repetitions=args.repetitions)
    print(f"TVM self-benchmark: {report.describe()}")
    return 0


def _parse_pool_spec(spec: str) -> dict[str, int]:
    pool: dict[str, int] = {}
    for part in spec.split(","):
        name, _, count = part.partition("=")
        pool[name.strip()] = int(count or 1)
    return pool


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .core.qoc import QoC
    from .sim.devices import make_pool
    from .sim.runner import Simulation
    from .sim.workloads import prime_count

    simulation = Simulation(seed=args.seed, strategy=args.strategy)
    pool = make_pool(_parse_pool_spec(args.providers), seed=args.seed)
    for config in pool:
        simulation.add_provider(config)
    consumer = simulation.add_consumer()
    workload = prime_count(tasks=args.tasks, limit=args.limit)
    qoc = QoC(redundancy=args.redundancy) if args.redundancy > 1 else QoC()
    futures = consumer.library.map(workload.program, workload.args_list, qoc=qoc)
    makespan = simulation.run(max_time=1e5)
    ok = sum(1 for future in futures if future.done and future.wait(0).ok)
    stats = simulation.broker.stats
    print(f"pool               : {args.providers} ({len(pool)} providers)")
    print(f"strategy           : {args.strategy}")
    print(f"tasks              : {args.tasks} x prime_count({args.limit})")
    print(f"completed          : {ok}/{args.tasks}")
    print(f"virtual makespan   : {makespan * 1e3:.1f} ms")
    print(f"executions issued  : {stats.executions_issued}")
    print(f"messages delivered : {simulation.messages_delivered}")
    print(f"total cost billed  : {simulation.broker.ledger.total_billed:.4f}")
    return 0 if ok == args.tasks else 1


def _fetch(url: str, timeout: float = 5.0) -> str:
    """GET one ObsServer endpoint; raises TaskletError on failure."""
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.read().decode("utf-8", "replace")
    except urllib.error.HTTPError as exc:
        # ObsServer error statuses (healthz 503, 404) still carry a
        # meaningful JSON document; surface it instead of failing.
        return exc.read().decode("utf-8", "replace")
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise TaskletError(f"cannot reach {url}: {exc}") from exc


def _fetch_json(url: str, timeout: float = 5.0) -> dict:
    try:
        return json.loads(_fetch(url, timeout))
    except json.JSONDecodeError as exc:
        raise TaskletError(f"malformed JSON from {url}: {exc}") from exc


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run a short telemetered simulation and dump what it observed."""
    from .bench.simlib import run_workload
    from .obs.telemetry import Telemetry
    from .obs.trace import format_trace
    from .sim.devices import make_pool

    from .sim.workloads import prime_count

    if args.from_url:
        base = args.from_url.rstrip("/")
        if args.format == "prom":
            print(_fetch(f"{base}/metrics"), end="")
        elif args.format == "json":
            print(
                json.dumps(
                    _fetch_json(f"{base}/metrics?format=json"),
                    indent=2,
                    sort_keys=True,
                )
            )
        else:  # traces
            print(_fetch(f"{base}/traces"), end="")
        return 0

    telemetry = Telemetry()
    pool = make_pool(_parse_pool_spec(args.providers), seed=args.seed)
    workload = prime_count(tasks=args.tasks, limit=args.limit)
    run_workload(
        workload,
        pool,
        strategy=args.strategy,
        seed=args.seed,
        collect_metrics=True,
        telemetry=telemetry,
    )
    if args.format == "prom":
        print(telemetry.registry.render_prometheus(), end="")
    elif args.format == "json":
        print(json.dumps(telemetry.registry.snapshot(), indent=2, sort_keys=True))
    else:  # traces
        print(format_trace(telemetry.spans.spans()))
    return 0


#: Width of the ``repro trace`` Gantt bar column, in characters.
_GANTT_WIDTH = 40


def _gantt_bar(start: float, end: float, lo: float, hi: float) -> str:
    """One timeline bar positioned inside the [lo, hi] window."""
    window = max(hi - lo, 1e-12)
    left = int(round((start - lo) / window * _GANTT_WIDTH))
    right = int(round((end - lo) / window * _GANTT_WIDTH))
    left = min(max(left, 0), _GANTT_WIDTH)
    right = min(max(right, left + 1), _GANTT_WIDTH)
    return "." * left + "#" * (right - left) + "." * (_GANTT_WIDTH - right)


def _render_trace(analysis) -> str:
    """The ``repro trace`` screen: Gantt timeline, critical path,
    per-provider attribution."""
    lines = [
        f"workflow {analysis.workflow_id}  trace {analysis.trace_id}",
        f"makespan {analysis.makespan * 1e3:.3f} ms  "
        f"nodes {len(analysis.nodes)}  "
        f"critical path {' -> '.join(analysis.critical_path) or '(none)'}",
    ]
    if analysis.nodes:
        lines.append("")
        lines.append(
            f"{'NODE':<14} {'TIMELINE':<{_GANTT_WIDTH}} {'DUR MS':>9} "
            f"{'STATUS':<9} {'PROVIDER':<14} {'BROKER':<10}"
        )
        critical = set(analysis.critical_path)
        for node in analysis.nodes:
            marker = "*" if node.node_id in critical else " "
            lines.append(
                f"{marker}{node.node_id:<13} "
                f"{_gantt_bar(node.start, node.end, analysis.start, analysis.end)} "
                f"{node.duration * 1e3:>9.3f} {node.status:<9} "
                f"{node.provider or '-':<14} {node.broker:<10}"
            )
        lines.append(f"{'':14} (* = on the critical path)")
    totals = analysis.phase_totals()
    critical_s = sum(totals.values())
    if critical_s > 0:
        lines.append("")
        lines.append("critical-path attribution:")
        for phase in ("scheduling", "queue", "wire", "vm"):
            value = totals.get(phase, 0.0)
            share = value / critical_s * 100.0 if critical_s else 0.0
            lines.append(
                f"  {phase:<11} {value * 1e3:>9.3f} ms  {share:>5.1f}%"
            )
    providers = analysis.provider_attribution()
    if providers:
        lines.append("")
        lines.append(
            f"{'PROVIDER':<16} {'NODES':>6} {'VM MS':>9} "
            f"{'CRIT NODES':>11} {'CRIT MS':>9}"
        )
        for row in providers:
            lines.append(
                f"{row['provider']:<16} {row['nodes']:>6} "
                f"{row['vm_s'] * 1e3:>9.3f} {row['critical_nodes']:>11} "
                f"{row['critical_s'] * 1e3:>9.3f}"
            )
    return "\n".join(lines)


def _cmd_trace(args: argparse.Namespace) -> int:
    """Reassemble and render one workflow's trace from live ObsServers."""
    from .obs.analysis import analyze_workflow, chrome_trace_json
    from .obs.trace import Span

    urls = args.url or ["http://127.0.0.1:9150"]
    merged: dict[tuple[str, str], Span] = {}
    reached = 0
    errors: list[str] = []
    for url in urls:
        base = url.rstrip("/")
        query = f"workflow_id={args.workflow_id}"
        if len(urls) > 1:
            # Several explicit URLs: pull each server's local spans and
            # merge here, instead of letting every server re-scrape its
            # own peer list.
            query += "&scope=local"
        try:
            data = _fetch_json(f"{base}/traces?{query}&format=json")
        except TaskletError as exc:
            errors.append(str(exc))
            continue
        reached += 1
        for item in data.get("spans", []):
            try:
                span = Span.from_dict(item)
            except (KeyError, TypeError, ValueError):
                continue
            merged.setdefault((span.trace_id, span.span_id), span)
    if not reached:
        raise TaskletError(
            "no ObsServer reachable: " + "; ".join(errors)
        )
    spans = sorted(merged.values(), key=lambda s: (s.start, s.span_id))
    if args.format == "chrome":
        print(chrome_trace_json(spans))
        return 0
    analysis = analyze_workflow(spans, args.workflow_id)
    if analysis is None:
        print(
            f"error: no trace for workflow {args.workflow_id!r} "
            f"on {len(urls)} server(s)",
            file=sys.stderr,
        )
        return 1
    if args.format == "json":
        print(json.dumps(analysis.to_dict(), indent=2, sort_keys=True))
    else:
        print(_render_trace(analysis))
    return 0


def _render_top(health: dict, alerts: list[dict],
                latency: dict | None = None) -> str:
    """The ``repro top`` screen: pool summary, scorecards, alerts."""
    lines = [
        "cluster {node}: status={status}  providers={alive}/{total} alive  "
        "pending={pending}".format(
            node=health.get("node", "?"),
            status=health.get("status", "?"),
            alive=health.get("providers_alive", "?"),
            total=health.get("providers_total", "?"),
            pending=health.get("pending_tasklets", "?"),
        )
    ]
    transport = health.get("transport") or {}
    if transport:
        codecs = transport.get("codecs") or {}
        mix = (
            " ".join(
                f"{codec}:{count}" for codec, count in sorted(codecs.items())
            )
            or "-"
        )
        lines.append(
            f"transport: {transport.get('loop', '?')}  "
            f"connections={transport.get('connections', 0)}  codecs=[{mix}]"
        )
    providers = health.get("providers") or []
    if providers:
        lines.append("")
        lines.append(
            f"{'PROVIDER':<18} {'CLASS':<12} {'GRADE':<10} {'BUSY':>7} "
            f"{'RELIAB':>7} {'SPEED':>10} {'HB AGE':>8} {'FLAPS':>6} {'STRAG':>6}"
        )
        for card in providers:
            busy = f"{card.get('outstanding', 0)}/{card.get('capacity', 0)}"
            grade = card.get("grade", "?")
            if not card.get("alive", True):
                grade = f"{grade}(dead)"
            lines.append(
                f"{card.get('provider_id', '?'):<18} "
                f"{card.get('device_class', '?'):<12} "
                f"{grade:<10} {busy:>7} "
                f"{card.get('reliability', 0):>7.2f} "
                f"{card.get('effective_speed', 0):>10.3g} "
                f"{card.get('heartbeat_age', 0):>7.1f}s "
                f"{card.get('flaps', 0):>6} {card.get('straggling', 0):>6}"
            )
    federation = health.get("federation") or {}
    peers = federation.get("peers") or []
    if peers:
        lines.append("")
        lines.append(
            f"{'PEER':<18} {'STATE':<8} {'EPOCH':<14} {'PROV':>7} "
            f"{'SLOTS':>6} {'PEND':>6} {'SEEN':>8}"
        )
        for peer in peers:
            age = peer.get("last_seen_age_s")
            seen = f"{age:.1f}s" if age is not None else "never"
            prov = (
                f"{peer.get('providers_alive', 0)}/"
                f"{peer.get('providers_total', 0)}"
            )
            lines.append(
                f"{peer.get('broker_id', '?'):<18} "
                f"{'alive' if peer.get('alive') else 'dead':<8} "
                f"{peer.get('epoch', '?') or '?':<14} {prov:>7} "
                f"{peer.get('free_slots', 0):>6} "
                f"{peer.get('pending_tasklets', 0):>6} {seen:>8}"
            )
    workflows = health.get("workflows") or []
    if workflows:
        lines.append("")
        lines.append(
            f"{'WORKFLOW':<22} {'CONSUMER':<14} {'NODES':>6} {'BLOCK':>6} "
            f"{'READY':>6} {'RUN':>5} {'DONE':>5} {'FAIL':>5} {'AGE':>8}"
        )
        for entry in workflows:
            states = entry.get("states", {})
            lines.append(
                f"{entry.get('workflow_id', '?'):<22} "
                f"{entry.get('consumer', '?'):<14} "
                f"{entry.get('nodes', 0):>6} "
                f"{states.get('blocked', 0):>6} "
                f"{states.get('ready', 0):>6} "
                f"{states.get('running', 0):>5} "
                f"{states.get('done', 0):>5} "
                f"{states.get('failed', 0):>5} "
                f"{entry.get('age_s', 0):>7.1f}s"
            )
    if latency and latency.get("nodes"):
        def fmt(key: str) -> str:
            value = latency.get(key)
            return f"{value * 1e3:.1f}ms" if value is not None else "-"

        lines.append("")
        lines.append(
            f"workflow latency: queue p50={fmt('queue_p50_s')} "
            f"p95={fmt('queue_p95_s')}  makespan p50={fmt('makespan_p50_s')} "
            f"p95={fmt('makespan_p95_s')}  "
            f"({latency.get('workflows', 0)} workflows, "
            f"{latency.get('nodes', 0)} nodes)"
        )
    stragglers = health.get("stragglers") or []
    if stragglers:
        lines.append("")
        lines.append("stragglers:")
        for watch in stragglers:
            lines.append(
                f"  {watch.get('execution_id', '?')} on "
                f"{watch.get('provider_id', '?')}: "
                f"{watch.get('elapsed_s', 0):.2f}s elapsed "
                f"(expected {watch.get('expected_s', 0)}s)"
            )
    if alerts:
        lines.append("")
        lines.append("recent alerts:")
        for event in alerts[-10:]:
            attrs = event.get("attrs", {})
            detail = " ".join(
                f"{key}={value}" for key, value in sorted(attrs.items())
            )
            lines.append(
                f"  [{event.get('ts', 0):.3f}] {event.get('kind', '?')} "
                f"node={event.get('node', '?')} {detail}"
            )
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    """Live cluster view polled from a running ObsServer."""
    import time

    from .obs.events import ALERT_KINDS

    base = args.url.rstrip("/")

    def poll() -> tuple[dict, list[dict], dict]:
        health = _fetch_json(f"{base}/healthz")
        events = _fetch_json(f"{base}/events?limit=200").get("events", [])
        alerts = [event for event in events if event.get("kind") in ALERT_KINDS]
        try:
            latency = _fetch_json(f"{base}/traces?format=summary")
        except TaskletError:
            latency = {}  # older server without the summary endpoint
        return health, alerts, latency

    if args.once:
        health, alerts, latency = poll()
        if args.format == "json":
            print(
                json.dumps(
                    {
                        "health": health,
                        "alerts": alerts,
                        "workflow_latency": latency,
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            print(_render_top(health, alerts, latency))
        return 0

    try:
        while True:
            try:
                screen = _render_top(*poll())
            except TaskletError as exc:
                screen = f"(unreachable: {exc})"
            # Clear and repaint; plain ANSI keeps this dependency-free.
            sys.stdout.write("\x1b[2J\x1b[H" + screen + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_journal(args: argparse.Namespace) -> int:
    """Inspect (and optionally compact) a broker work journal."""
    from .broker.journal import WorkJournal, replay_journal

    if not Path(args.file).exists():
        print(f"error: no journal at {args.file}", file=sys.stderr)
        return 2
    if args.compact:
        journal = WorkJournal(args.file)
        try:
            snapshot = journal.compact()
        finally:
            journal.close()
    else:
        snapshot = replay_journal(args.file)

    if args.format == "json":
        document = {
            "path": args.file,
            "admitted": snapshot.admitted,
            "completed": snapshot.completed,
            "malformed": snapshot.malformed,
            "pending": snapshot.pending,
            "completions": [
                completion.to_dict()
                for completion in snapshot.completions.values()
            ],
            "workflows": snapshot.workflows,
            "workflow_nodes": snapshot.workflow_nodes,
            "workflow_completions": list(
                snapshot.workflow_completions.values()
            ),
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0

    verb = "compacted to" if args.compact else "holds"
    print(f"journal    : {args.file}")
    print(
        f"records    : {verb} {snapshot.admitted} admitted, "
        f"{snapshot.completed} complete"
        + (f", {snapshot.malformed} malformed skipped" if snapshot.malformed else "")
    )
    print(f"pending    : {len(snapshot.pending)} tasklet(s)")
    if args.pending:
        for entry in snapshot.pending:
            tasklet = entry.get("tasklet", {})
            print(
                f"  {entry.get('key', '?'):<28} entry={tasklet.get('entry', '?')} "
                f"args={tasklet.get('args', '?')} ts={entry.get('ts', 0):.3f}"
            )
    ok_count = sum(1 for c in snapshot.completions.values() if c.ok)
    print(
        f"completions: {len(snapshot.completions)} retained "
        f"({ok_count} ok, {len(snapshot.completions) - ok_count} failed)"
    )
    if snapshot.workflows_admitted or snapshot.workflows_completed:
        print(
            f"workflows  : {len(snapshot.workflows)} pending, "
            f"{len(snapshot.workflow_completions)} completion(s) retained"
        )
        for entry in snapshot.workflows:
            workflow = entry.get("workflow", {})
            nodes = workflow.get("nodes") or []
            key = str(entry.get("key", "?"))
            print(
                f"  {key:<28} nodes={len(nodes)} ts={entry.get('ts', 0):.3f}"
            )
            if args.pending:
                consumer_id = str(entry.get("consumer_id", ""))
                workflow_id = str(workflow.get("workflow_id", ""))
                for node in nodes:
                    node_id = str(node.get("node_id", "?"))
                    node_key = f"{consumer_id}/{workflow_id}:{node_id}"
                    state = snapshot.workflow_node_state(node_key)
                    print(f"    {node_id:<22} state={state}")
        for outcome_record in snapshot.workflow_completions.values():
            outcome = outcome_record.get("outcome", {})
            verdict = "ok" if outcome.get("ok") else (
                f"failed at {outcome.get('failed_node', '?')}"
            )
            print(
                f"  {str(outcome_record.get('key', '?')):<28} "
                f"{verdict} "
                f"({outcome.get('nodes_total', 0)} nodes, "
                f"{outcome.get('nodes_memoized', 0)} memoized)"
            )
    return 0


def _parse_peer_spec(spec: str) -> tuple[str, str, int]:
    """Parse one ``--peer id=host:port`` argument."""
    peer_id, sep, address = spec.partition("=")
    host, sep2, port = address.rpartition(":")
    if not sep or not sep2 or not peer_id or not host:
        raise TaskletError(
            f"malformed --peer {spec!r}: expected id=host:port"
        )
    try:
        return peer_id, host, int(port)
    except ValueError as exc:
        raise TaskletError(f"malformed --peer port in {spec!r}") from exc


def _cmd_broker(args: argparse.Namespace) -> int:
    """Serve a (possibly federated) broker until interrupted."""
    import signal
    import threading

    from .obs.telemetry import Telemetry
    from .transport.tcp import TcpBroker

    peers = {}
    for spec in args.peer or []:
        peer_id, host, port = _parse_peer_spec(spec)
        peers[peer_id] = (host, port)
    peer_journals = {}
    for spec in args.peer_journal or []:
        peer_id, _, path = spec.partition("=")
        if not path:
            raise TaskletError(
                f"malformed --peer-journal {spec!r}: expected id=path"
            )
        peer_journals[peer_id] = path
    broker = TcpBroker(
        host=args.host,
        port=args.port,
        strategy=args.strategy,
        telemetry=Telemetry() if args.obs_port is not None else None,
        obs_port=args.obs_port,
        journal_path=args.journal,
        journal_sync=args.journal_sync,
        journal_compact_records=args.journal_compact_records,
        broker_id=args.broker_id,
        peers=peers or None,
        peer_journals=peer_journals or None,
        gossip_interval=args.gossip_interval,
    )
    broker.start()
    host, port = broker.address
    print(f"broker {broker.core.node_id} listening on {host}:{port}")
    if peers:
        print(f"federation peers: {', '.join(sorted(peers))}")
    if args.obs_port is not None:
        print(f"observability: http://{args.host}:{args.obs_port}")
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    broker.stop()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .bench.report import generate

    ok = generate(
        experiment_ids=args.ids or None,
        quick=not args.full,
        output_path=args.output,
    )
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Tasklet middleware toolchain"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    compile_cmd = commands.add_parser("compile", help="compile source to bytecode JSON")
    compile_cmd.add_argument("file")
    compile_cmd.add_argument("-o", "--output", help="output path (default: stdout)")
    compile_cmd.add_argument(
        "--disasm",
        action="store_true",
        help="print a human-readable listing instead of bytecode JSON",
    )
    compile_cmd.add_argument(
        "--quicken",
        action="store_true",
        help="with --disasm (implied): show the provider's fused internal "
        "form side by side with the portable bytecode",
    )
    compile_cmd.set_defaults(handler=_cmd_compile)

    disasm_cmd = commands.add_parser("disasm", help="disassemble a program")
    disasm_cmd.add_argument("file")
    disasm_cmd.add_argument(
        "--quicken",
        action="store_true",
        help="show the provider's fused internal form side by side",
    )
    disasm_cmd.set_defaults(handler=_cmd_disasm)

    run_cmd = commands.add_parser("run", help="execute a program locally")
    run_cmd.add_argument("file")
    run_cmd.add_argument("args", nargs="*", help="entry arguments (JSON or bare words)")
    run_cmd.add_argument("--entry", default="main")
    run_cmd.add_argument("--seed", type=int, default=0)
    run_cmd.add_argument("--fuel", type=int, default=DEFAULT_FUEL)
    run_cmd.add_argument("--stats", action="store_true", help="print VM stats to stderr")
    run_cmd.set_defaults(handler=_cmd_run)

    bench_cmd = commands.add_parser("bench", help="run the TVM self-benchmark")
    bench_cmd.add_argument("--limit", type=int, default=4000)
    bench_cmd.add_argument("--repetitions", type=int, default=3)
    bench_cmd.set_defaults(handler=_cmd_bench)

    simulate_cmd = commands.add_parser(
        "simulate", help="run a quick simulated deployment"
    )
    simulate_cmd.add_argument(
        "--providers", default="desktop=2,smartphone=2",
        help="pool spec, e.g. desktop=2,sbc=4",
    )
    simulate_cmd.add_argument("--tasks", type=int, default=20)
    simulate_cmd.add_argument("--limit", type=int, default=1000)
    simulate_cmd.add_argument("--strategy", default="qoc")
    simulate_cmd.add_argument("--redundancy", type=int, default=1)
    simulate_cmd.add_argument("--seed", type=int, default=0)
    simulate_cmd.set_defaults(handler=_cmd_simulate)

    metrics_cmd = commands.add_parser(
        "metrics",
        help="run a telemetered simulation and print its metrics/traces",
        epilog=(
            "Two modes. Default: run a short simulated workload in-process "
            "and dump its telemetry. With --from-url URL: scrape a live "
            "ObsServer instead (prom -> GET /metrics, json -> GET "
            "/metrics?format=json, traces -> GET /traces); the simulation "
            "options are ignored."
        ),
    )
    metrics_cmd.add_argument(
        "--from-url",
        metavar="URL",
        help="scrape a running ObsServer (e.g. http://127.0.0.1:9150) "
        "instead of simulating",
    )
    metrics_cmd.add_argument(
        "--providers", default="desktop=2,smartphone=2",
        help="pool spec, e.g. desktop=2,sbc=4",
    )
    metrics_cmd.add_argument("--tasks", type=int, default=10)
    metrics_cmd.add_argument("--limit", type=int, default=500)
    metrics_cmd.add_argument("--strategy", default="qoc")
    metrics_cmd.add_argument("--seed", type=int, default=0)
    metrics_cmd.add_argument(
        "--format", choices=("prom", "json", "traces"), default="prom",
        help="prom = Prometheus text exposition, json = registry snapshot, "
        "traces = span-tree dump",
    )
    metrics_cmd.set_defaults(handler=_cmd_metrics)

    top_cmd = commands.add_parser(
        "top",
        help="live cluster view polled from a running ObsServer",
        epilog=(
            "Polls /healthz and /events of the given ObsServer (a TcpBroker "
            "started with obs_port=...) and repaints a cluster table every "
            "--interval seconds; ctrl-c exits. Use --once for a single "
            "snapshot, --once --format json for scripting."
        ),
    )
    top_cmd.add_argument(
        "url", help="ObsServer base URL, e.g. http://127.0.0.1:9150"
    )
    top_cmd.add_argument(
        "--interval", type=float, default=2.0, help="refresh period (seconds)"
    )
    top_cmd.add_argument(
        "--once", action="store_true", help="print one snapshot and exit"
    )
    top_cmd.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="with --once: table (human) or json (machine)",
    )
    top_cmd.set_defaults(handler=_cmd_top)

    trace_cmd = commands.add_parser(
        "trace",
        help="reassemble one workflow's trace from live ObsServers",
        epilog=(
            "Pulls /traces?workflow_id=... from the given ObsServer(s) and "
            "renders a Gantt timeline with critical-path and per-provider "
            "attribution. A single --url lets the server merge spans from "
            "its configured federation peers; several --url flags merge "
            "client-side instead (each queried with scope=local). "
            "--format chrome emits Chrome trace-event JSON for Perfetto."
        ),
    )
    trace_cmd.add_argument("workflow_id", help="workflow id to reassemble")
    trace_cmd.add_argument(
        "--url", action="append", metavar="URL",
        default=None,
        help="ObsServer base URL (repeatable; default http://127.0.0.1:9150)",
    )
    trace_cmd.add_argument(
        "--format", choices=("table", "json", "chrome"), default="table",
        help="table (Gantt + attribution), json (analysis document), "
        "chrome (trace-event JSON)",
    )
    trace_cmd.set_defaults(handler=_cmd_trace)

    journal_cmd = commands.add_parser(
        "journal",
        help="inspect a broker work journal",
        epilog=(
            "Replays the append-only JSONL journal a TcpBroker writes when "
            "started with journal_path=... and summarises its state: pending "
            "(admitted, not completed) tasklets and retained completions. "
            "--compact rewrites the file keeping only live records."
        ),
    )
    journal_cmd.add_argument("file", help="journal path (JSONL)")
    journal_cmd.add_argument(
        "--format", choices=("table", "json"), default="table"
    )
    journal_cmd.add_argument(
        "--pending", action="store_true", help="list pending tasklets"
    )
    journal_cmd.add_argument(
        "--compact",
        action="store_true",
        help="rewrite the journal, dropping admitted records that completed",
    )
    journal_cmd.set_defaults(handler=_cmd_journal)

    broker_cmd = commands.add_parser(
        "broker",
        help="serve a broker (optionally federated) until interrupted",
        epilog=(
            "Starts a TcpBroker on --port. Repeat --peer id=host:port to "
            "join a static federation peer set (gossip, forwarding, "
            "failover); --peer-journal id=path additionally enables journal "
            "handoff when that peer dies. --journal enables the durable "
            "work journal; --journal-sync fsyncs every record."
        ),
    )
    broker_cmd.add_argument("--host", default="127.0.0.1")
    broker_cmd.add_argument("--port", type=int, default=7070)
    broker_cmd.add_argument(
        "--broker-id", help="stable broker node id (required for federation)"
    )
    broker_cmd.add_argument(
        "--peer", action="append", metavar="ID=HOST:PORT",
        help="federation peer (repeatable)",
    )
    broker_cmd.add_argument(
        "--peer-journal", action="append", metavar="ID=PATH",
        help="peer journal path for handoff on peer death (repeatable)",
    )
    broker_cmd.add_argument("--journal", help="work journal path (JSONL)")
    broker_cmd.add_argument(
        "--journal-sync", action="store_true",
        help="fsync the journal after every record (durability over speed)",
    )
    broker_cmd.add_argument(
        "--journal-compact-records", type=int, default=None,
        help="auto-compact the journal past this many records",
    )
    broker_cmd.add_argument("--strategy", default="qoc")
    broker_cmd.add_argument("--gossip-interval", type=float, default=1.0)
    broker_cmd.add_argument(
        "--obs-port", type=int, default=None,
        help="serve /metrics /healthz /events on this port",
    )
    broker_cmd.set_defaults(handler=_cmd_broker)

    report_cmd = commands.add_parser(
        "report", help="run experiments and rewrite EXPERIMENTS.md"
    )
    report_cmd.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    report_cmd.add_argument("--full", action="store_true")
    report_cmd.add_argument("--output", default="EXPERIMENTS.md")
    report_cmd.set_defaults(handler=_cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except TaskletError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
