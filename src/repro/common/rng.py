"""Random-number discipline for reproducible experiments.

Experiments must be exactly repeatable, so no middleware component ever
touches the global :mod:`random` state.  Instead, a single :class:`RngRegistry`
is seeded per run and hands out *named* child generators — one per concern
(scheduling noise, failure injection, workload generation, network jitter).
Two runs with the same seed and the same set of stream names observe
identical randomness regardless of the order in which unrelated components
draw numbers.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    The derivation hashes both inputs so that adjacent master seeds do not
    produce correlated child streams (a common pitfall of ``seed + i``).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory of independent, named random streams.

    >>> reg = RngRegistry(seed=42)
    >>> a = reg.stream("failures")
    >>> b = reg.stream("workload")
    >>> a is reg.stream("failures")   # streams are memoised
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the memoised generator for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Return a child registry whose streams are independent of this one.

        Used to give each simulated node its own registry so adding a node
        never perturbs the randomness observed by existing nodes.
        """
        return RngRegistry(derive_seed(self.seed, f"fork:{name}"))
