"""Small statistics toolkit used by the benchmark harness and the broker.

Pure-Python on purpose: the broker's reliability tracker runs inside the
middleware where a numpy dependency would be unwelcome, and the quantities
involved (hundreds of samples) never justify vectorisation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on an empty sequence."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def variance(values: Sequence[float]) -> float:
    """Unbiased sample variance (n-1 denominator); 0.0 for a single sample."""
    n = len(values)
    if n == 0:
        raise ValueError("variance of empty sequence")
    if n == 1:
        return 0.0
    m = mean(values)
    return sum((v - m) ** 2 for v in values) / (n - 1)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation."""
    return math.sqrt(variance(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100].

    Matches numpy's default (``linear``) interpolation so harness output is
    comparable with numpy-based post-processing.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high or ordered[low] == ordered[high]:
        # Second condition avoids one-ulp interpolation error between
        # equal neighbours (a*(1-f) + a*f can round below a).
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def median(values: Sequence[float]) -> float:
    """50th percentile."""
    return percentile(values, 50.0)


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample, as printed by the harness."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    def format(self, unit: str = "") -> str:
        """Render a compact one-line summary, e.g. for table cells."""
        suffix = f" {unit}" if unit else ""
        return (
            f"n={self.count} mean={self.mean:.4g}{suffix} "
            f"p50={self.p50:.4g} p95={self.p95:.4g} sd={self.stdev:.3g}"
        )


def summarize(values: Iterable[float]) -> Summary:
    """Build a :class:`Summary` from any iterable of floats."""
    data = list(values)
    if not data:
        raise ValueError("summarize of empty sequence")
    return Summary(
        count=len(data),
        mean=mean(data),
        stdev=stdev(data),
        minimum=min(data),
        p50=median(data),
        p95=percentile(data, 95.0),
        maximum=max(data),
    )


class Welford:
    """Online mean/variance accumulator (Welford's algorithm).

    Used by the broker's per-provider latency tracker, where samples arrive
    one heartbeat at a time and storing full histories per provider would
    grow without bound.
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Fold one sample into the running statistics."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        """Running mean; 0.0 before any sample."""
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased running variance; 0.0 with fewer than two samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        """Running standard deviation."""
        return math.sqrt(self.variance)


class EwmaTracker:
    """Exponentially weighted moving average, for drifting quantities.

    The broker prefers EWMA over plain means for provider execution speed:
    a provider that slows down (thermal throttling, background load on the
    device) should lose its "fast" label within a few observations.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: float | None = None

    def add(self, value: float) -> float:
        """Fold one observation and return the updated average."""
        if self._value is None:
            self._value = value
        else:
            self._value = self.alpha * value + (1.0 - self.alpha) * self._value
        return self._value

    @property
    def value(self) -> float | None:
        """Current average, or ``None`` before the first observation."""
        return self._value
