"""Exception hierarchy for the Tasklet middleware.

All exceptions raised by this library derive from :class:`TaskletError`, so
applications can install a single ``except TaskletError`` guard around any
middleware interaction.  Sub-hierarchies mirror the subsystems: language and
virtual-machine errors, transport errors, and scheduling/QoC errors.
"""

from __future__ import annotations


class TaskletError(Exception):
    """Base class for every error raised by the Tasklet middleware."""


# ---------------------------------------------------------------------------
# Language / compilation errors
# ---------------------------------------------------------------------------


class LanguageError(TaskletError):
    """Base class for errors in Tasklet source code.

    Carries an optional source position so tooling can point at the
    offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class LexerError(LanguageError):
    """An unrecognised character or malformed literal in the source."""


class ParserError(LanguageError):
    """The token stream does not form a valid Tasklet program."""


class SemanticError(LanguageError):
    """The program parses but violates static rules (types, scopes)."""


class CompileError(LanguageError):
    """The checked AST could not be lowered to bytecode."""


# ---------------------------------------------------------------------------
# Virtual machine errors
# ---------------------------------------------------------------------------


class VMError(TaskletError):
    """Base class for runtime failures inside the Tasklet Virtual Machine."""


class VMTypeError(VMError):
    """An operation was applied to operands of the wrong runtime type."""


class VMDivisionByZero(VMError):
    """Integer or float division/modulo by zero."""


class VMIndexError(VMError):
    """Array access outside the valid index range."""


class VMStackOverflow(VMError):
    """The operand stack or the call stack exceeded its configured limit."""


class VMFuelExhausted(VMError):
    """The instruction budget ("fuel") ran out before the program finished.

    Providers use fuel to bound the execution time of untrusted Tasklets;
    exhaustion is reported to the consumer as a failed execution.
    """


class VMInvalidProgram(VMError):
    """The bytecode is structurally invalid (bad opcode, bad operand...)."""


# ---------------------------------------------------------------------------
# Middleware errors
# ---------------------------------------------------------------------------


class TransportError(TaskletError):
    """A message could not be encoded, decoded, sent, or delivered."""


class CodecError(TransportError):
    """Wire-format encoding or decoding failed."""


class ConnectionClosed(TransportError):
    """The peer closed the connection while a message was in flight."""


class BrokerUnreachable(TransportError):
    """The connection to the broker was lost with requests outstanding.

    Pending :class:`~repro.core.futures.TaskletFuture`\\ s are failed with
    this error instead of hanging: the consumer cannot know whether the
    broker will ever answer, so the submission is reported as undeliverable
    and the application may resubmit once connectivity returns.
    """


class FederationExhausted(BrokerUnreachable):
    """Every broker in the consumer's failover list was tried and failed.

    Raised (and used to fail pending futures) once the capped reconnect
    budget is spent cycling the broker list.  ``brokers`` lists the
    ``host:port`` endpoints tried; ``attempts`` is the total connection
    attempts made.
    """

    def __init__(self, message: str, brokers: list[str] | None = None,
                 attempts: int = 0):
        self.brokers = list(brokers or [])
        self.attempts = attempts
        super().__init__(message)


class SchedulingError(TaskletError):
    """The broker could not produce a valid provider assignment."""


class NoProviderAvailable(SchedulingError):
    """No registered provider satisfies the Tasklet's QoC requirements."""


class QoCUnsatisfiable(SchedulingError):
    """The requested QoC goal combination is contradictory.

    Example: ``local_only`` together with ``remote_only``.
    """


class ExecutionFailed(TaskletError):
    """A Tasklet exhausted its retries without producing a result."""

    def __init__(self, message: str, attempts: int = 0):
        self.attempts = attempts
        super().__init__(message)


class ResultMismatch(TaskletError):
    """Redundant executions disagreed and no majority could be formed."""


class WorkflowError(TaskletError):
    """Base class for DAG-workflow errors (see :mod:`repro.dag`)."""


class WorkflowSpecError(WorkflowError):
    """A workflow specification is structurally invalid.

    Raised at build/validation time: duplicate or dangling node ids,
    dependency cycles, unknown program fingerprints, malformed argument
    placeholders.  Also used when a broker rejects a ``submit_workflow``.
    """


class WorkflowFailed(WorkflowError):
    """A workflow node exhausted its retries, failing the whole workflow.

    ``node_id`` names the failed node; ``dependents`` lists every
    downstream node (transitively) that could no longer run because of
    it.  The broker never executes dependents of a failed node — their
    inputs do not exist.
    """

    def __init__(
        self,
        message: str,
        node_id: str = "",
        dependents: list[str] | None = None,
    ):
        self.node_id = node_id
        self.dependents = list(dependents or [])
        super().__init__(message)


class TimeoutExpired(TaskletError):
    """Waiting for a Tasklet result exceeded the caller's deadline."""


class RegistrationError(TaskletError):
    """A provider or consumer could not register with the broker."""
