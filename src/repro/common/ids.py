"""Identifier types for nodes, Tasklets, and executions.

Identifiers are plain strings wrapped in ``NewType`` aliases so that type
checkers can tell a :data:`NodeId` from a :data:`TaskletId`, while the wire
format stays trivially JSON-serialisable.

Two generation modes exist:

* :class:`IdGenerator` — deterministic, seedable; used by the simulator so
  that experiment runs are exactly reproducible.
* :func:`random_id` — wall-clock mode backed by :mod:`uuid`, used by the
  real TCP deployment where global uniqueness matters more than
  reproducibility.
"""

from __future__ import annotations

import itertools
import uuid
from typing import NewType

NodeId = NewType("NodeId", str)
TaskletId = NewType("TaskletId", str)
ExecutionId = NewType("ExecutionId", str)
JobId = NewType("JobId", str)


def random_id(prefix: str) -> str:
    """Return a globally unique id such as ``"tl-3f2a…"``.

    ``prefix`` names the entity kind; keeping it in the id makes logs and
    wire traces readable without a lookup table.
    """
    return f"{prefix}-{uuid.uuid4().hex[:12]}"


class IdGenerator:
    """Deterministic id factory.

    Each prefix gets its own monotonically increasing counter, so ids are
    stable across runs given the same sequence of requests::

        >>> gen = IdGenerator()
        >>> gen.next("tl")
        'tl-000000'
        >>> gen.next("tl")
        'tl-000001'
        >>> gen.next("node")
        'node-000000'

    An optional ``namespace`` is woven into every id (``"ex-1f3a-000000"``).
    The TCP broker uses a random namespace per incarnation so that ids
    never collide across a broker restart — a provider may still be
    computing an execution the *previous* incarnation assigned, and its
    late result must not match a fresh id.  The simulator passes no
    namespace and keeps byte-identical, reproducible ids.
    """

    def __init__(self, namespace: str | None = None) -> None:
        self._counters: dict[str, itertools.count] = {}
        self._namespace = f"{namespace}-" if namespace else ""

    def next(self, prefix: str) -> str:
        """Return the next id for ``prefix``."""
        counter = self._counters.setdefault(prefix, itertools.count())
        return f"{prefix}-{self._namespace}{next(counter):06d}"

    def next_node(self, kind: str = "node") -> NodeId:
        """Return a fresh :data:`NodeId` (``kind`` defaults to ``node``)."""
        return NodeId(self.next(kind))

    def next_tasklet(self) -> TaskletId:
        """Return a fresh :data:`TaskletId`."""
        return TaskletId(self.next("tl"))

    def next_execution(self) -> ExecutionId:
        """Return a fresh :data:`ExecutionId`."""
        return ExecutionId(self.next("ex"))

    def next_job(self) -> JobId:
        """Return a fresh :data:`JobId`."""
        return JobId(self.next("job"))
