"""Shared substrate: errors, ids, clocks, RNG discipline, serde, stats."""

from .clock import Clock, VirtualClock, WallClock
from .errors import TaskletError
from .ids import ExecutionId, IdGenerator, JobId, NodeId, TaskletId, random_id
from .rng import RngRegistry, derive_seed
from .stats import EwmaTracker, Summary, Welford, summarize

__all__ = [
    "Clock",
    "VirtualClock",
    "WallClock",
    "TaskletError",
    "ExecutionId",
    "IdGenerator",
    "JobId",
    "NodeId",
    "TaskletId",
    "random_id",
    "RngRegistry",
    "derive_seed",
    "EwmaTracker",
    "Summary",
    "Welford",
    "summarize",
]
