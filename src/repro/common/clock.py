"""Clock abstraction shared by the real deployment and the simulator.

Every middleware component that needs time (heartbeats, timeouts, latency
measurement) receives a :class:`Clock` instead of calling ``time.time()``
directly.  The real deployment injects :class:`WallClock`; the discrete-
event simulator injects :class:`VirtualClock`, whose time only moves when
the event loop advances it.  This single seam is what lets the identical
broker/provider/consumer code run both on real sockets and inside the
simulator.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Minimal time source: seconds since an arbitrary epoch."""

    def now(self) -> float:
        """Return the current time in seconds."""
        ...


class WallClock:
    """Real time, via ``time.monotonic`` (immune to wall-clock steps)."""

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin

    def sleep(self, seconds: float) -> None:
        """Block the calling thread for ``seconds``."""
        time.sleep(seconds)


class VirtualClock:
    """Simulated time, advanced explicitly by the event loop.

    The clock never moves backwards; :meth:`advance_to` with a timestamp in
    the past raises ``ValueError`` because it would indicate a scheduling
    bug in the event loop.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise ValueError(f"cannot advance by negative delta {delta!r}")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move time forward to an absolute ``timestamp``."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, target={timestamp}"
            )
        self._now = float(timestamp)
        return self._now
