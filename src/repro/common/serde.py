"""Wire serialisation: JSON payloads in length-prefixed binary frames.

The Tasklet system exchanges small control messages (register, assign,
result...) whose payloads are JSON-friendly by construction: every message
dataclass implements ``to_dict``/``from_dict``.  This module provides the
two lower layers those dataclasses sit on:

* *value encoding* — a restricted, self-describing encoding of Python
  values (ints, floats, bools, strings, ``None``, lists, string-keyed
  dicts, and ``bytes`` via base64) that survives a JSON round trip without
  type loss (e.g. distinguishes ``1`` from ``1.0`` and bytes from str);
* *framing* — ``pack_frame``/``FrameReader`` turn a byte stream (TCP) into
  a sequence of discrete messages using a 4-byte big-endian length prefix.
"""

from __future__ import annotations

import base64
import json
import struct
from typing import Any

from .errors import CodecError

#: Frames larger than this are rejected to bound memory under a corrupt or
#: malicious length prefix. 64 MiB comfortably fits any bytecode program.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


def encode_value(value: Any) -> Any:
    """Convert ``value`` into a JSON-safe structure, tagging lossy cases.

    Floats that JSON would silently merge with ints are tagged as
    ``{"__f__": repr}`` only when needed (non-finite values); ``bytes``
    become ``{"__b__": base64}``.  Everything else must already be one of
    the supported types, otherwise :class:`CodecError` is raised — the wire
    format is deliberately closed, not extensible via pickle.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return {"__f__": repr(value)}
        return value
    if isinstance(value, bytes):
        return {"__b__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(f"dict keys must be str, got {type(key).__name__}")
            if key.startswith("__") and key.endswith("__"):
                raise CodecError(f"reserved key name {key!r}")
            encoded[key] = encode_value(item)
        return encoded
    raise CodecError(f"unsupported value type {type(value).__name__}")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if set(value) == {"__b__"}:
            try:
                return base64.b64decode(value["__b__"])
            except Exception as exc:  # malformed base64
                raise CodecError(f"bad bytes payload: {exc}") from exc
        if set(value) == {"__f__"}:
            text = value["__f__"]
            if text == "nan":
                return float("nan")
            if text == "inf":
                return float("inf")
            if text == "-inf":
                return float("-inf")
            raise CodecError(f"bad float tag {text!r}")
        return {key: decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


def dumps(payload: dict[str, Any]) -> bytes:
    """Serialise a message payload to UTF-8 JSON bytes."""
    try:
        return json.dumps(
            encode_value(payload), separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise CodecError(f"cannot serialise payload: {exc}") from exc


def loads(data: bytes) -> dict[str, Any]:
    """Deserialise UTF-8 JSON bytes back into a payload dict."""
    try:
        decoded = decode_value(json.loads(data.decode("utf-8")))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"cannot parse payload: {exc}") from exc
    if not isinstance(decoded, dict):
        raise CodecError(f"payload must be an object, got {type(decoded).__name__}")
    return decoded


def pack_frame(payload: dict[str, Any]) -> bytes:
    """Serialise ``payload`` and prepend the 4-byte length header."""
    body = dumps(payload)
    if len(body) > MAX_FRAME_BYTES:
        raise CodecError(f"frame too large: {len(body)} bytes")
    return _HEADER.pack(len(body)) + body


class FrameReader:
    """Incremental frame decoder for a byte stream.

    Feed arbitrary chunks with :meth:`feed`; complete frames come back in
    order.  Partial frames are buffered across calls, which is exactly the
    behaviour a non-blocking TCP receive loop needs.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> list[dict[str, Any]]:
        """Absorb ``chunk`` and return every payload completed by it."""
        self._buffer.extend(chunk)
        frames: list[dict[str, Any]] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return frames
            (length,) = _HEADER.unpack_from(self._buffer, 0)
            if length > MAX_FRAME_BYTES:
                raise CodecError(f"incoming frame too large: {length} bytes")
            if len(self._buffer) < _HEADER.size + length:
                return frames
            body = bytes(self._buffer[_HEADER.size : _HEADER.size + length])
            del self._buffer[: _HEADER.size + length]
            frames.append(loads(body))

    @property
    def pending_bytes(self) -> int:
        """Number of buffered bytes not yet forming a complete frame."""
        return len(self._buffer)
