"""Provider self-benchmarking.

On startup a provider measures how fast its TVM actually executes —
*instructions per second* on a standard integer kernel — and reports the
score when registering.  The broker's speed-aware scheduling (the
``speed`` QoC goal and Table 1) is built on these scores, later refined by
the EWMA of observed execution rates.

Using a *TVM-level* metric rather than a hardware one (MHz, FLOPS) is the
point: it captures the whole stack the Tasklet will actually run on — CPU,
VM implementation, interpreter warm-up — in a single comparable number,
which is how the Tasklet system makes heterogeneous devices commensurable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.kernels import PRIME_COUNT
from ..tvm.compiler import compile_source
from ..tvm.vm import TVM, VMLimits

#: Default argument to the prime-count benchmark kernel; ~1.5M TVM
#: instructions, long enough to dominate compile/startup noise on any
#: realistic host.
DEFAULT_BENCHMARK_LIMIT = 4000


@dataclass(frozen=True)
class BenchmarkReport:
    """Result of one self-benchmark run."""

    instructions: int
    elapsed_s: float
    score: float  # instructions / second

    def describe(self) -> str:
        return (
            f"{self.score / 1e6:.2f} M instr/s "
            f"({self.instructions} instr in {self.elapsed_s * 1e3:.1f} ms)"
        )


def run_benchmark(
    limit: int = DEFAULT_BENCHMARK_LIMIT, repetitions: int = 3
) -> BenchmarkReport:
    """Measure this host's TVM speed.

    Runs the prime-count kernel ``repetitions`` times and keeps the
    *fastest* run: the minimum is the standard estimator for "speed absent
    interference", which is what the scheduler wants to know.
    """
    if limit < 10:
        raise ValueError(f"benchmark limit too small: {limit}")
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    # Benchmark the quickened engine: it is what assigned Tasklets run on
    # (TaskletExecutor quickens at cache insertion), so the reported
    # instructions/second is the speed the scheduler will actually see.
    program = compile_source(PRIME_COUNT)
    best_elapsed = float("inf")
    instructions = 0
    for _ in range(repetitions):
        machine = TVM(program, limits=VMLimits(), seed=0, quickened=True)
        started = time.perf_counter()
        machine.run("main", [limit])
        elapsed = time.perf_counter() - started
        if elapsed < best_elapsed:
            best_elapsed = elapsed
            instructions = machine.stats.instructions
    # Guard against a pathological 0-duration clock reading.
    best_elapsed = max(best_elapsed, 1e-9)
    return BenchmarkReport(
        instructions=instructions,
        elapsed_s=best_elapsed,
        score=instructions / best_elapsed,
    )
