"""Provider: TVM execution host with self-benchmark and failure injection."""

from .benchmark import BenchmarkReport, run_benchmark
from .core import Outbound, ProviderConfig, ProviderCore, ProviderCoreStats
from .executor import ExecutionOutcome, TaskletExecutor
from .failure import ExecutionFailureModel, FaultKind, corrupt_value

__all__ = [
    "BenchmarkReport",
    "run_benchmark",
    "Outbound",
    "ProviderConfig",
    "ProviderCore",
    "ProviderCoreStats",
    "ExecutionOutcome",
    "TaskletExecutor",
    "ExecutionFailureModel",
    "FaultKind",
    "corrupt_value",
]
