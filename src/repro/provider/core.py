"""The provider core: a sans-IO node contributing compute.

Like :class:`~repro.broker.core.BrokerCore`, the provider core performs no
IO: handlers return ``(delay, Envelope)`` pairs, where ``delay`` tells the
transport how far in the future the message becomes visible.  This is how
*virtual execution time* works in the simulator — the provider runs the
Tasklet on the real TVM immediately (to obtain the true result and
instruction count) but stamps the result with the time a device of its
speed *would have taken*:

    service_time = instructions / speed_ips  (+ fixed per-execution overhead)

Concurrency is modelled with capacity slots: an arriving execution starts
at ``max(now, earliest slot free time)``.  This reproduces queueing
behaviour exactly for FIFO providers without needing callbacks into the
event loop.

The real TCP provider does not use the slot model (its executions take
actual wall time in worker threads) but reuses the registration and
heartbeat composition.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.clock import Clock
from ..common.ids import NodeId
from ..obs import events as ev
from ..obs.telemetry import ProviderMetrics, Telemetry
from ..obs.trace import TraceContext
from ..transport.message import (
    AssignExecution,
    BROKER_ADDRESS,
    CancelExecution,
    Envelope,
    ExecutionRejected,
    ExecutionResult,
    Heartbeat,
    MessageBody,
    RegisterAck,
    RegisterProvider,
    Unregister,
    body_of,
)
from .executor import PROGRAM_CACHE_SIZE, TaskletExecutor
from .failure import ExecutionFailureModel, FaultKind, corrupt_value

#: Outbound message with a virtual delay before it is handed to the network.
Outbound = tuple[float, Envelope]


@dataclass
class ProviderConfig:
    """Static description of one provider."""

    device_class: str = "desktop"
    capacity: int = 1  # concurrent execution slots
    speed_ips: float = 20e6  # TVM instructions per virtual second
    benchmark_score: float | None = None  # reported score; defaults to speed_ips
    price: float = 0.0
    heartbeat_interval: float = 1.0
    #: Fixed per-execution overhead (queueing, deserialisation, VM spin-up)
    #: in virtual seconds; the F2 overhead-breakdown experiment sweeps it.
    startup_overhead_s: float = 0.002
    max_queue: int = 1024  # assignments queued beyond busy slots
    #: Distinct verified programs the executor keeps in its LRU.
    program_cache_size: int = PROGRAM_CACHE_SIZE
    #: Collect a per-execution TVM profile (opcode groups, stack depth).
    profile_executions: bool = False

    def reported_score(self) -> float:
        return self.benchmark_score if self.benchmark_score is not None else self.speed_ips


@dataclass
class ProviderCoreStats:
    executed: int = 0
    succeeded: int = 0
    vm_errors: int = 0
    rejected: int = 0
    dropped_by_fault: int = 0
    corrupted_by_fault: int = 0
    busy_seconds: float = 0.0


class ProviderCore:
    """One simulated provider node (see module docstring)."""

    def __init__(
        self,
        node_id: NodeId,
        clock: Clock,
        config: ProviderConfig | None = None,
        failure_model: ExecutionFailureModel | None = None,
        broker: NodeId = BROKER_ADDRESS,
        telemetry: Telemetry | None = None,
    ):
        self.node_id = node_id
        self.clock = clock
        self.config = config or ProviderConfig()
        if self.config.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.config.capacity}")
        if self.config.speed_ips <= 0:
            raise ValueError(f"speed must be positive, got {self.config.speed_ips}")
        self.broker = broker
        self.failure_model = failure_model or ExecutionFailureModel()
        self.telemetry = telemetry
        self._metrics = ProviderMetrics(telemetry.registry) if telemetry else None
        self._tracer = telemetry.tracer if telemetry else None
        self._events = telemetry.events if telemetry else None
        self.executor = TaskletExecutor(
            cache_size=self.config.program_cache_size,
            profile=self.config.profile_executions,
            metrics=self._metrics,
        )
        self.stats = ProviderCoreStats()
        self.registered = False
        #: Virtual time at which each slot becomes free.
        self._slot_free_at: list[float] = [0.0] * self.config.capacity
        #: Start times of accepted executions that have not begun yet;
        #: pruned lazily.  Their count is the queue length.
        self._pending_starts: list[float] = []

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> list[Outbound]:
        """Produce the registration message."""
        register = RegisterProvider(
            provider_id=self.node_id,
            device_class=self.config.device_class,
            capacity=self.config.capacity,
            benchmark_score=self.config.reported_score(),
            price=self.config.price,
            heartbeat_interval=self.config.heartbeat_interval,
        )
        return [(0.0, self._send(register))]

    def stop(self) -> list[Outbound]:
        """Produce the graceful-leave message."""
        self.registered = False
        return [(0.0, self._send(Unregister(provider_id=self.node_id)))]

    def tick(self) -> list[Outbound]:
        """Produce a heartbeat (call once per heartbeat interval)."""
        if not self.registered:
            return []
        free = sum(
            1 for free_at in self._slot_free_at if free_at <= self.clock.now()
        )
        if self._metrics is not None:
            self._metrics.busy_slots.labels(provider=str(self.node_id)).set(
                self.config.capacity - free
            )
        heartbeat = Heartbeat(
            provider_id=self.node_id, free_slots=free, queue_length=0
        )
        return [(0.0, self._send(heartbeat))]

    # -- message handling -------------------------------------------------------

    def handle(self, envelope: Envelope) -> list[Outbound]:
        body = body_of(envelope)
        if isinstance(body, RegisterAck):
            if body.accepted:
                self.registered = True
                return []
            # Broker does not know us (it restarted): re-register.
            self.registered = False
            return self.start()
        if isinstance(body, AssignExecution):
            return self._on_assign(body, envelope.trace)
        if isinstance(body, CancelExecution):
            # The slot model decides results at assignment time, so by
            # the time a cancel arrives the result is already "on the
            # wire"; the broker drops it as late.  Tracking cancel ids
            # here would only accumulate forever (they were never read).
            return []
        return []

    # -- execution ----------------------------------------------------------

    def _on_assign(
        self, request: AssignExecution, trace: dict[str, str] | None = None
    ) -> list[Outbound]:
        now = self.clock.now()
        # Pick the earliest-free slot; model a bounded queue.
        slot = min(range(len(self._slot_free_at)), key=self._slot_free_at.__getitem__)
        start_at = max(now, self._slot_free_at[slot])
        queue_delay = start_at - now
        if queue_delay > 0 and self._queued_count(now) >= self.config.max_queue:
            self.stats.rejected += 1
            if self._metrics is not None:
                self._metrics.rejected.inc()
            rejection = ExecutionRejected(
                execution_id=request.execution_id,
                tasklet_id=request.tasklet_id,
                provider_id=self.node_id,
                reason="provider queue full",
            )
            return [(0.0, self._send(rejection))]

        if queue_delay > 0:
            self._pending_starts.append(start_at)
        outcome = self.executor.execute(request)
        self.stats.executed += 1
        service_time = self.config.startup_overhead_s + (
            outcome.instructions / self.config.speed_ips
        )
        finished_at = start_at + service_time
        self._slot_free_at[slot] = finished_at
        self.stats.busy_seconds += service_time
        if self._metrics is not None:
            self._metrics.executions.labels(status=outcome.status.value).inc()
            self._metrics.execution_seconds.observe(service_time)
        if self._tracer is not None:
            parent = TraceContext.from_dict(trace)
            if parent is not None:
                self._tracer.record(
                    name="provider.execute",
                    context=self._tracer.child(parent),
                    node=str(self.node_id),
                    start=start_at,
                    end=finished_at,
                    parent_id=parent.span_id,
                    status="ok" if outcome.ok else outcome.status.value,
                    attrs={
                        "execution_id": str(request.execution_id),
                        "instructions": outcome.instructions,
                    },
                )

        value = outcome.value
        status = outcome.status
        if outcome.ok:
            self.stats.succeeded += 1
            fault = self.failure_model.draw()
            if fault is FaultKind.DROP:
                self.stats.dropped_by_fault += 1
                return []  # crash before reporting: broker times it out
            if fault is FaultKind.CORRUPT:
                self.stats.corrupted_by_fault += 1
                value = corrupt_value(value, self.failure_model.rng)
        else:
            self.stats.vm_errors += 1
            if self._events is not None:
                self._events.record(
                    ev.EXECUTION_FAULT,
                    node=str(self.node_id),
                    ts=finished_at,
                    execution_id=str(request.execution_id),
                    tasklet_id=str(request.tasklet_id),
                    status=status.value,
                    error=outcome.error or "",
                )

        result = ExecutionResult(
            execution_id=request.execution_id,
            tasklet_id=request.tasklet_id,
            provider_id=self.node_id,
            status=status.value,
            value=value,
            error=outcome.error,
            instructions=outcome.instructions,
            started_at=start_at,
            finished_at=finished_at,
        )
        return [(finished_at - now, self._send(result))]

    def _queued_count(self, now: float) -> int:
        """Assignments accepted but not yet started (all slots busy)."""
        self._pending_starts = [
            start for start in self._pending_starts if start > now
        ]
        return len(self._pending_starts)

    # -- helpers ----------------------------------------------------------------

    def _send(self, body: MessageBody) -> Envelope:
        return body.envelope(src=self.node_id, dst=self.broker)

    @property
    def busy_until(self) -> float:
        """Virtual time at which the last slot frees (for the runner)."""
        return max(self._slot_free_at)
