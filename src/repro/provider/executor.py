"""Tasklet execution on a provider: the TVM wrapper.

:class:`TaskletExecutor` turns an :class:`AssignExecution` request into an
:class:`ExecutionOutcome`.  It is deliberately synchronous — concurrency
is the responsibility of the caller (slot scheduling in the simulated
provider, worker threads in the TCP provider).

A small LRU of verified programs avoids re-deserialising and re-verifying
bytecode for bag-of-tasks workloads, where thousands of Tasklets share one
program (the common case for this middleware).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..common.errors import VMError
from ..core.results import ExecutionStatus
from ..tvm.bytecode import CompiledProgram
from ..tvm.quicken import quicken_program
from ..tvm.vm import TVM, VMLimits, VMProfile
from ..transport.message import AssignExecution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.telemetry import ProviderMetrics

#: Default number of distinct programs a provider keeps verified in
#: memory; override per executor with ``TaskletExecutor(cache_size=...)``.
PROGRAM_CACHE_SIZE = 64


@dataclass
class ExecutionOutcome:
    """What one execution attempt produced.

    ``profile`` is the optional TVM execution profile (opcode groups,
    peak stack depth, wall time), present only when the executor was
    built with ``profile=True``.
    """

    status: ExecutionStatus
    value: Any = None
    error: str | None = None
    instructions: int = 0
    profile: VMProfile | None = None

    @property
    def ok(self) -> bool:
        return self.status is ExecutionStatus.SUCCESS


class TaskletExecutor:
    """Executes assignments on this host's TVM.

    ``metrics`` is an optional :class:`~repro.obs.telemetry.ProviderMetrics`
    bundle; when attached, program-cache hits/misses and retired
    instruction counts are reported through its registry.

    ``quicken`` (default on) rewrites each program into the VM's fused
    internal representation once, at program-cache insertion — amortised
    across bag-of-tasks workloads exactly like verification.  Quickening
    is invisible outside the VM: results, errors, instruction counts
    (and therefore billing and voting) are bit-identical to the baseline
    engine, and the cached program's wire form and fingerprint are
    untouched.  Pass ``quicken=False`` to run the baseline engine (the
    ablation the benchmarks compare against).
    """

    def __init__(
        self,
        cache_size: int = PROGRAM_CACHE_SIZE,
        profile: bool = False,
        metrics: "ProviderMetrics | None" = None,
        quicken: bool = True,
    ):
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self._cache: OrderedDict[str, CompiledProgram] = OrderedDict()
        self._cache_size = cache_size
        self._profile = profile
        self._metrics = metrics
        self._quicken = quicken
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def cache_size(self) -> int:
        return self._cache_size

    def _load_program(self, program_dict: dict, claimed_fingerprint: str) -> CompiledProgram:
        """Return a verified program, via the cache when possible.

        The cache is keyed on the fingerprint the *consumer* stamped on
        the assignment, so a hit skips deserialisation entirely.  On a
        miss the fingerprint is recomputed from the actual payload and
        compared against the claim — a consumer cannot poison the cache
        for other consumers' programs.
        """
        if claimed_fingerprint:
            cached = self._cache.get(claimed_fingerprint)
            if cached is not None:
                self.cache_hits += 1
                if self._metrics is not None:
                    self._metrics.program_cache.labels(result="hit").inc()
                self._cache.move_to_end(claimed_fingerprint)
                return cached
        self.cache_misses += 1
        if self._metrics is not None:
            self._metrics.program_cache.labels(result="miss").inc()
        program = CompiledProgram.from_dict(program_dict)
        key = program.fingerprint()
        if claimed_fingerprint and claimed_fingerprint != key:
            raise VMError(
                f"program fingerprint mismatch: claimed {claimed_fingerprint}, "
                f"actual {key}"
            )
        program.verify()
        if self._quicken:
            quicken_program(program)
        if self._cache_size > 0:
            self._cache[key] = program
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return program

    def execute(self, request: AssignExecution) -> ExecutionOutcome:
        """Run one assignment to completion (success or VM failure)."""
        machine = None
        try:
            program = self._load_program(
                request.program, request.program_fingerprint
            )
            machine = TVM(
                program,
                limits=VMLimits(fuel=request.fuel),
                seed=request.seed,
                verify=False,  # verified on cache insertion
                profile=self._profile,
                quickened=self._quicken,  # quickened on cache insertion
            )
            value = machine.run(request.entry, list(request.args))
            outcome = ExecutionOutcome(
                status=ExecutionStatus.SUCCESS,
                value=value,
                instructions=machine.stats.instructions,
                profile=machine.profile,
            )
        except VMError as exc:
            # instructions stays 0 on failure: billing and the virtual
            # service-time model only ever charge successful work.
            outcome = ExecutionOutcome(
                status=ExecutionStatus.VM_ERROR,
                error=f"{type(exc).__name__}: {exc}",
                profile=machine.profile if machine else None,
            )
        if self._metrics is not None:
            if outcome.instructions:
                self._metrics.vm_instructions.inc(outcome.instructions)
            if outcome.profile is not None:
                for group, count in outcome.profile.opcode_groups.items():
                    self._metrics.vm_opcodes.labels(group=group).inc(count)
        return outcome
