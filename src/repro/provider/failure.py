"""Failure-injection models for providers.

The paper's providers are volunteer/edge devices: they crash, lose
connectivity, or (in the byzantine case) return wrong results.  These
models let the simulator and the tests inject such behaviour
deterministically (all randomness flows from a seeded stream).

Two orthogonal axes:

* :class:`ExecutionFailureModel` — per-execution faults: silently dropping
  the result (crash mid-execution) or corrupting the value (byzantine /
  bit-flip), with independent probabilities;
* availability churn (a provider going entirely offline and back) lives in
  :mod:`repro.sim.churn`, because it is a property of the simulated node,
  not of a single execution.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass


class FaultKind(enum.Enum):
    """Outcome of the per-execution fault draw."""

    NONE = "none"
    DROP = "drop"  # execute but never report (crash before send)
    CORRUPT = "corrupt"  # report a wrong value (byzantine)


@dataclass
class ExecutionFailureModel:
    """Draws a fault (or none) for each execution.

    ``drop_probability`` and ``corrupt_probability`` are evaluated
    independently per execution; drop wins when both fire.
    """

    drop_probability: float = 0.0
    corrupt_probability: float = 0.0
    rng: random.Random | None = None

    def __post_init__(self) -> None:
        for name, value in (
            ("drop_probability", self.drop_probability),
            ("corrupt_probability", self.corrupt_probability),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.rng is None:
            self.rng = random.Random(0)

    def draw(self) -> FaultKind:
        """Sample the fault for one execution."""
        if self.drop_probability and self.rng.random() < self.drop_probability:
            return FaultKind.DROP
        if self.corrupt_probability and self.rng.random() < self.corrupt_probability:
            return FaultKind.CORRUPT
        return FaultKind.NONE

    @property
    def is_reliable(self) -> bool:
        return self.drop_probability == 0.0 and self.corrupt_probability == 0.0


def corrupt_value(value, rng: random.Random):
    """Corrupt a result value for byzantine injection.

    The corruption must (a) remain a valid Tasklet value so it survives
    the wire format, (b) differ from the honest value so voting can catch
    it, and (c) be *randomised per draw* — two independently byzantine
    providers must not corrupt to the same value, or they would form a
    spurious majority (real corruption — bit flips, truncated buffers,
    stale caches — is likewise uncorrelated across devices).
    """
    nonce = rng.randrange(1, 1 << 30)
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + nonce
    if isinstance(value, float):
        return value + float(nonce)
    if isinstance(value, str):
        return value + f" corrupt{nonce}"
    if isinstance(value, list):
        return list(value) + [nonce]
    return nonce  # None (void result) corrupts to a spurious value
