"""Shared simulation plumbing for the experiments.

Each experiment boils down to: build a pool, submit a workload with some
QoC, run, and summarise.  :func:`run_workload` is that one recipe with
every knob the experiments sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..broker.core import BrokerConfig
from ..broker.scheduling import Strategy
from ..common.stats import summarize
from ..core.qoc import QoC
from ..provider.core import ProviderConfig
from ..provider.failure import ExecutionFailureModel
from ..sim.churn import ChurnModel
from ..sim.network import NetworkModel
from ..sim.runner import Simulation
from ..sim.workloads import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.telemetry import Telemetry


@dataclass
class RunOutcome:
    """Summary of one simulated workload run."""

    makespan: float  # virtual time from first submit to last completion
    succeeded: int
    failed: int
    latencies: list[float] = field(default_factory=list)
    provider_seconds: float = 0.0
    executions_issued: int = 0
    executions_failed: int = 0
    messages: int = 0
    messages_dropped: int = 0
    correct: bool | None = None  # vs workload oracle, when available
    wrong_values: int = 0  # successful results that contradict the oracle
    pool_utilization: float | None = None  # sampled mean (timeline-based)
    pool_busy_utilization: float | None = None  # exact: busy-s / slot-s

    @property
    def success_rate(self) -> float:
        total = self.succeeded + self.failed
        return self.succeeded / total if total else 0.0

    @property
    def latency_p50(self) -> float:
        return summarize(self.latencies).p50 if self.latencies else 0.0

    @property
    def latency_p95(self) -> float:
        return summarize(self.latencies).p95 if self.latencies else 0.0


def run_workload(
    workload: Workload,
    pool: Sequence[ProviderConfig],
    qoc: QoC | None = None,
    strategy: Strategy | str = "qoc",
    seed: int = 0,
    broker_config: BrokerConfig | None = None,
    network: NetworkModel | None = None,
    churn_for: "dict[int, ChurnModel] | None" = None,
    failure_for: "dict[int, ExecutionFailureModel] | None" = None,
    max_time: float = 1e5,
    collect_metrics: bool = False,
    telemetry: "Telemetry | None" = None,
) -> RunOutcome:
    """Simulate one workload on one pool; returns the run summary.

    ``churn_for`` / ``failure_for`` map *pool indices* to per-provider
    models, so experiments can make exactly provider 0 flaky.

    ``telemetry`` (an :class:`~repro.obs.telemetry.Telemetry`) is shared
    by every node of the simulated deployment; after the run the broker's
    end-of-run counters — and, with ``collect_metrics``, the timeline
    summary — are published into its registry via :mod:`repro.obs.bridge`.
    """
    simulation = Simulation(
        seed=seed,
        strategy=strategy,
        broker_config=broker_config,
        network=network,
        telemetry=telemetry,
    )
    for index, config in enumerate(pool):
        simulation.add_provider(
            config,
            churn=(churn_for or {}).get(index),
            failure_model=(failure_for or {}).get(index),
        )
    collector = None
    if collect_metrics:
        from ..sim.metrics import MetricsCollector

        collector = MetricsCollector(simulation, interval=0.01)
    consumer = simulation.add_consumer()
    start = simulation.now
    futures = consumer.library.map(
        workload.program, workload.args_list, entry=workload.entry, qoc=qoc
    )
    simulation.run(max_time=max_time)

    results = [future.wait(0) if future.done else None for future in futures]
    succeeded = sum(1 for result in results if result is not None and result.ok)
    failed = len(results) - succeeded
    completed_times = [
        result.completed_at for result in results if result is not None and result.ok
    ]
    makespan = (max(completed_times) - start) if completed_times else float("inf")
    latencies = [
        result.latency for result in results if result is not None and result.ok
    ]
    provider_seconds = sum(
        result.provider_seconds for result in results if result is not None
    )
    correct = None
    wrong_values = 0
    if workload.expected is not None:
        wrong_values = sum(
            1
            for result, expected in zip(results, workload.expected)
            if result is not None and result.ok and result.value != expected
        )
        correct = wrong_values == 0
    if telemetry is not None:
        from ..obs.bridge import publish_broker_stats

        publish_broker_stats(telemetry.registry, simulation.broker.stats)
    pool_utilization = None
    pool_busy_utilization = None
    if collector is not None:
        collector.stop()
        summary = collector.summary()
        if telemetry is not None:
            summary.publish(telemetry.registry)
        pool_utilization = summary.pool_mean_utilization
        # Exact utilization from the providers' own busy-time accounting:
        # immune to the sampling aliasing that short task bursts cause.
        total_slots = sum(config.capacity for config in pool)
        busy = sum(
            provider.core.stats.busy_seconds
            for provider in simulation.providers.values()
        )
        if makespan not in (0.0, float("inf")) and total_slots:
            pool_busy_utilization = busy / (makespan * total_slots)
    return RunOutcome(
        makespan=makespan,
        succeeded=succeeded,
        failed=failed,
        latencies=latencies,
        provider_seconds=provider_seconds,
        executions_issued=simulation.broker.stats.executions_issued,
        executions_failed=simulation.broker.stats.executions_failed,
        messages=simulation.messages_delivered,
        messages_dropped=simulation.messages_dropped,
        correct=correct,
        wrong_values=wrong_values,
        pool_utilization=pool_utilization,
        pool_busy_utilization=pool_busy_utilization,
    )
