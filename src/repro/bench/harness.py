"""Experiment harness: tables, series, and sweep plumbing.

Every reconstructed table/figure (see DESIGN.md §3) is implemented as a
function returning a :class:`Table`; ``benchmarks/`` calls them with quick
parameters under pytest-benchmark, and ``python -m repro.bench.report``
runs the full set and regenerates EXPERIMENTS.md.

A :class:`Table` is intentionally dumb — ordered columns, homogeneous
rows, text rendering — because the deliverable is "prints the same rows/
series the paper reports", not a plotting stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence


@dataclass
class Table:
    """One experiment's output: a titled, column-ordered grid."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    @staticmethod
    def _format_cell(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.01:
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    def render(self) -> str:
        """Fixed-width text rendering (the harness's terminal output)."""
        cells = [[self._format_cell(value) for value in row] for row in self.rows]
        widths = [
            max(len(column), *(len(row[i]) for row in cells)) if cells else len(column)
            for i, column in enumerate(self.columns)
        ]
        lines = [f"== {self.title} =="]
        header = "  ".join(
            column.ljust(widths[i]) for i, column in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in cells:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering (for EXPERIMENTS.md)."""
        lines = [
            "| " + " | ".join(self.columns) + " |",
            "|" + "|".join("---" for _ in self.columns) + "|",
        ]
        for row in self.rows:
            lines.append(
                "| " + " | ".join(self._format_cell(value) for value in row) + " |"
            )
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)


@dataclass
class ShapeCheck:
    """One shape claim about an experiment's output.

    Shape claims are the reproduction's substitute for matching absolute
    numbers: "speedup grows with providers", "benchmark-aware beats
    random", "success rate falls with crash probability unless redundant".
    """

    description: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        suffix = f" ({self.detail})" if self.detail else ""
        return f"[{mark}] {self.description}{suffix}"


@dataclass
class Experiment:
    """A table plus its verified shape claims."""

    experiment_id: str  # "T1", "F3", ...
    table: Table
    checks: list[ShapeCheck] = field(default_factory=list)

    def check(self, description: str, passed: bool, detail: str = "") -> None:
        self.checks.append(ShapeCheck(description, passed, detail))

    @property
    def all_passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def render(self) -> str:
        parts = [self.table.render()]
        parts.extend(check.render() for check in self.checks)
        return "\n".join(parts)


def monotone_increasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """True when each value is >= the previous (within ``tolerance``)."""
    return all(b >= a - tolerance for a, b in zip(values, values[1:]))


def monotone_decreasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """True when each value is <= the previous (within ``tolerance``)."""
    return all(b <= a + tolerance for a, b in zip(values, values[1:]))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (all values must be positive)."""
    if not values:
        raise ValueError("geometric mean of empty sequence")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean requires positive values, got {value}")
        product *= value
    return product ** (1.0 / len(values))


def sweep(
    parameter_values: Sequence[Any], run_one: Callable[[Any], dict[str, Any]]
) -> list[dict[str, Any]]:
    """Run ``run_one`` for each parameter value; collect result dicts.

    A thin helper, but it centralises the convention that each sweep point
    returns a flat dict (which maps 1:1 onto a table row).
    """
    results = []
    for value in parameter_values:
        outcome = run_one(value)
        outcome.setdefault("param", value)
        results.append(outcome)
    return results
