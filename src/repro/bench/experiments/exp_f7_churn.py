"""F7 — Churn tolerance.

Providers alternate between available and gone (exponential ON/OFF, fixed
mean cycle length); the duty cycle — the fraction of time a provider is
up — sweeps from always-on to mostly-gone.  The middleware recovers
through heartbeat failure detection, execution timeouts, and re-issue.

Shape claims: with re-issue enabled every workload completes down to a 50%
duty cycle; makespan grows as availability falls; the number of lost/
re-issued executions grows as availability falls.
"""

from __future__ import annotations

from ...broker.core import BrokerConfig
from ...core.qoc import QoC
from ...sim.churn import ExponentialChurn
from ...provider.core import ProviderConfig
from ...sim.workloads import prime_count
from ..harness import Experiment, Table, monotone_increasing
from ..simlib import run_workload


def run(quick: bool = True) -> Experiment:
    duty_cycles = [1.0, 0.9, 0.75, 0.5] if quick else [1.0, 0.9, 0.75, 0.5, 0.3]
    tasks = 180 if quick else 400
    providers = 4
    cycle_s = 3.0
    # Deliberately slow virtual providers (virtual time is free; executed
    # TVM instructions are not), tuned so the timescale hierarchy is
    # realistic: makespan (~15s) >> churn cycle (3s) >> task (~0.3s).
    slow_speed_ips = 100e3
    table = Table(
        title="F7: completion under provider churn (duty-cycle sweep)",
        columns=[
            "duty cycle",
            "ok%",
            "makespan s",
            "executions issued",
            "lost executions",
        ],
    )
    makespans = []
    issued = []
    success_rates = []
    repeats = 2 if quick else 4
    for duty in duty_cycles:
        duty_makespans = []
        duty_issued = []
        duty_failed = []
        duty_success = []
        for repeat in range(repeats):
            workload = prime_count(tasks=tasks, limit=800)
            churn_for = {
                index: ExponentialChurn.from_duty_cycle(
                    duty, cycle_s=cycle_s, seed=500 + 37 * repeat + index
                )
                for index in range(providers)
                if duty < 1.0
            }
            pool = [
                ProviderConfig(
                    device_class="desktop",
                    capacity=1,
                    speed_ips=slow_speed_ips,
                    heartbeat_interval=0.25,
                    startup_overhead_s=0.002,
                )
                for _ in range(providers)
            ]
            outcome = run_workload(
                workload,
                pool=pool,
                qoc=QoC(redundancy=1, max_attempts=10),
                seed=int(duty * 100) + repeat,
                broker_config=BrokerConfig(
                    heartbeat_interval=0.25,
                    heartbeat_tolerance=2.0,
                    execution_timeout=1.5,
                ),
                churn_for=churn_for,
                max_time=3000.0,
            )
            duty_makespans.append(outcome.makespan)
            duty_issued.append(outcome.executions_issued)
            duty_failed.append(outcome.executions_failed)
            duty_success.append(outcome.success_rate)
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731 - local shorthand
        makespans.append(mean(duty_makespans))
        issued.append(mean(duty_issued))
        success_rates.append(min(duty_success))
        table.add_row(
            duty,
            mean(duty_success) * 100,
            makespans[-1],
            issued[-1],
            mean(duty_failed),
        )
    table.add_note(
        f"{providers} slow providers, exponential ON/OFF churn with "
        f"{cycle_s:.0f}s mean cycle; recovery: 0.5s heartbeat failure "
        "detector + crash-on-reregister detection + 1.5s execution timeout "
        "+ up to 10 attempts"
    )

    experiment = Experiment("F7", table)
    experiment.check(
        "all tasks complete at every duty cycle >= 0.5 (re-issue works)",
        all(rate == 1.0 for rate in success_rates),
        detail=" ".join(f"{r:.0%}" for r in success_rates),
    )
    experiment.check(
        "full availability is the fastest configuration",
        makespans[0] <= min(makespans),
        detail=" -> ".join(f"{m:.1f}s" for m in makespans),
    )
    experiment.check(
        "halving availability at least doubles mean makespan",
        makespans[-1] >= makespans[0] * 2.0,
        detail=f"{makespans[0]:.1f}s -> {makespans[-1]:.1f}s",
    )
    experiment.check(
        "lower availability forces more executions (work is re-issued)",
        monotone_increasing(issued, tolerance=tasks * 0.2),
        detail=" -> ".join(f"{count:.0f}" for count in issued),
    )
    return experiment
