"""F7 — Churn tolerance.

Providers alternate between available and gone (exponential ON/OFF, fixed
mean cycle length); the duty cycle — the fraction of time a provider is
up — sweeps from always-on to mostly-gone.  The middleware recovers
through heartbeat failure detection, execution timeouts, and re-issue.

A final scenario row churns the *broker* instead of the providers: three
federated TCP brokers, the consumer's broker killed mid-workload, with
recovery through consumer failover plus idempotent resubmission.

Shape claims: with re-issue enabled every workload completes down to a 50%
duty cycle; makespan grows as availability falls; the number of lost/
re-issued executions grows as availability falls; the broker-kill run
completes every tasklet exactly once (cross-journal audit).
"""

from __future__ import annotations

import socket
import tempfile
import time

from ...broker.core import BrokerConfig
from ...broker.journal import replay_journal
from ...common.errors import BrokerUnreachable
from ...core.kernels import PRIME_COUNT, python_prime_count
from ...core.qoc import QoC
from ...sim.churn import ExponentialChurn
from ...provider.core import ProviderConfig
from ...sim.workloads import prime_count
from ...transport.tcp import TcpBroker, TcpConsumer, TcpProvider
from ..harness import Experiment, Table, monotone_increasing
from ..simlib import run_workload


def _free_ports(count: int) -> list[int]:
    sockets = []
    for _ in range(count):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sockets.append(sock)
    ports = [sock.getsockname()[1] for sock in sockets]
    for sock in sockets:
        sock.close()
    return ports


def _wait(predicate, deadline_s: float, what: str) -> None:
    deadline = time.perf_counter() + deadline_s
    while not predicate():
        if time.perf_counter() > deadline:
            raise TimeoutError(f"timed out waiting for {what}")
        time.sleep(0.02)


def _broker_kill_scenario(tasks: int, limit: int, journal_dir: str):
    """Kill the consumer's broker mid-workload in a 3-broker federation.

    Returns ``(ok_rate, wall_s, executions_issued, lost, exactly_once)``
    where ``lost`` counts tasklets that needed failover resubmission and
    ``exactly_once`` is the cross-journal audit: every tasklet was
    executed by exactly one broker.
    """
    ids = ("b1", "b2", "b3")
    ports = _free_ports(len(ids))
    addresses = {bid: ("127.0.0.1", port) for bid, port in zip(ids, ports)}
    journals = {bid: f"{journal_dir}/{bid}.jsonl" for bid in ids}
    config = BrokerConfig(
        heartbeat_interval=0.2, heartbeat_tolerance=3.0, execution_timeout=30.0
    )
    brokers = {
        bid: TcpBroker(
            host="127.0.0.1",
            port=addresses[bid][1],
            config=config,
            journal_path=journals[bid],
            broker_id=bid,
            peers={o: addresses[o] for o in ids if o != bid},
            peer_journals={o: journals[o] for o in ids if o != bid},
            gossip_interval=0.2,
        ).start()
        for bid in ids
    }
    providers = []
    consumer = None
    try:
        for bid, name in (("b2", "p2"), ("b3", "p3")):
            providers.append(
                TcpProvider(
                    *addresses[bid], node_id=name, capacity=2,
                    benchmark_score=1e7,
                ).start()
            )

        def peer_ready(peer_id):
            peer = brokers["b1"].core.federation.peers.get(peer_id)
            return peer is not None and peer.alive and peer.free_slots > 0

        _wait(
            lambda: peer_ready("b2") and peer_ready("b3"),
            15, "gossip to carry peer capacity",
        )
        consumer = TcpConsumer(
            node_id="f7-consumer", brokers=[addresses[bid] for bid in ids]
        ).start()
        started = time.perf_counter()
        futures = {
            f"f7-kill-{n}": consumer.library.submit(
                PRIME_COUNT, args=[limit], tasklet_id=f"f7-kill-{n}"
            )
            for n in range(tasks)
        }
        _wait(
            lambda: brokers["b1"].core.stats.tasklets_submitted >= tasks,
            15, "admission",
        )
        brokers["b1"].stop()  # the kill: no drain, no goodbye
        values = {}
        for tid, future in futures.items():
            try:
                values[tid] = future.result(timeout=30)
            except BrokerUnreachable:
                pass
        lost = tasks - len(values)
        _wait(
            lambda: not consumer._disconnected.is_set(), 15, "failover"
        )
        for tid in futures:
            if tid not in values:
                values[tid] = consumer.library.submit(
                    PRIME_COUNT, args=[limit], tasklet_id=tid
                ).result(timeout=60)
        wall = time.perf_counter() - started
        expected = python_prime_count(limit)
        ok = sum(1 for value in values.values() if value == expected)
        issued = sum(
            brokers[bid].core.stats.executions_issued for bid in ("b2", "b3")
        )
        executors: dict[str, set] = {tid: set() for tid in futures}
        for path in journals.values():
            for completion in replay_journal(path).completions.values():
                if completion.tasklet_id in executors and completion.executed_by:
                    executors[completion.tasklet_id].add(completion.executed_by)
        exactly_once = all(len(who) == 1 for who in executors.values())
        return ok / tasks, wall, issued, lost, exactly_once
    finally:
        if consumer is not None:
            consumer.stop()
        for provider in providers:
            provider.stop()
        for broker in brokers.values():
            try:
                broker.stop()
            except Exception:
                pass


def run(quick: bool = True) -> Experiment:
    duty_cycles = [1.0, 0.9, 0.75, 0.5] if quick else [1.0, 0.9, 0.75, 0.5, 0.3]
    tasks = 180 if quick else 400
    providers = 4
    cycle_s = 3.0
    # Deliberately slow virtual providers (virtual time is free; executed
    # TVM instructions are not), tuned so the timescale hierarchy is
    # realistic: makespan (~15s) >> churn cycle (3s) >> task (~0.3s).
    slow_speed_ips = 100e3
    table = Table(
        title="F7: completion under provider churn (duty-cycle sweep)",
        columns=[
            "duty cycle",
            "ok%",
            "makespan s",
            "executions issued",
            "lost executions",
        ],
    )
    makespans = []
    issued = []
    success_rates = []
    repeats = 2 if quick else 4
    for duty in duty_cycles:
        duty_makespans = []
        duty_issued = []
        duty_failed = []
        duty_success = []
        for repeat in range(repeats):
            workload = prime_count(tasks=tasks, limit=800)
            churn_for = {
                index: ExponentialChurn.from_duty_cycle(
                    duty, cycle_s=cycle_s, seed=500 + 37 * repeat + index
                )
                for index in range(providers)
                if duty < 1.0
            }
            pool = [
                ProviderConfig(
                    device_class="desktop",
                    capacity=1,
                    speed_ips=slow_speed_ips,
                    heartbeat_interval=0.25,
                    startup_overhead_s=0.002,
                )
                for _ in range(providers)
            ]
            outcome = run_workload(
                workload,
                pool=pool,
                qoc=QoC(redundancy=1, max_attempts=10),
                seed=int(duty * 100) + repeat,
                broker_config=BrokerConfig(
                    heartbeat_interval=0.25,
                    heartbeat_tolerance=2.0,
                    execution_timeout=1.5,
                ),
                churn_for=churn_for,
                max_time=3000.0,
            )
            duty_makespans.append(outcome.makespan)
            duty_issued.append(outcome.executions_issued)
            duty_failed.append(outcome.executions_failed)
            duty_success.append(outcome.success_rate)
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731 - local shorthand
        makespans.append(mean(duty_makespans))
        issued.append(mean(duty_issued))
        success_rates.append(min(duty_success))
        table.add_row(
            duty,
            mean(duty_success) * 100,
            makespans[-1],
            issued[-1],
            mean(duty_failed),
        )
    kill_tasks = 8 if quick else 16
    with tempfile.TemporaryDirectory(prefix="repro-f7-") as journal_dir:
        kill_ok, kill_wall, kill_issued, kill_lost, exactly_once = (
            _broker_kill_scenario(kill_tasks, limit=500, journal_dir=journal_dir)
        )
    table.add_row(
        "broker-kill", kill_ok * 100, kill_wall, kill_issued, kill_lost
    )
    table.add_note(
        f"{providers} slow providers, exponential ON/OFF churn with "
        f"{cycle_s:.0f}s mean cycle; recovery: 0.5s heartbeat failure "
        "detector + crash-on-reregister detection + 1.5s execution timeout "
        "+ up to 10 attempts"
    )
    table.add_note(
        "broker-kill row: real TCP, 3 federated journal-backed brokers, the "
        f"consumer's broker killed with {kill_tasks} tasklets in flight; "
        "recovery: automatic consumer failover + idempotent resubmission "
        "('lost executions' counts tasklets resubmitted after the kill); "
        "wall-clock seconds, not virtual"
    )

    experiment = Experiment("F7", table)
    experiment.check(
        "broker kill mid-workload: every tasklet completes",
        kill_ok == 1.0,
        detail=f"{kill_ok:.0%} of {kill_tasks}",
    )
    experiment.check(
        "broker kill mid-workload: exactly one executor per tasklet "
        "(cross-journal audit)",
        exactly_once,
        detail=f"{kill_issued} executions for {kill_tasks} tasklets",
    )
    experiment.check(
        "all tasks complete at every duty cycle >= 0.5 (re-issue works)",
        all(rate == 1.0 for rate in success_rates),
        detail=" ".join(f"{r:.0%}" for r in success_rates),
    )
    experiment.check(
        "full availability is the fastest configuration",
        makespans[0] <= min(makespans),
        detail=" -> ".join(f"{m:.1f}s" for m in makespans),
    )
    experiment.check(
        "halving availability at least doubles mean makespan",
        makespans[-1] >= makespans[0] * 2.0,
        detail=f"{makespans[0]:.1f}s -> {makespans[-1]:.1f}s",
    )
    experiment.check(
        "lower availability forces more executions (work is re-issued)",
        monotone_increasing(issued, tolerance=tasks * 0.2),
        detail=" -> ".join(f"{count:.0f}" for count in issued),
    )
    return experiment
