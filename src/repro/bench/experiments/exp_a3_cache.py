"""A3 — Ablation: provider-side program caching.

Bag-of-tasks workloads ship the *same* compiled program with every
assignment; the provider's executor keeps verified programs in an LRU so
only the first assignment pays deserialisation + structural verification.
This ablation measures real (wall-clock) per-assignment setup cost with
the cache enabled vs disabled.

Shape claims: cache hit rate for an n-task bag is (n-1)/n; cached setup
is several times cheaper than uncached; results are identical either way.
"""

from __future__ import annotations

import time

from ...provider.executor import TaskletExecutor
from ...transport.message import AssignExecution
from ...tvm.compiler import compile_source
from ..harness import Experiment, Table


def _large_program():
    """A realistically large application program with a tiny entry point.

    Real Tasklet applications ship whole libraries with every Tasklet
    (the program is closed); deserialisation + verification cost scales
    with program size while a single Tasklet may only execute a sliver of
    it.  That asymmetry is exactly what the provider cache exploits.
    """
    parts = []
    for index in range(80):
        parts.append(
            f"func helper_{index}(x: float) -> float {{\n"
            f"    var acc: float = x;\n"
            f"    for (var i: int = 0; i < 4; i = i + 1) {{\n"
            f"        acc = acc * 1.5 + {index}.0 - sqrt(abs(acc));\n"
            f"    }}\n"
            f"    return acc;\n"
            f"}}\n"
        )
    parts.append(
        "func main(x: float) -> float { return helper_0(x) + helper_79(x); }\n"
    )
    return compile_source("".join(parts))


def _assignments(program, tasks: int) -> list[AssignExecution]:
    program_dict = program.to_dict()
    return [
        AssignExecution(
            execution_id=f"ex-{index}",
            tasklet_id=f"tl-{index}",
            consumer_id="cons",
            program=program_dict,
            entry="main",
            args=[float(index)],
            seed=0,
            fuel=50_000_000,
            program_fingerprint=program.fingerprint(),
        )
        for index in range(tasks)
    ]


def run(quick: bool = True) -> Experiment:
    table = Table(
        title="A3: provider program cache on a bag of tasks",
        columns=["cache", "wall ms total", "per-task ms", "hits", "misses"],
    )
    tasks = 40 if quick else 150
    program = _large_program()
    timings = {}
    hits = {}
    values_by_mode = {}
    for enabled in (True, False):
        executor = TaskletExecutor(cache_size=64 if enabled else 0)
        requests = _assignments(program, tasks)
        values = []
        started = time.perf_counter()
        for request in requests:
            outcome = executor.execute(request)
            assert outcome.ok, outcome.error
            values.append(outcome.value)
        elapsed = time.perf_counter() - started
        timings[enabled] = elapsed
        hits[enabled] = executor.cache_hits
        values_by_mode[enabled] = values
        table.add_row(
            "on" if enabled else "off",
            elapsed * 1e3,
            elapsed / tasks * 1e3,
            executor.cache_hits,
            executor.cache_misses,
        )

    table.add_note(f"{tasks} assignments sharing one program; tiny kernels")

    experiment = Experiment("A3", table)
    experiment.check(
        "cache hit rate is (n-1)/n for an n-task bag",
        hits[True] == tasks - 1,
        detail=f"hits={hits[True]}, tasks={tasks}",
    )
    experiment.check(
        "caching reduces total provider time by >= 2x on tiny tasks",
        timings[False] >= timings[True] * 2.0,
        detail=f"off {timings[False] * 1e3:.1f}ms vs on {timings[True] * 1e3:.1f}ms",
    )
    experiment.check(
        "caching does not change results",
        values_by_mode[True] == values_by_mode[False],
    )
    return experiment
