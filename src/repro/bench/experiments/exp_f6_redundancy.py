"""F6 — The cost of redundant execution.

Redundancy buys reliability (F5) with provider time; this experiment
quantifies the bill on a *failure-free* pool: executions issued, provider-
seconds consumed, and end-to-end latency as the replication factor grows.

Shape claims: executions issued grow exactly linearly in ``r`` (the broker
never over-issues when nothing fails); provider-seconds grow close to
linearly; latency grows only mildly (replicas run in parallel) until the
pool saturates.
"""

from __future__ import annotations

from ...broker.core import BrokerConfig
from ...core.qoc import QoC
from ...sim.devices import make_config
from ...sim.workloads import prime_count
from ..harness import Experiment, Table, monotone_increasing
from ..simlib import run_workload


def run(quick: bool = True) -> Experiment:
    replication_factors = [1, 2, 3, 4] if quick else [1, 2, 3, 4, 5]
    tasks = 16 if quick else 40
    providers = 8
    table = Table(
        title="F6: cost of redundancy on a failure-free pool",
        columns=[
            "r",
            "executions/task",
            "provider-s/task",
            "latency p50 s",
            "latency p95 s",
            "makespan s",
        ],
    )
    executions_per_task = []
    provider_seconds_per_task = []
    latencies = []
    for replication in replication_factors:
        workload = prime_count(tasks=tasks, limit=1200)
        outcome = run_workload(
            workload,
            pool=[make_config("desktop") for _ in range(providers)],
            qoc=QoC(redundancy=replication, max_attempts=2),
            seed=30 + replication,
            broker_config=BrokerConfig(execution_timeout=None),
        )
        assert outcome.failed == 0
        executions_per_task.append(outcome.executions_issued / tasks)
        provider_seconds_per_task.append(outcome.provider_seconds / tasks)
        latencies.append(outcome.latency_p50)
        table.add_row(
            replication,
            executions_per_task[-1],
            provider_seconds_per_task[-1],
            outcome.latency_p50,
            outcome.latency_p95,
            outcome.makespan,
        )
    table.add_note(f"{providers} desktops, {tasks} identical tasks, no failures")
    table.add_note(
        "provider-s/task counts results that reached the vote; replicas "
        "cancelled after the majority decided executed but are not counted"
    )

    experiment = Experiment("F6", table)
    experiment.check(
        "executions issued = r exactly (no spurious re-issue)",
        all(
            abs(count - r) < 1e-9
            for count, r in zip(executions_per_task, replication_factors)
        ),
        detail=" ".join(f"{c:.2f}" for c in executions_per_task),
    )
    experiment.check(
        "provider-seconds grow monotonically with r",
        monotone_increasing(provider_seconds_per_task),
    )
    ratio = provider_seconds_per_task[-1] / provider_seconds_per_task[0]
    expected = replication_factors[-1] / replication_factors[0]
    experiment.check(
        "provider-second growth is close to linear in r (within 40%)",
        0.6 * expected <= ratio <= 1.1 * expected,
        detail=f"observed {ratio:.2f}x vs linear {expected:.0f}x",
    )
    experiment.check(
        "replication does not explode latency (p50 within 3x of r=1)",
        latencies[-1] <= latencies[0] * 3.0,
        detail=f"{latencies[0]:.3f}s -> {latencies[-1]:.3f}s",
    )
    return experiment
