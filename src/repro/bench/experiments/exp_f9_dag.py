"""F9 — Broker-held DAG scheduling vs per-stage consumer round-trips.

A multi-stage Tasklet pipeline can be driven two ways.  The *naive*
consumer runs it stage by stage: submit every node of one topological
level as a batch, wait for all results, inject them into the next
level's arguments, submit again — paying a consumer round-trip (result
delivery + next submission) at every stage boundary.  With
``submit_workflow`` the broker owns the whole graph: it releases a node
the moment its predecessors complete and injects their outputs
broker-side, so the stage boundary costs nothing but the provider
round-trip that the work itself requires.

Shape claims: both drivers produce bit-identical values (checked against
a pure-python oracle); broker-side DAG scheduling beats the per-stage
driver on makespan for every chain of depth >= 3; resubmitting an
identical workflow is fully served from the result cache (zero new
executions); a workflow in flight when the broker dies resumes from the
work journal and finishes with every node executed exactly once.
"""

from __future__ import annotations

import os
import tempfile

from ...broker.journal import WorkJournal, replay_journal
from ...core.qoc import QoC
from ...core.tasklet import Tasklet
from ...dag.patterns import butterfly, chain, reference_values, stencil, tree
from ...dag.spec import WorkflowSpec, resolve_arg
from ...sim.devices import make_config
from ...sim.runner import Simulation
from ...tvm.bytecode import CompiledProgram
from ..harness import Experiment, Table

#: Providers per simulated pool (same pool for both drivers).
POOL = 4


def _make_sim(seed: int = 7, journal: WorkJournal | None = None) -> Simulation:
    sim = Simulation(seed=seed, journal=journal)
    for _ in range(POOL):
        sim.add_provider(make_config("desktop"))
    return sim


def _topo_levels(spec: WorkflowSpec) -> list[list[str]]:
    """Topological levels: level 0 has no deps, level N depends on < N."""
    level_of: dict[str, int] = {}
    for node_id in spec.topo_order():
        deps = spec.node(node_id).deps()
        level_of[node_id] = 1 + max((level_of[d] for d in deps), default=-1)
    levels: list[list[str]] = [[] for _ in range(max(level_of.values()) + 1)]
    for node_id, level in level_of.items():
        levels[level].append(node_id)
    return levels


def _run_naive(spec: WorkflowSpec) -> tuple[float, dict[str, object]]:
    """Per-stage driver: one ``submit_batch`` + full wait per topo level.

    Returns (makespan in virtual seconds, sink outputs).
    """
    sim = _make_sim()
    consumer = sim.add_consumer()
    programs = {
        fingerprint: CompiledProgram.from_dict(document)
        for fingerprint, document in spec.programs.items()
    }
    values: dict[str, object] = {}
    started = sim.now
    for level in _topo_levels(spec):
        tasklets = []
        for node_id in level:
            node = spec.node(node_id)
            tasklets.append(
                Tasklet(
                    tasklet_id=f"{spec.workflow_id}-naive:{node_id}",
                    program=programs[node.program_fingerprint],
                    entry=node.entry,
                    args=[resolve_arg(arg, values) for arg in node.args],
                    qoc=QoC(max_attempts=node.max_attempts),
                    seed=node.seed,
                    fuel=node.fuel,
                )
            )
        futures = consumer.submit_batch(tasklets)
        sim.run()
        for node_id, future in zip(level, futures):
            values[node_id] = future.result(0)
    makespan = sim.now - started
    return makespan, {node_id: values[node_id] for node_id in spec.sinks()}


def _run_dag(spec: WorkflowSpec) -> tuple[float, dict[str, object]]:
    """Broker-held driver: one ``submit_workflow``, one wait."""
    sim = _make_sim()
    consumer = sim.add_consumer()
    started = sim.now
    handle = consumer.submit_workflow(spec)
    sim.run()
    return sim.now - started, handle.result(0)


def _memoization_replay() -> tuple[int, int]:
    """Submit the same graph twice (fresh workflow id); returns the second
    submission's (memoized, total) node counts."""
    sim = _make_sim()
    consumer = sim.add_consumer()
    first = chain(4, work=150, salt=3)
    handle = consumer.submit_workflow(first)
    sim.run()
    handle.result(0)
    rerun = WorkflowSpec.from_dict(
        {**first.to_dict(), "workflow_id": "wf-rerun"}
    )
    handle = consumer.submit_workflow(rerun)
    sim.run()
    handle.result(0)
    return handle.nodes_memoized, handle.nodes_total


def _crash_recovery(depth: int) -> tuple[bool, bool, bool]:
    """Kill the broker mid-workflow; resume a fresh one from the journal.

    Returns (recovered_ok, outputs_correct, exactly_once).
    """
    spec = chain(depth, work=400, salt=11)
    with tempfile.TemporaryDirectory() as scratch:
        path = os.path.join(scratch, "journal.jsonl")
        journal = WorkJournal(path)
        sim = _make_sim(journal=journal)
        consumer = sim.add_consumer(name="cons-f9")
        consumer.submit_workflow(spec)
        # Advance until some (not all) nodes have journalled completions,
        # then "crash": abandon the simulation, close the journal.
        for _ in range(200):
            sim.run_for(0.01)
            done = len(replay_journal(path).completions)
            if done >= 1:
                break
        journal.close()
        mid = replay_journal(path)
        crashed_mid_flight = bool(mid.workflows) and len(mid.completions) < depth

        journal = WorkJournal(path)
        sim = _make_sim(journal=journal)  # recovery happens at construction
        sim.run()
        recovered = sim.broker.pending_workflows == 0
        journal.close()

        snapshot = replay_journal(path)
        outcome = next(iter(snapshot.workflow_completions.values()), {})
        outputs = (outcome.get("outcome") or {}).get("outputs", {})
        reference = reference_values(spec)
        correct = bool(outputs) and all(
            outputs.get(sink) == reference[sink] for sink in spec.sinks()
        )
        # Exactly-once audit: every node key has at most one ok completion
        # record across both broker lifetimes (re-issued nodes journal one;
        # short-circuited nodes journal none beyond the original).
        counts: dict[str, int] = {}
        for completion in snapshot.completions.values():
            if completion.ok:
                counts[completion.key] = counts.get(completion.key, 0) + 1
        exactly_once = (
            crashed_mid_flight
            and recovered
            and all(count == 1 for count in counts.values())
            and len(counts) == depth
        )
        return recovered, correct, exactly_once


def run(quick: bool = True) -> Experiment:
    work = 150 if quick else 400
    cases = [
        ("chain", chain(2, work=work)),
        ("chain", chain(3, work=work)),
        ("chain", chain(4, work=work)),
        ("chain", chain(6, work=work)),
        ("stencil", stencil(4, 3, work=work)),
        ("tree", tree(2, 3, work=work)),
        ("butterfly", butterfly(4, work=work)),
    ]
    table = Table(
        title="F9: broker-held DAG scheduling vs per-stage round-trips",
        columns=[
            "pattern",
            "nodes",
            "depth",
            "naive makespan s",
            "dag makespan s",
            "speedup",
            "correct",
        ],
    )
    chain_rows = []
    all_correct = True
    for name, spec in cases:
        depth = len(_topo_levels(spec))
        reference = reference_values(spec)
        expected = {sink: reference[sink] for sink in spec.sinks()}
        naive_time, naive_outputs = _run_naive(spec)
        dag_time, dag_outputs = _run_dag(spec)
        correct = naive_outputs == expected and dag_outputs == expected
        all_correct = all_correct and correct
        speedup = naive_time / dag_time if dag_time else float("inf")
        if name == "chain":
            chain_rows.append((depth, speedup))
        table.add_row(
            name, len(spec.nodes), depth, naive_time, dag_time, speedup, correct
        )
    table.add_note(
        f"{POOL} desktop providers, 5ms network latency; naive driver pays "
        "result-delivery + resubmission at every stage boundary"
    )

    experiment = Experiment("F9", table)
    experiment.check(
        "both drivers match the pure-python oracle on every pattern",
        all_correct,
    )
    deep_chains = [(depth, s) for depth, s in chain_rows if depth >= 3]
    experiment.check(
        "broker-side DAG beats per-stage driver for chains of depth >= 3",
        all(speedup > 1.0 for _, speedup in deep_chains),
        detail=", ".join(f"depth {d}: {s:.2f}x" for d, s in deep_chains),
    )
    memoized, total = _memoization_replay()
    experiment.check(
        "identical resubmitted workflow is fully memoized",
        memoized == total and total > 0,
        detail=f"{memoized}/{total} nodes from result cache",
    )
    recovered, recovery_correct, exactly_once = _crash_recovery(
        depth=4 if quick else 6
    )
    experiment.check(
        "workflow in flight at broker crash resumes from the journal",
        recovered and recovery_correct,
        detail="outputs match oracle" if recovery_correct else "outputs diverged",
    )
    experiment.check(
        "recovery executes every node exactly once (journal audit)",
        exactly_once,
    )
    return experiment
