"""T1 — Device-class benchmark scores.

The paper's Table 1 characterises the heterogeneous testbed by running the
Tasklet self-benchmark on every device class.  Our substitute testbed is
the calibrated device profiles: for each class we simulate one provider,
run the standard benchmark kernel through the full middleware, and report
the score the broker would learn, next to the nominal profile.

Shape claims: servers fastest, single-board computers slowest, with a
spread of roughly 25x — the heterogeneity the scheduling experiments (F4)
then have to overcome.
"""

from __future__ import annotations

from ...core.qoc import QoC
from ...sim.devices import DEVICE_CLASSES, make_config
from ...sim.workloads import prime_count
from ..harness import Experiment, Table
from ..simlib import run_workload


def run(quick: bool = True) -> Experiment:
    # Tasks must be long enough that per-execution startup overhead does
    # not distort the speed estimate (see the 20% tolerance check below).
    limit = 3000 if quick else 12000
    tasks = 2 if quick else 4
    table = Table(
        title="T1: device classes and Tasklet benchmark scores",
        columns=[
            "class",
            "slots",
            "nominal Minstr/s",
            "measured Minstr/s",
            "rel. to sbc",
            "price/Ginstr",
            "task latency s",
        ],
    )
    measured: dict[str, float] = {}
    latencies: dict[str, float] = {}
    workload = prime_count(tasks=tasks, limit=limit)
    for class_name in ("server", "desktop", "laptop", "smartphone", "sbc"):
        profile = DEVICE_CLASSES[class_name]
        outcome = run_workload(
            workload,
            pool=[make_config(class_name)],
            qoc=QoC(),
            seed=1,
        )
        latencies[class_name] = outcome.latency_p50
        # Measured score = instructions / provider-seconds, exactly what
        # the broker's EWMA learns from execution reports.
        measured[class_name] = (
            outcome.executions_issued
            * _instructions_per_task(workload)
            / outcome.provider_seconds
        )
    sbc_speed = measured["sbc"]
    for class_name in ("server", "desktop", "laptop", "smartphone", "sbc"):
        profile = DEVICE_CLASSES[class_name]
        table.add_row(
            class_name,
            profile.capacity,
            profile.speed_ips / 1e6,
            measured[class_name] / 1e6,
            measured[class_name] / sbc_speed,
            profile.price,
            latencies[class_name],
        )
    table.add_note(
        "substitution: calibrated virtual profiles stand in for the paper's "
        "physical devices; ratios mirror 2016-era single-core spreads"
    )

    experiment = Experiment("T1", table)
    speeds = [measured[name] for name in ("server", "desktop", "laptop", "smartphone", "sbc")]
    experiment.check(
        "classes are strictly ordered server > desktop > laptop > phone > sbc",
        all(a > b for a, b in zip(speeds, speeds[1:])),
    )
    spread = speeds[0] / speeds[-1]
    experiment.check(
        "server/sbc spread is ~25x (within [10x, 50x])",
        10.0 <= spread <= 50.0,
        detail=f"spread={spread:.1f}x",
    )
    # The learned score should match the *effective* device speed — raw
    # speed discounted by the per-execution startup overhead the device
    # model charges — to within 5%.  (For long tasks effective ≈ nominal.)
    instructions = _instructions_per_task(workload)
    effective = {
        name: instructions
        / (
            instructions / DEVICE_CLASSES[name].speed_ips
            + DEVICE_CLASSES[name].startup_overhead_s
        )
        for name in measured
    }
    experiment.check(
        "broker-learned scores match effective device speeds within 5%",
        all(
            abs(measured[name] - effective[name]) / effective[name] < 0.05
            for name in measured
        ),
    )
    return experiment


def _instructions_per_task(workload) -> int:
    """Exact TVM instruction count of one task (they are identical)."""
    from ...tvm.vm import execute

    _result, stats = execute(
        workload.program, workload.entry, workload.args_list[0]
    )
    return stats.instructions
