"""T3 — The price of computation: cost accounting across QoC goals.

Providers charge per 10⁹ executed instructions at class-specific prices
(servers cost 16x a single-board computer).  The same workload runs under
four goal configurations on one heterogeneous pool, and the broker's
ledger reports the bill — making the middleware's cost/performance
trade-off explicit.

Shape claims: the speed goal buys the lowest makespan at the highest
cost; a cost ceiling cuts the bill by excluding expensive providers but
pays in makespan (the crossover of the compute market); redundancy r=3
costs roughly 2-3x best effort (cancelled third replicas are not billed);
the ledger conserves (total spent == total earned).
"""

from __future__ import annotations

from ...broker.core import BrokerConfig
from ...core.qoc import QoC
from ...sim.devices import make_pool
from ...sim.runner import Simulation
from ...sim.workloads import prime_count

from ..harness import Experiment, Table

_POOL_SPEC = {"server": 1, "desktop": 2, "sbc": 4}


def _run(qoc: QoC, strategy: str, tasks: int, limit: int):
    simulation = Simulation(
        seed=31,
        strategy=strategy,
        broker_config=BrokerConfig(execution_timeout=None),
    )
    for config in make_pool(_POOL_SPEC, seed=31):
        simulation.add_provider(config)
    consumer = simulation.add_consumer()
    workload = prime_count(tasks=tasks, limit=limit)
    futures = consumer.library.map(workload.program, workload.args_list, qoc=qoc)
    makespan = simulation.run(max_time=1e4)
    results = [future.wait(0) for future in futures]
    assert all(result.ok for result in results)
    ledger = simulation.broker.ledger
    return {
        "makespan": makespan,
        "cost": sum(result.cost for result in results),
        "ledger_total": ledger.total_billed,
        "conserves": ledger.conservation_holds,
    }


def run(quick: bool = True) -> Experiment:
    # Enough tasks to need several waves: with the pool saturated, losing
    # the expensive fast providers to the cost ceiling shows up in
    # aggregate throughput, i.e. makespan.
    tasks = 60 if quick else 150
    limit = 1500 if quick else 4000
    configurations = {
        "best effort": (QoC(), "qoc"),
        "speed": (QoC.fast(), "fastest_first"),
        "cost ceiling (<= 3.0)": (QoC(cost_ceiling=3.0), "qoc"),
        "reliability (r=3)": (QoC.reliable(redundancy=3), "qoc"),
    }
    table = Table(
        title="T3: billed cost vs makespan across QoC goals",
        columns=["goal", "makespan s", "total cost", "cost vs best effort"],
    )
    outcomes = {}
    for name, (qoc, strategy) in configurations.items():
        outcomes[name] = _run(qoc, strategy, tasks, limit)
    baseline_cost = outcomes["best effort"]["cost"]
    for name, outcome in outcomes.items():
        table.add_row(
            name,
            outcome["makespan"],
            outcome["cost"],
            outcome["cost"] / baseline_cost if baseline_cost else 0.0,
        )
    table.add_note(
        f"pool {_POOL_SPEC}; prices per Ginstr: server 8.0, desktop 3.0, "
        f"sbc 0.5; workload: {tasks} x prime_count({limit})"
    )

    experiment = Experiment("T3", table)
    experiment.check(
        "every configuration's ledger conserves (spent == earned == billed)",
        all(outcome["conserves"] for outcome in outcomes.values()),
    )
    experiment.check(
        "consumer-visible costs equal the broker ledger",
        all(
            abs(outcome["cost"] - outcome["ledger_total"]) < 1e-9
            for outcome in outcomes.values()
        ),
    )
    speed = outcomes["speed"]
    ceiling = outcomes["cost ceiling (<= 3.0)"]
    experiment.check(
        "the cost ceiling cuts the bill vs the speed goal (>= 1.5x cheaper)",
        ceiling["cost"] * 1.5 <= speed["cost"],
        detail=f"ceiling {ceiling['cost']:.3f} vs speed {speed['cost']:.3f}",
    )
    experiment.check(
        "the saving is paid in makespan (ceiling slower than speed)",
        ceiling["makespan"] > speed["makespan"],
        detail=(
            f"ceiling {ceiling['makespan']:.3f}s vs speed {speed['makespan']:.3f}s"
        ),
    )
    reliable = outcomes["reliability (r=3)"]
    experiment.check(
        "redundancy r=3 bills 1.8x-3.2x best effort",
        1.8 * baseline_cost <= reliable["cost"] <= 3.2 * baseline_cost,
        detail=f"{reliable['cost'] / baseline_cost:.2f}x",
    )
    return experiment
