"""A5 — Ablation: pipelined dispatch vs assign-on-free-slot.

With plain assign-on-free-slot dispatch, every Tasklet pays a full
result→assign network round trip of provider idleness — crippling for
fine-grained Tasklets whose compute time is comparable to the network
latency (the F2 granularity story, seen from the scheduler's side).
``pipeline_depth`` lets the broker keep extra executions in flight per
provider; the provider queues them locally and starts the next one the
moment a slot frees.

Shape claims: for fine-grained Tasklets, pipelining cuts makespan
substantially (>= 1.3x at depth 4) and raises pool utilization; for
coarse Tasklets (compute >> round trip) the effect is negligible (< 10%)
— so the default of 0 is safe and the knob matters exactly when F2 says
granularity hurts.
"""

from __future__ import annotations

from ...broker.core import BrokerConfig
from ...core.qoc import QoC
from ...sim.devices import make_config
from ...sim.workloads import mandelbrot, prime_count
from ..harness import Experiment, Table, monotone_increasing
from ..simlib import run_workload


def _run(workload, depth: int):
    return run_workload(
        workload,
        pool=[make_config("desktop"), make_config("desktop")],
        qoc=QoC(),
        seed=44,
        broker_config=BrokerConfig(
            execution_timeout=None, pipeline_depth=depth
        ),
        collect_metrics=True,
    )


def run(quick: bool = True) -> Experiment:
    depths = [0, 1, 2, 4]
    fine = mandelbrot(width=32, height=48 if quick else 96, max_iter=32)
    coarse = prime_count(tasks=10 if quick else 24, limit=20000)
    table = Table(
        title="A5: pipelined dispatch vs task granularity",
        columns=[
            "pipeline depth",
            "fine makespan s",
            "fine utilization",
            "coarse makespan s",
        ],
    )
    fine_makespans = []
    fine_utilizations = []
    coarse_makespans = []
    for depth in depths:
        fine_outcome = _run(fine, depth)
        coarse_outcome = _run(coarse, depth)
        assert fine_outcome.failed == 0 and coarse_outcome.failed == 0
        fine_makespans.append(fine_outcome.makespan)
        fine_utilizations.append(fine_outcome.pool_busy_utilization)
        coarse_makespans.append(coarse_outcome.makespan)
        table.add_row(
            depth,
            fine_outcome.makespan,
            fine_outcome.pool_busy_utilization,
            coarse_outcome.makespan,
        )
    table.add_note(
        "fine: mandelbrot rows (~0.5ms compute vs 10ms round trip); "
        "coarse: prime_count(20000) (~50ms compute); 2 desktop providers"
    )

    experiment = Experiment("A5", table)
    speedup = fine_makespans[0] / fine_makespans[-1]
    experiment.check(
        "pipelining speeds fine-grained Tasklets >= 1.3x at depth 4",
        speedup >= 1.3,
        detail=f"{speedup:.2f}x",
    )
    experiment.check(
        "fine-grained utilization rises with depth",
        monotone_increasing(fine_utilizations, tolerance=0.02),
        detail=" -> ".join(f"{u:.0%}" for u in fine_utilizations),
    )
    coarse_change = abs(coarse_makespans[-1] - coarse_makespans[0]) / coarse_makespans[0]
    experiment.check(
        "coarse Tasklets are unaffected (< 10% makespan change)",
        coarse_change < 0.10,
        detail=f"{coarse_change:.1%}",
    )
    return experiment
