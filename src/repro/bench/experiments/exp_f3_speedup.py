"""F3 — Speedup versus number of providers.

The headline scalability figure: a Mandelbrot bag-of-tasks on a
homogeneous desktop pool, makespan measured as the pool grows.

Shape claims: speedup is monotone in pool size, near-linear while the
task count comfortably exceeds the slot count, and efficiency degrades
gracefully once the pool approaches the task-granularity limit (a
128-row image cannot use more than 128 slots).
"""

from __future__ import annotations

from ...broker.core import BrokerConfig
from ...core.qoc import QoC
from ...sim.devices import make_config
from ...sim.workloads import mandelbrot
from ..harness import Experiment, Table, monotone_increasing
from ..simlib import run_workload


def run(quick: bool = True) -> Experiment:
    pool_sizes = [1, 2, 4, 8] if quick else [1, 2, 4, 8, 16, 32]
    height = 48 if quick else 96
    width = 48 if quick else 128
    workload = mandelbrot(width=width, height=height, max_iter=48)
    table = Table(
        title="F3: speedup vs number of providers (homogeneous desktops)",
        columns=[
            "providers", "slots", "makespan s", "speedup", "efficiency",
            "pool utilization",
        ],
    )
    makespans = []
    speedups = []
    utilizations = []
    for index, count in enumerate(pool_sizes):
        pool = [make_config("desktop") for _ in range(count)]
        outcome = run_workload(
            workload,
            pool=pool,
            qoc=QoC(),
            seed=20,  # identical seed: only the pool size varies
            broker_config=BrokerConfig(execution_timeout=None),
            collect_metrics=True,
        )
        assert outcome.failed == 0, "F3 assumes a failure-free pool"
        makespans.append(outcome.makespan)
        speedup = makespans[0] / outcome.makespan
        speedups.append(speedup)
        utilizations.append(outcome.pool_busy_utilization)
        slots = count * pool[0].capacity
        table.add_row(
            count, slots, outcome.makespan, speedup, speedup / count,
            outcome.pool_busy_utilization,
        )
    table.add_note(f"workload: {workload.name} ({len(workload)} row Tasklets)")

    experiment = Experiment("F3", table)
    experiment.check(
        "speedup is monotone in pool size",
        monotone_increasing(speedups, tolerance=0.02),
        detail=" -> ".join(f"{s:.2f}" for s in speedups),
    )
    experiment.check(
        "doubling 1->2 providers yields >= 1.6x",
        speedups[1] >= 1.6,
        detail=f"{speedups[1]:.2f}x",
    )
    experiment.check(
        "4 providers yield >= 2.8x",
        speedups[2] >= 2.8,
        detail=f"{speedups[2]:.2f}x",
    )
    experiment.check(
        "efficiency never exceeds 1 (no superlinear artefacts)",
        all(s / n <= 1.05 for s, n in zip(speedups, pool_sizes)),
    )
    experiment.check(
        "utilization falls as the pool outgrows the workload "
        "(the efficiency loss is idle slots, not overhead)",
        utilizations[0] > utilizations[-1],
        detail=" -> ".join(f"{u:.0%}" for u in utilizations),
    )
    return experiment
