"""A4 — Ablation: the bytecode optimizer.

Measures what constant folding + jump threading + dead-code elimination
buy on (a) the standard kernels — hand-tuned code, so the honest answer
is "a little" — and (b) a constant-heavy kernel representative of
machine-generated Tasklets (unit conversions, physics constants inside
loops), where folding hoists whole subexpressions out of the hot path.

Shape claims: results are bit-identical with and without optimization
(the middleware's voting would otherwise break between optimized and
unoptimized replicas of the same source!); instruction counts never
increase; the constant-heavy kernel drops >= 25% of its executed
instructions and runs measurably faster.
"""

from __future__ import annotations

import time

from ...core import kernels
from ...tvm.compiler import compile_source
from ...tvm.optimizer import optimize_program
from ...tvm.vm import TVM, VMLimits
from ..harness import Experiment, Table

#: Machine-generated style: constant subexpressions inside the hot loop.
CONSTANT_HEAVY = """
func main(steps: int) -> float {
    var x: float = 1.0;
    for (var i: int = 0; i < steps; i = i + 1) {
        x = x * (1.0 + 0.5 / 365.0) + (2.0 * 3.14159 / 360.0)
            - (9.81 * 0.001 * 0.001) * x;
        if (x > 1000.0 * 1000.0) { x = x / (1024.0 * 1024.0); }
    }
    return x;
}
"""

_KERNEL_ARGS = {
    "mandelbrot_row": [8, 48, 32, 40],
    "prime_count": [2500],
    "numeric_integration": [0.0, 6.0, 3000],
}


def _measure(program, args):
    machine = TVM(program, limits=VMLimits(), seed=0)
    started = time.perf_counter()
    result = machine.run("main", list(args))
    elapsed = time.perf_counter() - started
    return result, machine.stats.instructions, elapsed


def run(quick: bool = True) -> Experiment:
    steps = 20_000 if quick else 80_000
    table = Table(
        title="A4: bytecode optimizer effect (executed instructions)",
        columns=[
            "kernel",
            "plain instr",
            "optimized instr",
            "reduction",
            "speedup",
            "identical result",
        ],
    )
    cases = {name: (kernels.ALL_KERNELS[name], args)
             for name, args in _KERNEL_ARGS.items()}
    cases["constant_heavy"] = (CONSTANT_HEAVY, [steps])

    reductions = {}
    identical = {}
    speedups = {}
    for name, (source, args) in cases.items():
        plain = compile_source(source)
        optimized = optimize_program(plain)
        plain_result, plain_instr, plain_s = _measure(plain, args)
        optimized_result, optimized_instr, optimized_s = _measure(optimized, args)
        identical[name] = plain_result == optimized_result
        reductions[name] = 1.0 - optimized_instr / plain_instr
        speedups[name] = plain_s / optimized_s if optimized_s > 0 else 1.0
        table.add_row(
            name,
            plain_instr,
            optimized_instr,
            f"{reductions[name]:.1%}",
            speedups[name],
            identical[name],
        )
    table.add_note(
        "standard kernels are hand-tuned (little to fold); constant_heavy "
        "models machine-generated Tasklets with constant subexpressions in "
        "the hot loop"
    )

    experiment = Experiment("A4", table)
    experiment.check(
        "optimization never changes results (replica-vote compatible)",
        all(identical.values()),
    )
    experiment.check(
        "instruction counts never increase",
        all(reduction >= -1e-9 for reduction in reductions.values()),
        detail=" ".join(f"{name}:{reduction:.1%}" for name, reduction in reductions.items()),
    )
    experiment.check(
        "constant-heavy code drops >= 25% of executed instructions",
        reductions["constant_heavy"] >= 0.25,
        detail=f"{reductions['constant_heavy']:.1%}",
    )
    experiment.check(
        "constant-heavy code runs >= 1.2x faster",
        speedups["constant_heavy"] >= 1.2,
        detail=f"{speedups['constant_heavy']:.2f}x",
    )
    return experiment
