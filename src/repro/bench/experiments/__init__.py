"""The reconstructed evaluation: one module per table/figure (see DESIGN.md §3)."""

from . import (
    exp_a1_misreport,
    exp_a2_voting,
    exp_a3_cache,
    exp_a4_optimizer,
    exp_a5_pipeline,
    exp_f1_vm_overhead,
    exp_f2_breakdown,
    exp_f3_speedup,
    exp_f4_heterogeneity,
    exp_f5_reliability,
    exp_f6_redundancy,
    exp_f7_churn,
    exp_f8_tcp,
    exp_f9_dag,
    exp_t1_devices,
    exp_t2_qoc,
    exp_t3_cost,
)

#: Registry in paper order; each value is a module with ``run(quick) -> Experiment``.
ALL_EXPERIMENTS = {
    "T1": exp_t1_devices,
    "T2": exp_t2_qoc,
    "T3": exp_t3_cost,
    "F1": exp_f1_vm_overhead,
    "F2": exp_f2_breakdown,
    "F3": exp_f3_speedup,
    "F4": exp_f4_heterogeneity,
    "F5": exp_f5_reliability,
    "F6": exp_f6_redundancy,
    "F7": exp_f7_churn,
    "F8": exp_f8_tcp,
    "F9": exp_f9_dag,
    "A1": exp_a1_misreport,
    "A2": exp_a2_voting,
    "A3": exp_a3_cache,
    "A4": exp_a4_optimizer,
    "A5": exp_a5_pipeline,
}

__all__ = ["ALL_EXPERIMENTS"]
