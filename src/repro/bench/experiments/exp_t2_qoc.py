"""T2 — Quality of Computation goals and their measured effect.

The qualitative table of the paper: one row per QoC goal, showing the
mechanism that implements it and its measured signature on the same
workload and pool — executions issued, remote executions (did data leave
the device?), makespan, and success under injected drops.

Shape claims: *privacy* issues zero remote executions; *reliability*
issues ~r times the executions and survives drops that break best-effort;
*speed* completes no slower than best-effort placement on a heterogeneous
pool.
"""

from __future__ import annotations

import random

from ...broker.core import BrokerConfig
from ...core.qoc import QoC
from ...provider.failure import ExecutionFailureModel
from ...sim.devices import make_pool
from ...sim.workloads import prime_count
from ..harness import Experiment, Table
from ..simlib import run_workload

_POOL_SPEC = {"desktop": 2, "laptop": 2, "smartphone": 2}


def _run_remote(qoc: QoC, tasks: int, drop_p: float, seed: int):
    failure_for = {
        index: ExecutionFailureModel(
            drop_probability=drop_p, rng=random.Random(900 + index)
        )
        for index in range(sum(_POOL_SPEC.values()))
    }
    return run_workload(
        prime_count(tasks=tasks, limit=900),
        pool=make_pool(_POOL_SPEC, seed=9),
        qoc=qoc,
        seed=seed,
        broker_config=BrokerConfig(execution_timeout=1.5),
        failure_for=failure_for,
        max_time=500.0,
    )


def _run_local(tasks: int):
    """The privacy goal: local-only execution through the library."""
    from ...sim.runner import Simulation

    simulation = Simulation(seed=11)
    for config in make_pool(_POOL_SPEC, seed=9):
        simulation.add_provider(config)
    consumer = simulation.add_consumer()
    workload = prime_count(tasks=tasks, limit=900)
    futures = consumer.library.map(
        workload.program, workload.args_list, qoc=QoC.private()
    )
    simulation.run(max_time=100.0)
    ok = sum(1 for future in futures if future.done and future.wait(0).ok)
    return ok, simulation.broker.stats.executions_issued


def run(quick: bool = True) -> Experiment:
    tasks = 12 if quick else 30
    drop_p = 0.3
    table = Table(
        title="T2: QoC goals, mechanisms, and measured signatures",
        columns=[
            "goal",
            "mechanism",
            "remote executions",
            "ok%",
            "makespan s",
        ],
    )

    best_effort = _run_remote(QoC(), tasks, drop_p, seed=1)
    speed = _run_remote(QoC.fast(), tasks, drop_p, seed=1)
    reliable = _run_remote(QoC.reliable(redundancy=3), tasks, drop_p, seed=1)
    retry = _run_remote(QoC(max_attempts=6), tasks, drop_p, seed=1)
    local_ok, local_remote_executions = _run_local(tasks)

    table.add_row(
        "best effort (default)",
        "single placement, no recovery",
        best_effort.executions_issued,
        best_effort.success_rate * 100,
        best_effort.makespan if best_effort.makespan != float("inf") else -1,
    )
    table.add_row(
        "speed",
        "benchmark-aware fastest-first placement",
        speed.executions_issued,
        speed.success_rate * 100,
        speed.makespan if speed.makespan != float("inf") else -1,
    )
    table.add_row(
        "reliability (r=3)",
        "redundant replicas + majority vote + re-issue",
        reliable.executions_issued,
        reliable.success_rate * 100,
        reliable.makespan,
    )
    table.add_row(
        "reliability (retry x6)",
        "re-issue on failure, single replica",
        retry.executions_issued,
        retry.success_rate * 100,
        retry.makespan,
    )
    table.add_row(
        "privacy (local only)",
        "consumer-side TVM, Tasklet never shipped",
        local_remote_executions,
        100.0 * local_ok / tasks,
        0.0,
    )
    table.add_note(
        f"same workload ({tasks} prime-count tasks) and pool for every row; "
        f"providers silently drop {drop_p:.0%} of results"
    )

    experiment = Experiment("T2", table)
    experiment.check(
        "privacy issues zero remote executions and still succeeds",
        local_remote_executions == 0 and local_ok == tasks,
    )
    experiment.check(
        "reliability survives drops that break best effort",
        reliable.success_rate >= 0.95 > best_effort.success_rate + 0.04,
        detail=(
            f"reliable={reliable.success_rate:.0%}, "
            f"best effort={best_effort.success_rate:.0%}"
        ),
    )
    experiment.check(
        "redundancy r=3 issues ~3x the executions of best effort",
        reliable.executions_issued >= 2.2 * best_effort.executions_issued,
        detail=f"{reliable.executions_issued} vs {best_effort.executions_issued}",
    )
    experiment.check(
        "retry achieves reliability without proportional extra work",
        retry.success_rate >= 0.95
        and retry.executions_issued < reliable.executions_issued,
        detail=f"retry issued {retry.executions_issued}",
    )
    return experiment
