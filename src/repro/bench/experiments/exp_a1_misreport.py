"""A1 — Ablation: learning observed speed vs trusting self-benchmarks.

Benchmark-aware scheduling is only as good as the scores it trusts.  Here
two slow providers *overstate* their benchmark 100x (a stale score, a
thermally-throttled device, or a liar), which makes them the top-ranked
placement targets.  Because the broker is work-conserving, misreporting
only matters when the scheduler has a *choice* — so the experiment first
runs a warm-up wave (during which the EWMA can learn the truth) and then
measures a wave small enough to fit on the honest fast providers alone.

Shape claims: with learning disabled the liars receive measured-wave
tasks and the makespan suffers by several times; with the EWMA enabled the
warm-up exposes the lie and the measured wave avoids the liars, recovering
close to honest-pool performance.
"""

from __future__ import annotations

from ...broker.core import BrokerConfig
from ...core.qoc import QoC
from ...provider.core import ProviderConfig
from ...sim.runner import Simulation
from ...sim.workloads import prime_count
from ..harness import Experiment, Table


def _pool(lying: bool) -> list[ProviderConfig]:
    """2 honest desktops + 2 slow devices that may claim 100x their speed."""
    pool = [
        ProviderConfig(device_class="desktop", capacity=2, speed_ips=80e6)
        for _ in range(2)
    ]
    for _ in range(2):
        actual = 8e6
        claimed = actual * 100 if lying else actual
        pool.append(
            ProviderConfig(
                device_class="sbc",
                capacity=1,
                speed_ips=actual,
                benchmark_score=claimed,
            )
        )
    return pool


def _two_wave_makespan(
    lying: bool, learn: bool, warmup_tasks: int, measured_tasks: int, limit: int
) -> float:
    simulation = Simulation(
        seed=61,
        strategy="fastest_first",
        broker_config=BrokerConfig(execution_timeout=None, learn_speed=learn),
    )
    for config in _pool(lying):
        simulation.add_provider(config)
    consumer = simulation.add_consumer()
    workload = prime_count(tasks=warmup_tasks, limit=limit)

    warmup = consumer.library.map(
        workload.program, workload.args_list, qoc=QoC.fast()
    )
    simulation.run(max_time=1e4)
    assert all(future.wait(0).ok for future in warmup)

    measured_workload = prime_count(tasks=measured_tasks, limit=limit)
    wave_start = simulation.now
    measured = consumer.library.map(
        measured_workload.program, measured_workload.args_list, qoc=QoC.fast()
    )
    simulation.run(max_time=1e4)
    completions = [future.wait(0) for future in measured]
    assert all(result.ok for result in completions)
    return max(result.completed_at for result in completions) - wave_start


def run(quick: bool = True) -> Experiment:
    warmup_tasks = 8
    measured_tasks = 4  # fits on the honest desktops' 4 slots
    limit = 6000 if quick else 10000
    table = Table(
        title="A1: EWMA speed learning vs trusted self-benchmarks",
        columns=["pool", "speed learning", "measured-wave makespan s", "vs honest"],
    )
    results: dict[tuple[bool, bool], float] = {}
    for lying in (False, True):
        for learn in (True, False):
            results[(lying, learn)] = _two_wave_makespan(
                lying, learn, warmup_tasks, measured_tasks, limit
            )
    honest = results[(False, True)]
    for lying in (False, True):
        for learn in (True, False):
            table.add_row(
                "2 liars (100x overstated)" if lying else "honest",
                "on" if learn else "off",
                results[(lying, learn)],
                results[(lying, learn)] / honest,
            )
    table.add_note(
        "pool: 2 desktops (80 Minstr/s, 2 slots) + 2 slow devices "
        "(8 Minstr/s); liars claim 800 Minstr/s; strategy: fastest_first; "
        f"warm-up {warmup_tasks} tasks, measured wave {measured_tasks} tasks"
    )

    experiment = Experiment("A1", table)
    experiment.check(
        "misreported benchmarks hurt when learning is off (>= 2x honest)",
        results[(True, False)] > honest * 2.0,
        detail=f"{results[(True, False)] / honest:.2f}x honest",
    )
    experiment.check(
        "EWMA learning recovers most of the damage (within 1.5x honest)",
        results[(True, True)] <= honest * 1.5,
        detail=f"{results[(True, True)] / honest:.2f}x honest",
    )
    experiment.check(
        "learning does not hurt an honest pool (within 10%)",
        results[(False, True)] <= results[(False, False)] * 1.1,
    )
    return experiment
