"""A2 — Ablation: majority voting vs accepting the first result.

Two of five providers are byzantine: they return *corrupted* values for
most of their executions.  Best-effort execution accepts whatever comes
back; redundancy-3 with exact-equality majority voting should filter the
corruption out.

Shape claims: without voting, a substantial fraction of final results is
wrong (and the middleware cannot even tell); with r=3 voting, wrong final
results drop to zero while success stays high.
"""

from __future__ import annotations

import random

from ...broker.core import BrokerConfig
from ...core.qoc import QoC
from ...provider.failure import ExecutionFailureModel
from ...sim.devices import make_config
from ...sim.workloads import prime_count
from ..harness import Experiment, Table
from ..simlib import run_workload


def run(quick: bool = True) -> Experiment:
    tasks = 40 if quick else 100
    corrupt_p = 0.8
    byzantine = 2
    providers = 5
    table = Table(
        title="A2: result voting under byzantine providers",
        columns=["policy", "ok%", "wrong final values", "executions issued"],
    )
    outcomes = {}
    for name, qoc in (
        ("first result (r=1)", QoC()),
        ("majority vote (r=3)", QoC.reliable(redundancy=3)),
    ):
        failure_for = {
            index: ExecutionFailureModel(
                corrupt_probability=corrupt_p if index < byzantine else 0.0,
                rng=random.Random(700 + index),
            )
            for index in range(providers)
        }
        outcome = run_workload(
            prime_count(tasks=tasks, limit=700),
            pool=[make_config("desktop") for _ in range(providers)],
            qoc=qoc,
            seed=8,
            broker_config=BrokerConfig(execution_timeout=2.0),
            failure_for=failure_for,
            max_time=300.0,
        )
        outcomes[name] = outcome
        table.add_row(
            name,
            outcome.success_rate * 100,
            outcome.wrong_values,
            outcome.executions_issued,
        )
    table.add_note(
        f"{byzantine} of {providers} providers corrupt {corrupt_p:.0%} of "
        "their results; corruption is value-level, so only comparing "
        "replicas can catch it"
    )

    experiment = Experiment("A2", table)
    first = outcomes["first result (r=1)"]
    voted = outcomes["majority vote (r=3)"]
    experiment.check(
        "without voting, corrupted values reach the application",
        first.wrong_values >= tasks * 0.15,
        detail=f"{first.wrong_values}/{tasks} wrong",
    )
    experiment.check(
        "majority voting delivers zero wrong values",
        voted.wrong_values == 0,
    )
    experiment.check(
        "voting keeps success high (>= 95%)",
        voted.success_rate >= 0.95,
        detail=f"{voted.success_rate:.0%}",
    )
    return experiment
