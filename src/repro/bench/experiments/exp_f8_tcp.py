"""F8 — Real-transport scaling (wall clock).

Everything else in the evaluation runs on the simulator; this experiment
closes the loop on real infrastructure: the TCP broker, provider
*processes* (own interpreter, GIL-free), and a consumer on loopback
sockets, measuring actual wall-clock speedup of a CPU-bound bag of tasks.

Shape claims: wall-clock time falls as provider processes are added;
2 processes give >= 1.4x (given >= 2 usable cores); results remain correct.
"""

from __future__ import annotations

import os
import time

from ...core.kernels import PRIME_COUNT, python_prime_count
from ...transport.tcp import TcpBroker, TcpConsumer, spawn_provider_processes
from ..harness import Experiment, Table, monotone_increasing


def _measure(process_count: int, tasks: int, limit: int) -> tuple[float, bool]:
    broker = TcpBroker().start()
    host, port = broker.address
    providers = spawn_provider_processes(
        host, port, count=process_count, benchmark_score=1e7
    )
    consumer = None
    try:
        deadline = time.perf_counter() + 15.0
        while len(broker.core.registry) < process_count:
            if time.perf_counter() > deadline:
                raise TimeoutError("providers failed to register")
            time.sleep(0.05)
        consumer = TcpConsumer(host, port).start()
        started = time.perf_counter()
        futures = consumer.library.map(PRIME_COUNT, [[limit]] * tasks)
        values = consumer.library.gather(futures, timeout=300)
        elapsed = time.perf_counter() - started
        correct = all(value == python_prime_count(limit) for value in values)
        return elapsed, correct
    finally:
        if consumer is not None:
            consumer.stop()
        for provider in providers:
            provider.stop()
        broker.stop()


def run(quick: bool = True) -> Experiment:
    cores = os.cpu_count() or 1
    process_counts = [1, 2] if quick else [1, 2, 4]
    process_counts = [count for count in process_counts if count <= max(1, cores)]
    tasks = 8 if quick else 16
    limit = 4000 if quick else 8000
    table = Table(
        title="F8: wall-clock scaling on the real TCP transport",
        columns=["provider processes", "wall s", "speedup", "correct"],
    )
    times = []
    speedups = []
    for count in process_counts:
        elapsed, correct = _measure(count, tasks, limit)
        times.append(elapsed)
        speedups.append(times[0] / elapsed)
        table.add_row(count, elapsed, speedups[-1], correct)
    table.add_note(
        f"loopback TCP, provider processes (multiprocessing), host has "
        f"{cores} cores; workload: {tasks} x prime_count({limit})"
    )

    experiment = Experiment("F8", table)
    experiment.check(
        "results over the real transport are correct",
        all(row[3] for row in table.rows),
    )
    experiment.check(
        "wall-clock speedup is monotone in provider processes",
        monotone_increasing(speedups, tolerance=0.1),
        detail=" -> ".join(f"{s:.2f}" for s in speedups),
    )
    if len(process_counts) >= 2 and cores >= 2:
        experiment.check(
            "2 provider processes give >= 1.4x",
            speedups[1] >= 1.4,
            detail=f"{speedups[1]:.2f}x",
        )
    return experiment
