"""F4 — Scheduling strategies under heterogeneity.

The system's raison d'être: a pool spanning servers to single-board
computers, a long-tailed mixed workload, and the question of whether
benchmark-aware scheduling beats heterogeneity-oblivious placement.

Shape claims: speed-aware strategies (fastest_first, qoc with the speed
goal) achieve lower makespan than random placement; random is the worst
or near-worst; the win comes from keeping the long tasks off the slow
devices (straggler avoidance).
"""

from __future__ import annotations

from ...broker.core import BrokerConfig
from ...core.qoc import QoC
from ...sim.devices import make_pool
from ...sim.workloads import mixed
from ..harness import Experiment, Table
from ..simlib import run_workload

_POOL_SPEC = {"server": 1, "desktop": 2, "laptop": 2, "smartphone": 4, "sbc": 3}
_STRATEGIES = ["random", "round_robin", "least_loaded", "fastest_first", "qoc"]


def run(quick: bool = True) -> Experiment:
    scale = 1 if quick else 3
    repeats = 3 if quick else 5
    table = Table(
        title="F4: makespan by scheduling strategy (heterogeneous pool)",
        columns=["strategy", "mean makespan s", "worst s", "vs random"],
    )
    mean_makespan: dict[str, float] = {}
    worst: dict[str, float] = {}
    for strategy in _STRATEGIES:
        samples = []
        for repeat in range(repeats):
            workload = mixed(seed=77 + repeat, scale=scale)
            qoc = QoC.fast() if strategy in ("fastest_first", "qoc") else QoC()
            outcome = run_workload(
                workload,
                pool=make_pool(_POOL_SPEC, seed=4),
                qoc=qoc,
                strategy=strategy,
                seed=repeat,
                broker_config=BrokerConfig(execution_timeout=None),
            )
            assert outcome.failed == 0
            samples.append(outcome.makespan)
        mean_makespan[strategy] = sum(samples) / len(samples)
        worst[strategy] = max(samples)
    for strategy in _STRATEGIES:
        table.add_row(
            strategy,
            mean_makespan[strategy],
            worst[strategy],
            mean_makespan["random"] / mean_makespan[strategy],
        )
    table.add_note(
        f"pool: {_POOL_SPEC}; workload: long-tailed mixed prime-count tasks, "
        f"{repeats} repeats"
    )

    experiment = Experiment("F4", table)
    experiment.check(
        "benchmark-aware (fastest_first) beats random",
        mean_makespan["fastest_first"] < mean_makespan["random"],
        detail=f"{mean_makespan['random'] / mean_makespan['fastest_first']:.2f}x",
    )
    experiment.check(
        "the QoC composite matches fastest_first within 15%",
        mean_makespan["qoc"] <= mean_makespan["fastest_first"] * 1.15,
    )
    experiment.check(
        "a speed-aware strategy is the overall winner (within 5% of best)",
        min(mean_makespan["fastest_first"], mean_makespan["qoc"])
        <= min(mean_makespan.values()) * 1.05,
    )
    experiment.check(
        "speed-aware worst case beats oblivious worst case",
        min(worst["fastest_first"], worst["qoc"])
        <= min(worst["random"], worst["round_robin"], worst["least_loaded"]),
        detail=(
            f"aware={min(worst['fastest_first'], worst['qoc']):.3f}s, "
            f"oblivious={min(worst['random'], worst['round_robin'], worst['least_loaded']):.3f}s"
        ),
    )
    return experiment
