"""F5 — Reliability under provider failures.

Providers silently drop results with probability ``p`` (crash before
reporting).  We sweep ``p`` for four QoC configurations:

* ``best_effort``   — one attempt, no recovery;
* ``retry_x6``      — one replica, re-issued up to 6 times on failure;
* ``redundancy_2``  — two replicas (2 agreeing results required), up to 3 waves;
* ``redundancy_3``  — three replicas (majority of 2 required), up to 3 waves.

Shape claims: best-effort success falls roughly as ``1-p``; every recovery
mechanism dominates best effort at every ``p``; retries trade time for
success (completion time grows with ``p``).
"""

from __future__ import annotations

import random

from ...broker.core import BrokerConfig
from ...core.qoc import QoC
from ...provider.failure import ExecutionFailureModel
from ...sim.devices import make_config
from ...sim.workloads import prime_count
from ..harness import Experiment, Table, monotone_decreasing
from ..simlib import run_workload

_CONFIGS = {
    "best_effort": QoC(redundancy=1, max_attempts=1),
    "retry_x6": QoC(redundancy=1, max_attempts=6),
    "redundancy_2": QoC(redundancy=2, max_attempts=3),
    "redundancy_3": QoC(redundancy=3, max_attempts=3),
}


def run(quick: bool = True) -> Experiment:
    probabilities = [0.0, 0.1, 0.3, 0.5, 0.7] if quick else [0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9]
    tasks = 24 if quick else 60
    providers = 6
    table = Table(
        title="F5: success rate vs provider drop probability",
        columns=["drop p"] + [f"{name} ok%" for name in _CONFIGS] + ["retry_x6 makespan s"],
    )
    success: dict[str, list[float]] = {name: [] for name in _CONFIGS}
    retry_makespans: list[float] = []
    for probability in probabilities:
        row: list = [probability]
        for name, qoc in _CONFIGS.items():
            workload = prime_count(tasks=tasks, limit=600)
            failure_for = {
                index: ExecutionFailureModel(
                    drop_probability=probability,
                    rng=random.Random(1000 + index),
                )
                for index in range(providers)
            }
            outcome = run_workload(
                workload,
                pool=[make_config("desktop") for _ in range(providers)],
                qoc=qoc,
                seed=int(probability * 100),
                broker_config=BrokerConfig(execution_timeout=1.5),
                failure_for=failure_for,
                max_time=600.0,
            )
            success[name].append(outcome.success_rate)
            row.append(outcome.success_rate * 100)
            if name == "retry_x6":
                retry_makespans.append(
                    outcome.makespan if outcome.makespan != float("inf") else -1.0
                )
        row.append(retry_makespans[-1])
        table.add_row(*row)
    table.add_note(
        f"{providers} desktop providers, {tasks} tasks; drops are detected by "
        "the broker's 1.5s execution timeout and re-issued when QoC allows"
    )

    experiment = Experiment("F5", table)
    experiment.check(
        "best-effort success decays as drop probability grows",
        monotone_decreasing(success["best_effort"], tolerance=0.08),
        detail=" -> ".join(f"{s:.0%}" for s in success["best_effort"]),
    )
    expected_decay = all(
        abs(observed - (1.0 - p)) <= 0.15
        for observed, p in zip(success["best_effort"], probabilities)
    )
    experiment.check(
        "best-effort success tracks (1 - p) within 15 points",
        expected_decay,
    )
    experiment.check(
        "retries dominate best effort at every failure level",
        all(
            retry >= best - 1e-9
            for retry, best in zip(success["retry_x6"], success["best_effort"])
        ),
    )
    experiment.check(
        "retry success stays >= 95% up to p=0.5",
        all(
            rate >= 0.95
            for rate, p in zip(success["retry_x6"], probabilities)
            if p <= 0.5
        ),
    )
    experiment.check(
        "recovery costs time: retry makespan grows with p",
        retry_makespans[-1] > retry_makespans[0],
        detail=f"{retry_makespans[0]:.2f}s -> {retry_makespans[-1]:.2f}s",
    )
    return experiment
