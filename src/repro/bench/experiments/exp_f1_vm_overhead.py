"""F1 — TVM interpretation overhead vs native execution.

The paper quantifies what hardware independence costs: the same kernel
executed inside the Tasklet Virtual Machine versus natively.  Our
"native" baseline is the host language (pure Python) — the substitution
preserves the measured quantity, namely the multiplicative cost of the
portable bytecode interpretation layer.

The TVM column measures the *quickened* engine (superinstruction fusion,
:mod:`repro.tvm.quicken`) because that is the engine providers actually
run assigned Tasklets on; the unquickened dispatch loop is reported as
the ``unquick`` ablation column so the fusion win stays visible here
alongside the BENCH_vm.json perf guard.

Shape claims: the TVM is consistently slower than native (factor > 1),
the factor is bounded (interpretation, not pathology — geometric mean
within [3x, 300x]), and it is roughly *constant across input sizes* for a
given kernel (linear-time interpretation).
"""

from __future__ import annotations

import time

from ...core import kernels
from ...tvm.compiler import compile_source
from ...tvm.vm import TVM, VMLimits
from ..harness import Experiment, Table, geometric_mean

#: kernel name -> (source, native callable, quick args, full args)
_CASES = {
    "mandelbrot_row": (
        kernels.MANDELBROT_ROW,
        kernels.python_mandelbrot_row,
        [24, 64, 48, 40],
        [24, 192, 144, 120],
    ),
    "matmul_tile": (
        kernels.MATMUL_TILE,
        kernels.python_matmul_tile,
        [[float(i % 7) for i in range(100)], [float(i % 5) for i in range(100)], 10],
        [[float(i % 7) for i in range(400)], [float(i % 5) for i in range(400)], 20],
    ),
    "fibonacci": (kernels.FIBONACCI, kernels.python_fibonacci, [16], [21]),
    "prime_count": (
        kernels.PRIME_COUNT,
        kernels.python_prime_count,
        [2500],
        [12000],
    ),
    "integration": (
        kernels.NUMERIC_INTEGRATION,
        kernels.python_numeric_integration,
        [0.0, 10.0, 4000],
        [0.0, 10.0, 40000],
    ),
}


def _time_of(callable_, repetitions: int = 3) -> float:
    """Fastest-of-N wall time of ``callable_()`` in seconds."""
    best = float("inf")
    for _ in range(repetitions):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def run(quick: bool = True) -> Experiment:
    table = Table(
        title="F1: TVM execution overhead vs native (host Python)",
        columns=[
            "kernel", "native ms", "TVM ms", "unquick ms", "slowdown", "Minstr/s"
        ],
    )
    slowdowns = []
    for name, (source, native, quick_args, full_args) in _CASES.items():
        args = quick_args if quick else full_args
        program = compile_source(source)

        native_s = _time_of(lambda: native(*args))

        instructions = 0

        def run_tvm(quickened: bool = True):
            nonlocal instructions
            machine = TVM(program, limits=VMLimits(), seed=0, quickened=quickened)
            machine.run("main", list(args))
            instructions = machine.stats.instructions

        tvm_s = _time_of(run_tvm)
        unquickened_s = _time_of(lambda: run_tvm(quickened=False))
        slowdown = tvm_s / native_s if native_s > 0 else float("inf")
        slowdowns.append(slowdown)
        table.add_row(
            name,
            native_s * 1e3,
            tvm_s * 1e3,
            unquickened_s * 1e3,
            slowdown,
            instructions / tvm_s / 1e6,
        )
    table.add_note(
        "substitution: 'native' is host-language Python, not compiled C; "
        "the measured quantity is the cost of the portable VM layer"
    )
    table.add_note(
        "overhead is measured on the quickened engine (what providers run); "
        "'unquick ms' is the no-fusion ablation, same results and "
        "instruction counts by construction"
    )

    experiment = Experiment("F1", table)
    experiment.check(
        "TVM is slower than native for every kernel (slowdown > 1)",
        all(s > 1.0 for s in slowdowns),
        detail=f"min={min(slowdowns):.1f}x",
    )
    gmean = geometric_mean(slowdowns)
    experiment.check(
        "geometric-mean slowdown is bounded interpretation cost (3x-300x)",
        3.0 <= gmean <= 300.0,
        detail=f"gmean={gmean:.1f}x",
    )
    spread = max(slowdowns) / min(slowdowns)
    experiment.check(
        "slowdown is kernel-dependent but within one order of magnitude",
        spread <= 10.0,
        detail=f"max/min={spread:.1f}",
    )
    return experiment
