"""F2 — Middleware round-trip decomposition.

Where does the time of one offloaded Tasklet go?  We run a single Tasklet
through the full simulated middleware on a bandwidth-modelled network and
decompose its end-to-end latency into: code+data transfer to the provider
(network), provider-side startup overhead + execution, and result return,
sweeping the kernel's computational size.

Shape claims: for tiny Tasklets the fixed middleware overhead dominates
(offloading does not pay); as compute grows, execution share approaches
100% and overhead share falls below 10% — the crossover the paper uses to
argue Tasklets should not be too fine-grained.
"""

from __future__ import annotations

from ...broker.core import BrokerConfig
from ...core.qoc import QoC
from ...sim.devices import make_config
from ...sim.network import BandwidthLatency
from ...sim.runner import Simulation
from ...sim.workloads import prime_count
from ..harness import Experiment, Table, monotone_increasing


def _one_roundtrip(limit: int, seed: int) -> dict:
    simulation = Simulation(
        seed=seed,
        network=BandwidthLatency(base_s=0.002, bandwidth_bps=50e6),
        broker_config=BrokerConfig(execution_timeout=None),
    )
    config = make_config("desktop")
    simulation.add_provider(config)
    consumer = simulation.add_consumer()
    workload = prime_count(tasks=1, limit=limit)
    future = consumer.library.submit(
        workload.program, args=workload.args_list[0], qoc=QoC()
    )
    simulation.run(max_time=1e4)
    result = future.wait(0)
    assert result.ok, result.error
    record = result.executions[0]
    execution_s = record.duration  # startup overhead + compute
    total_s = result.latency
    transfer_s = total_s - execution_s  # submit + assign + result legs
    return {
        "limit": limit,
        "total_ms": total_s * 1e3,
        "transfer_ms": transfer_s * 1e3,
        "startup_ms": config.startup_overhead_s * 1e3,
        "execute_ms": (execution_s - config.startup_overhead_s) * 1e3,
        "overhead_share": (total_s - (execution_s - config.startup_overhead_s))
        / total_s,
    }


def run(quick: bool = True) -> Experiment:
    limits = (
        [100, 400, 1600, 6400, 25600]
        if quick
        else [100, 400, 1600, 6400, 25600, 102400]
    )
    table = Table(
        title="F2: round-trip decomposition of one offloaded Tasklet",
        columns=[
            "kernel size (limit)",
            "total ms",
            "transfer ms",
            "startup ms",
            "execute ms",
            "overhead share",
        ],
    )
    shares = []
    totals = []
    for index, limit in enumerate(limits):
        point = _one_roundtrip(limit, seed=10 + index)
        shares.append(point["overhead_share"])
        totals.append(point["total_ms"])
        table.add_row(
            limit,
            point["total_ms"],
            point["transfer_ms"],
            point["startup_ms"],
            point["execute_ms"],
            point["overhead_share"],
        )
    table.add_note(
        "network: 2ms base + 50 Mbit/s bandwidth model; provider: desktop class"
    )

    experiment = Experiment("F2", table)
    experiment.check(
        "middleware overhead dominates tiny Tasklets (share > 50% at smallest)",
        shares[0] > 0.5,
        detail=f"share={shares[0]:.0%}",
    )
    experiment.check(
        "overhead share falls monotonically with Tasklet size",
        monotone_increasing([-s for s in shares]),
        detail=" -> ".join(f"{s:.0%}" for s in shares),
    )
    experiment.check(
        "compute dominates the largest Tasklets (share < 25% at largest)",
        shares[-1] < 0.25,
        detail=f"share={shares[-1]:.0%}",
    )
    experiment.check(
        "total latency grows with kernel size",
        monotone_increasing(totals),
    )
    return experiment
