"""Benchmark harness: tables, shape checks, simulation plumbing, experiments."""

from .harness import (
    Experiment,
    ShapeCheck,
    Table,
    geometric_mean,
    monotone_decreasing,
    monotone_increasing,
    sweep,
)
from .simlib import RunOutcome, run_workload

__all__ = [
    "Experiment",
    "ShapeCheck",
    "Table",
    "geometric_mean",
    "monotone_decreasing",
    "monotone_increasing",
    "sweep",
    "RunOutcome",
    "run_workload",
]
