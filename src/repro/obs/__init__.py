"""Live telemetry: metrics registry, distributed tracing, profiling glue.

Dependency-free observability for the Tasklet middleware.  Three pillars:

* :mod:`repro.obs.metrics` — a thread-safe registry of counters, gauges,
  and fixed-bucket histograms with labeled families, rendered as
  Prometheus text exposition or a JSON snapshot;
* :mod:`repro.obs.trace` — cross-node Tasklet tracing: a
  :class:`TraceContext` rides on envelopes so one Tasklet's life
  (submit → place → assign → execute → result) becomes a single
  reconstructable span tree, stored in an in-memory ring buffer;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade the cores
  accept, plus per-subsystem metric bundles (broker, provider, consumer,
  transport).

Everything is strictly opt-in: every instrumented core takes
``telemetry=None`` and the disabled path reduces to one ``is not None``
check per event (guarded by ``benchmarks/bench_micro_telemetry.py``).
"""

from .bridge import publish_broker_stats, publish_summary
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_LATENCY_BUCKETS,
    parse_prometheus,
)
from .trace import Span, SpanStore, TraceContext, Tracer, build_trace_tree, format_trace
from .telemetry import (
    BrokerMetrics,
    ConsumerMetrics,
    ProviderMetrics,
    Telemetry,
    TransportMetrics,
)

__all__ = [
    "BrokerMetrics",
    "ConsumerMetrics",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProviderMetrics",
    "Span",
    "SpanStore",
    "Telemetry",
    "TraceContext",
    "Tracer",
    "TransportMetrics",
    "build_trace_tree",
    "format_trace",
    "parse_prometheus",
    "publish_broker_stats",
    "publish_summary",
]
