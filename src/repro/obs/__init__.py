"""Live observability: metrics, tracing, events, health, HTTP endpoints.

Dependency-free observability for the Tasklet middleware.  Five pillars:

* :mod:`repro.obs.metrics` — a thread-safe registry of counters, gauges,
  and fixed-bucket histograms with labeled families, rendered as
  Prometheus text exposition or a JSON snapshot;
* :mod:`repro.obs.trace` — cross-node Tasklet tracing: a
  :class:`TraceContext` rides on envelopes so one Tasklet's life
  (submit → place → assign → execute → result) becomes a single
  reconstructable span tree, stored in an in-memory ring buffer;
* :mod:`repro.obs.events` — the flight recorder: typed lifecycle events
  (node join/leave, placement, re-issue, reconnect, faults, alerts) in a
  bounded ring, optionally mirrored to rotating JSONL files;
* :mod:`repro.obs.health` — the broker-side cluster health model:
  per-provider scorecards and the straggler watchdog;
* :mod:`repro.obs.server` — :class:`ObsServer`, a stdlib HTTP server
  exposing ``/metrics``, ``/healthz``, ``/readyz``, ``/traces``, and
  ``/events`` from any middleware process;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade the cores
  accept, plus per-subsystem metric bundles (broker, provider, consumer,
  transport).

Everything is strictly opt-in: every instrumented core takes
``telemetry=None`` and the disabled path reduces to one ``is not None``
check per event (guarded by ``benchmarks/bench_micro_telemetry.py``).
"""

from .analysis import (
    NodeTiming,
    WorkflowTraceAnalysis,
    analyze_workflow,
    chrome_trace_json,
    find_workflow_trace,
    latency_summary,
    to_chrome_trace,
    workflow_ids,
)
from .bridge import publish_broker_stats, publish_summary
from .events import Event, FlightRecorder
from .health import (
    HealthModel,
    ProviderScorecard,
    StragglerAlert,
    StragglerWatchdog,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_LATENCY_BUCKETS,
    parse_prometheus,
)
from .server import ObsServer
from .trace import Span, SpanStore, TraceContext, Tracer, build_trace_tree, format_trace
from .telemetry import (
    BrokerMetrics,
    ConsumerMetrics,
    ProviderMetrics,
    Telemetry,
    TransportMetrics,
)

__all__ = [
    "BrokerMetrics",
    "ConsumerMetrics",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Event",
    "FlightRecorder",
    "Gauge",
    "HealthModel",
    "Histogram",
    "MetricsRegistry",
    "NodeTiming",
    "ObsServer",
    "ProviderMetrics",
    "ProviderScorecard",
    "Span",
    "SpanStore",
    "StragglerAlert",
    "StragglerWatchdog",
    "Telemetry",
    "TraceContext",
    "Tracer",
    "TransportMetrics",
    "WorkflowTraceAnalysis",
    "analyze_workflow",
    "build_trace_tree",
    "chrome_trace_json",
    "find_workflow_trace",
    "format_trace",
    "latency_summary",
    "parse_prometheus",
    "publish_broker_stats",
    "publish_summary",
    "to_chrome_trace",
    "workflow_ids",
]
