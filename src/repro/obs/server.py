"""ObsServer: live HTTP observability endpoints, stdlib-only.

A tiny threaded HTTP server embeddable in any middleware process (the
TCP broker and providers grow an ``obs_port=`` knob; anything holding a
:class:`~repro.obs.telemetry.Telemetry` can run one).  It serves:

* ``GET /metrics``  — Prometheus text exposition (``?format=json`` for
  the registry snapshot);
* ``GET /healthz``  — JSON health document from the owner's callback
  (broker: cluster scorecards; provider: connection state); HTTP 503
  when the status is ``unhealthy``;
* ``GET /readyz``   — readiness probe (503 until the owner is serving);
* ``GET /traces``   — span-tree dump (``?format=json`` for raw spans,
  ``?format=chrome`` for Chrome trace-event JSON loadable in Perfetto,
  ``?format=summary`` for the workflow latency digest, ``?trace_id=`` to
  select one trace, ``?workflow_id=`` to select one workflow's trace —
  merging spans pulled from configured peer ObsServers, so a federated
  workflow's forwarded executions appear in the same tree);
* ``GET /events``   — flight-recorder events (``?kind=``, ``?limit=``,
  default 100).

Built on :mod:`http.server`'s ``ThreadingHTTPServer``: each scrape is
handled on its own thread, so a slow scraper never blocks another, and
nothing outside the standard library is needed.  All reads go through
the thread-safe obs stores; the server never mutates middleware state.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable
from urllib.parse import parse_qs, urlsplit
from urllib.request import urlopen

from .analysis import chrome_trace_json, find_workflow_trace, latency_summary
from .events import FlightRecorder
from .telemetry import Telemetry
from .trace import Span, format_trace

#: Default number of events returned by ``/events`` without ``?limit=``.
DEFAULT_EVENTS_LIMIT = 100

_ENDPOINTS = ("/metrics", "/healthz", "/readyz", "/traces", "/events")


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; the owning ObsServer hangs off ``self.server``."""

    server_version = "ReproObs/1"

    # The default handler logs every request to stderr; scrapes arrive
    # every few seconds forever, so stay silent.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        obs: "ObsServer" = self.server.obs  # type: ignore[attr-defined]
        split = urlsplit(self.path)
        query = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        try:
            if split.path == "/metrics":
                self._metrics(obs, query)
            elif split.path == "/healthz":
                self._healthz(obs)
            elif split.path == "/readyz":
                self._readyz(obs)
            elif split.path == "/traces":
                self._traces(obs, query)
            elif split.path == "/events":
                self._events(obs, query)
            else:
                self._json(
                    404, {"error": "not found", "endpoints": list(_ENDPOINTS)}
                )
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # defensive: a scrape must never crash us
            self._json(500, {"error": f"{type(exc).__name__}: {exc}"})

    # -- endpoints ------------------------------------------------------------

    def _metrics(self, obs: "ObsServer", query: dict[str, str]) -> None:
        if query.get("format") == "json":
            self._json(200, obs.telemetry.registry.snapshot())
            return
        body = obs.telemetry.registry.render_prometheus().encode()
        self._raw(200, body, "text/plain; version=0.0.4; charset=utf-8")

    def _healthz(self, obs: "ObsServer") -> None:
        data = obs.health_document()
        code = 503 if data.get("status") == "unhealthy" else 200
        self._json(code, data)

    def _readyz(self, obs: "ObsServer") -> None:
        ready = obs.is_ready()
        self._json(200 if ready else 503, {"ready": ready, "node": obs.node})

    def _traces(self, obs: "ObsServer", query: dict[str, str]) -> None:
        store = obs.telemetry.spans
        trace_id = query.get("trace_id")
        workflow_id = query.get("workflow_id")
        spans = store.spans()
        if workflow_id:
            # ``scope=local`` marks a peer-to-peer pull: answering it from
            # local spans only is what keeps the federation from scraping
            # itself in circles.
            if query.get("scope") != "local":
                spans = obs.merged_spans(spans)
            resolved = find_workflow_trace(spans, workflow_id)
            spans = (
                [span for span in spans if span.trace_id == resolved]
                if resolved
                else []
            )
        elif trace_id:
            spans = [span for span in spans if span.trace_id == trace_id]
        fmt = query.get("format")
        if fmt == "chrome":
            self._raw(
                200,
                chrome_trace_json(spans).encode(),
                "application/json; charset=utf-8",
            )
            return
        if fmt == "summary":
            self._json(200, latency_summary(spans))
            return
        if fmt == "json":
            self._json(
                200,
                {
                    "spans": [span.to_dict() for span in spans],
                    "dropped": store.dropped,
                },
            )
            return
        self._raw(200, (format_trace(spans) + "\n").encode(), "text/plain; charset=utf-8")

    def _events(self, obs: "ObsServer", query: dict[str, str]) -> None:
        recorder: FlightRecorder | None = obs.telemetry.events
        if recorder is None:
            self._json(200, {"events": [], "dropped": 0})
            return
        try:
            limit = int(query.get("limit", DEFAULT_EVENTS_LIMIT))
        except ValueError:
            limit = DEFAULT_EVENTS_LIMIT
        events = recorder.events(kind=query.get("kind"), limit=limit)
        self._json(
            200,
            {
                "events": [event.to_dict() for event in events],
                "dropped": recorder.dropped,
            },
        )

    # -- response plumbing -----------------------------------------------------

    def _json(self, code: int, data: Any) -> None:
        self._raw(
            code,
            json.dumps(data, sort_keys=True).encode(),
            "application/json; charset=utf-8",
        )

    def _raw(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class ObsServer:
    """Embeddable observability HTTP server (see module docstring).

    ``health`` is an optional zero-argument callable returning the JSON
    document for ``/healthz``; it should include a ``status`` key
    (``ok`` / ``degraded`` / ``unhealthy``).  ``ready`` is an optional
    zero-argument callable for ``/readyz``.  Both are invoked on the
    scrape thread, so they must be cheap and thread-safe.

    ``peer_obs_urls`` are the ObsServer base URLs of federation peers;
    ``/traces?workflow_id=`` pulls their spans (with ``scope=local`` to
    stop the recursion) and merges them into the answer, so a workflow
    whose nodes were forwarded across brokers still renders as one tree.
    """

    #: Per-peer scrape timeout for federated span pulls (seconds).
    PEER_TIMEOUT_S = 2.0

    def __init__(
        self,
        telemetry: Telemetry,
        host: str = "127.0.0.1",
        port: int = 0,
        node: str = "",
        role: str = "",
        health: Callable[[], dict[str, Any]] | None = None,
        ready: Callable[[], bool] | None = None,
        peer_obs_urls: list[str] | None = None,
    ):
        self.telemetry = telemetry
        self.node = node
        self.role = role
        self.peer_obs_urls = list(peer_obs_urls or [])
        self._health = health
        self._ready = ready
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.obs = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ObsServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"obs-{self.node or 'server'}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            # shutdown() blocks until serve_forever acknowledges, so only
            # call it when the serving thread actually ran.
            self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- introspection ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def merged_spans(self, local_spans: list[Span]) -> list[Span]:
        """Local spans plus everything scraped from peer ObsServers.

        A dead or slow peer is skipped (per-peer timeout); duplicates —
        a peer list that includes this server's own URL, or overlapping
        scrapes — collapse on ``(trace_id, span_id)``.
        """
        merged: dict[tuple[str, str], Span] = {
            (span.trace_id, span.span_id): span for span in local_spans
        }
        for url in self.peer_obs_urls:
            try:
                with urlopen(
                    f"{url.rstrip('/')}/traces?format=json&scope=local",
                    timeout=self.PEER_TIMEOUT_S,
                ) as response:
                    data = json.load(response)
            except Exception:
                continue  # peer down: render what we have
            for item in data.get("spans", ()):
                try:
                    span = Span.from_dict(item)
                except (KeyError, TypeError, ValueError):
                    continue
                merged.setdefault((span.trace_id, span.span_id), span)
        return sorted(merged.values(), key=lambda s: (s.start, s.span_id))

    def is_ready(self) -> bool:
        if self._ready is None:
            return True
        try:
            return bool(self._ready())
        except Exception:
            return False

    def health_document(self) -> dict[str, Any]:
        """The ``/healthz`` body: owner callback merged with identity."""
        try:
            data = dict(self._health()) if self._health is not None else {}
        except Exception as exc:
            data = {"status": "unhealthy", "error": f"{type(exc).__name__}: {exc}"}
        data.setdefault("status", "ok")
        data.setdefault("node", self.node)
        data.setdefault("role", self.role)
        return data
