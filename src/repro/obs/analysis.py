"""Workflow trace analytics: critical path, phase attribution, Chrome export.

Built entirely on recorded spans (:mod:`repro.obs.trace`) — no scheduler
state is consulted, so the same analysis works on a live broker's span
store, on spans merged from several brokers' ObsServers, or on a span
dump loaded from disk.  The span vocabulary it understands::

    workflow                     (consumer: submit -> resolved handle)
    └─ broker.workflow           (broker: admission -> terminal)
       └─ wf.node                (per node: released -> terminal; attrs
          │                       carry node_id + deps, so the DAG is
          │                       reconstructable from spans alone)
          └─ broker.tasklet      (admission -> voted completion)
             ├─ broker.assign    (issue -> result)      × replicas
             │  └─ provider.execute
             └─ broker.forward   (origin: forwarded -> ForwardComplete)
                └─ broker.tasklet   (peer broker, same shape)

Per-node wall-clock is attributed to four phases that sum to the node
span's duration: ``vm`` (the winning execution's time on the provider),
``wire`` (assignment round-trip minus execution — transfer + codec +
transport), ``queue`` (admission until the first assignment left), and
``scheduling`` (the residual: release bookkeeping, forwarding hops,
vote folding).  Everything here is stdlib-only, like the rest of obs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..common.stats import percentile
from .trace import Span

#: Span names whose ``attrs["workflow_id"]`` identifies a workflow trace.
_WORKFLOW_SPAN_NAMES = ("workflow", "broker.workflow", "wf.node")


def workflow_ids(spans: Iterable[Span]) -> list[str]:
    """Distinct workflow ids present in ``spans``, oldest first."""
    seen: dict[str, None] = {}
    for span in spans:
        if span.name in _WORKFLOW_SPAN_NAMES:
            workflow_id = str(span.attrs.get("workflow_id", ""))
            if workflow_id:
                seen.setdefault(workflow_id, None)
    return list(seen)


def find_workflow_trace(spans: Iterable[Span], workflow_id: str) -> str | None:
    """Trace id of the given workflow, or None if no span mentions it."""
    for span in spans:
        if (
            span.name in _WORKFLOW_SPAN_NAMES
            and str(span.attrs.get("workflow_id", "")) == workflow_id
        ):
            return span.trace_id
    return None


@dataclass
class NodeTiming:
    """One workflow node's place on the timeline, with phase attribution."""

    node_id: str
    start: float
    end: float
    status: str
    attempts: int
    deps: list[str]
    #: Provider that ran the winning execution ("" if memoized/failed).
    provider: str
    #: Broker that owned the node span.
    broker: str
    #: Wall-clock attribution; keys scheduling/queue/wire/vm sum to
    #: ``duration`` (each clamped to >= 0).
    phases: dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "node_id": self.node_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "attempts": self.attempts,
            "deps": list(self.deps),
            "provider": self.provider,
            "broker": self.broker,
            "phases": dict(self.phases),
        }


@dataclass
class WorkflowTraceAnalysis:
    """A finished workflow's reassembled timeline."""

    workflow_id: str
    trace_id: str
    start: float
    end: float
    nodes: list[NodeTiming]
    #: Node ids of the longest dependency chain, in execution order.
    critical_path: list[str]

    @property
    def makespan(self) -> float:
        return self.end - self.start

    def critical_nodes(self) -> list[NodeTiming]:
        by_id = {node.node_id: node for node in self.nodes}
        return [by_id[node_id] for node_id in self.critical_path if node_id in by_id]

    def phase_totals(self) -> dict[str, float]:
        """Per-phase time summed along the critical path."""
        totals = {"scheduling": 0.0, "queue": 0.0, "wire": 0.0, "vm": 0.0}
        for node in self.critical_nodes():
            for phase, value in node.phases.items():
                totals[phase] = totals.get(phase, 0.0) + value
        return totals

    def provider_attribution(self) -> list[dict[str, Any]]:
        """Per-provider totals: who executed what, and how much of the
        critical path they account for.  Sorted by critical-path share."""
        critical = set(self.critical_path)
        table: dict[str, dict[str, Any]] = {}
        for node in self.nodes:
            if not node.provider:
                continue
            row = table.setdefault(
                node.provider,
                {"provider": node.provider, "nodes": 0, "vm_s": 0.0,
                 "critical_nodes": 0, "critical_s": 0.0},
            )
            row["nodes"] += 1
            row["vm_s"] += node.phases.get("vm", 0.0)
            if node.node_id in critical:
                row["critical_nodes"] += 1
                row["critical_s"] += node.duration
        return sorted(
            table.values(), key=lambda row: (-row["critical_s"], row["provider"])
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "workflow_id": self.workflow_id,
            "trace_id": self.trace_id,
            "start": self.start,
            "end": self.end,
            "makespan": self.makespan,
            "nodes": [node.to_dict() for node in self.nodes],
            "critical_path": list(self.critical_path),
            "phase_totals": self.phase_totals(),
            "providers": self.provider_attribution(),
        }


def _children_index(spans: Sequence[Span]) -> dict[str, list[Span]]:
    index: dict[str, list[Span]] = {}
    for span in spans:
        if span.parent_id:
            index.setdefault(span.parent_id, []).append(span)
    return index


def _descendants(
    root: Span, children: dict[str, list[Span]]
) -> Iterable[Span]:
    stack = list(children.get(root.span_id, ()))
    seen: set[str] = set()
    while stack:
        span = stack.pop()
        if span.span_id in seen:
            continue  # defensive: malformed parent links must not loop
        seen.add(span.span_id)
        yield span
        stack.extend(children.get(span.span_id, ()))


def _node_timing(node_span: Span, children: dict[str, list[Span]]) -> NodeTiming:
    below = list(_descendants(node_span, children))
    tasklets = sorted(
        (s for s in below if s.name == "broker.tasklet"), key=lambda s: s.start
    )
    assigns = sorted(
        (s for s in below if s.name == "broker.assign"), key=lambda s: s.start
    )
    executes = [s for s in below if s.name == "provider.execute"]
    # The winning execution: prefer an ok one, break ties on latest end
    # (the one whose result actually decided the vote).
    winner: Span | None = None
    for candidate in executes:
        if winner is None:
            winner = candidate
            continue
        if (candidate.status == "ok", candidate.end) > (
            winner.status == "ok",
            winner.end,
        ):
            winner = candidate
    duration = max(0.0, node_span.end - node_span.start)
    vm = max(0.0, winner.duration) if winner is not None else 0.0
    wire = 0.0
    queue = 0.0
    if winner is not None:
        winning_assign = next(
            (a for a in assigns if a.span_id == winner.parent_id), None
        )
        if winning_assign is not None:
            wire = max(0.0, winning_assign.duration - vm)
            owner = next(
                (t for t in tasklets if t.span_id == winning_assign.parent_id),
                tasklets[0] if tasklets else None,
            )
            if owner is not None:
                queue = max(0.0, winning_assign.start - owner.start)
    # Clamp each phase into the node's own window, then let scheduling
    # absorb the residual so the four phases sum to the node duration.
    vm = min(vm, duration)
    wire = min(wire, duration - vm)
    queue = min(queue, duration - vm - wire)
    scheduling = max(0.0, duration - vm - wire - queue)
    return NodeTiming(
        node_id=str(node_span.attrs.get("node_id", "")),
        start=node_span.start,
        end=node_span.end,
        status=node_span.status,
        attempts=int(node_span.attrs.get("attempts", 0) or 0),
        deps=[str(dep) for dep in node_span.attrs.get("deps", ()) or ()],
        provider=winner.node if winner is not None else "",
        broker=node_span.node,
        phases={
            "scheduling": scheduling,
            "queue": queue,
            "wire": wire,
            "vm": vm,
        },
    )


def _critical_path(nodes: Sequence[NodeTiming]) -> list[str]:
    """Longest finishing chain: walk back from the last-ending node,
    at each step following the dependency that finished last."""
    if not nodes:
        return []
    by_id = {node.node_id: node for node in nodes}
    current = max(nodes, key=lambda node: (node.end, node.node_id))
    path = [current.node_id]
    seen = {current.node_id}
    while True:
        deps = [by_id[d] for d in current.deps if d in by_id and d not in seen]
        if not deps:
            break
        current = max(deps, key=lambda node: (node.end, node.node_id))
        path.append(current.node_id)
        seen.add(current.node_id)
    path.reverse()
    return path


def analyze_workflow(
    spans: Iterable[Span], workflow_id: str
) -> WorkflowTraceAnalysis | None:
    """Reassemble one workflow's timeline from (possibly merged) spans.

    Returns None when no span mentions ``workflow_id``.  Spans from
    other traces are ignored, so the caller may pass a whole store.
    """
    all_spans = list(spans)
    trace_id = find_workflow_trace(all_spans, workflow_id)
    if trace_id is None:
        return None
    trace_spans = [s for s in all_spans if s.trace_id == trace_id]
    children = _children_index(trace_spans)
    node_spans = [
        s
        for s in trace_spans
        if s.name == "wf.node"
        and str(s.attrs.get("workflow_id", "")) == workflow_id
    ]
    nodes = sorted(
        (_node_timing(s, children) for s in node_spans),
        key=lambda node: (node.start, node.node_id),
    )
    # The workflow's envelope: the broker.workflow span when present
    # (admission -> terminal), else the consumer's root, else node bounds.
    envelope = next(
        (
            s
            for s in trace_spans
            if s.name == "broker.workflow"
            and str(s.attrs.get("workflow_id", "")) == workflow_id
        ),
        None,
    ) or next(
        (
            s
            for s in trace_spans
            if s.name == "workflow"
            and str(s.attrs.get("workflow_id", "")) == workflow_id
        ),
        None,
    )
    if envelope is not None:
        start, end = envelope.start, envelope.end
    elif nodes:
        start = min(node.start for node in nodes)
        end = max(node.end for node in nodes)
    else:
        start = end = 0.0
    return WorkflowTraceAnalysis(
        workflow_id=workflow_id,
        trace_id=trace_id,
        start=start,
        end=end,
        nodes=nodes,
        critical_path=_critical_path(nodes),
    )


def latency_summary(spans: Iterable[Span]) -> dict[str, Any]:
    """Cluster-wide workflow latency digest for ``repro top``.

    Queue times come from every node's winning-assign wait; makespans
    from ``broker.workflow`` spans.  All values in seconds.
    """
    all_spans = list(spans)
    children = _children_index(all_spans)
    queues: list[float] = []
    for span in all_spans:
        if span.name != "wf.node":
            continue
        timing = _node_timing(span, children)
        queues.append(timing.phases["queue"])
    makespans = [
        span.duration for span in all_spans if span.name == "broker.workflow"
    ]
    summary: dict[str, Any] = {
        "workflows": len(makespans),
        "nodes": len(queues),
    }
    if queues:
        summary["queue_p50_s"] = percentile(queues, 50.0)
        summary["queue_p95_s"] = percentile(queues, 95.0)
    if makespans:
        summary["makespan_p50_s"] = percentile(makespans, 50.0)
        summary["makespan_p95_s"] = percentile(makespans, 95.0)
    return summary


# -- Chrome trace-event export ------------------------------------------------


def to_chrome_trace(spans: Iterable[Span]) -> dict[str, Any]:
    """Spans as a Chrome trace-event JSON object (Perfetto-loadable).

    Each span becomes one complete event (``ph: "X"``, microsecond
    timestamps); each recording node becomes a process with a
    ``process_name`` metadata event, and each span name a named thread
    lane within it, so Perfetto groups the timeline by node.
    """
    events: list[dict[str, Any]] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[int, str], int] = {}
    for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
        pid = pids.get(span.node)
        if pid is None:
            pid = len(pids) + 1
            pids[span.node] = pid
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": span.node},
                }
            )
        tid = tids.get((pid, span.name))
        if tid is None:
            tid = len([key for key in tids if key[0] == pid]) + 1
            tids[(pid, span.name)] = tid
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": span.name},
                }
            )
        label = span.name
        node_id = span.attrs.get("node_id")
        if node_id:
            label = f"{span.name} {node_id}"
        events.append(
            {
                "name": label,
                "cat": span.name,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": max(0.0, span.duration) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "status": span.status,
                    **{str(k): v for k, v in span.attrs.items()},
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(spans: Iterable[Span]) -> str:
    """:func:`to_chrome_trace` serialized (values coerced to be JSON-safe)."""
    return json.dumps(to_chrome_trace(spans), default=str)
