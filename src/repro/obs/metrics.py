"""A minimal, dependency-free metrics registry.

Three metric kinds — :class:`Counter` (monotonic), :class:`Gauge`
(set/inc/dec), :class:`Histogram` (fixed bucket boundaries, cumulative
exposition) — organised into labeled *families*: one registered name maps
to many children, one per distinct label-value tuple, exactly like the
Prometheus data model.

All mutation is thread-safe: the registry locks family creation, each
family locks child creation, and each child locks its own updates.  The
hot path of an already-created child is one small lock acquisition plus
an add, cheap enough for per-message instrumentation; the *disabled*
path (no registry attached anywhere) never reaches this module at all.

Output formats:

* :meth:`MetricsRegistry.render_prometheus` — the text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value`` samples,
  cumulative ``_bucket``/``_sum``/``_count`` for histograms);
* :meth:`MetricsRegistry.snapshot` — a JSON-safe dict for programmatic
  consumption (the ``repro metrics --format json`` path).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable, Sequence

#: Default histogram boundaries for latencies in seconds (upper bounds;
#: an implicit +Inf bucket is always appended).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_INF = float("inf")


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus text exposition expects."""
    if value == _INF:
        return "+Inf"
    if value == -_INF:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_suffix(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class Counter:
    """A monotonically increasing value (one child of a family)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (one child of a family)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-boundary histogram (one child of a family).

    ``boundaries`` are inclusive upper bounds; an implicit +Inf bucket
    catches everything beyond the last one.  Exposition is cumulative,
    matching the Prometheus ``le`` convention.
    """

    def __init__(self, boundaries: Sequence[float]):
        self.boundaries: tuple[float, ...] = tuple(boundaries)
        self._lock = threading.Lock()
        self._bucket_counts = [0] * (len(self.boundaries) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.boundaries, value)
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        with self._lock:
            counts = list(self._bucket_counts)
        total = 0
        out: list[tuple[float, int]] = []
        for boundary, count in zip((*self.boundaries, _INF), counts):
            total += count
            out.append((boundary, total))
        return out


class _Family:
    """One registered metric name and its per-label-tuple children."""

    kind = ""

    def __init__(self, name: str, help: str, labelnames: Sequence[str]):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, *labelvalues, **labelkwargs):
        """The child for one label-value combination (created on demand)."""
        if labelkwargs:
            if labelvalues:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                labelvalues = tuple(
                    str(labelkwargs[name]) for name in self.labelnames
                )
            except KeyError as exc:
                raise ValueError(f"missing label {exc} for {self.name}") from exc
            if len(labelkwargs) != len(self.labelnames):
                raise ValueError(
                    f"{self.name} expects labels {self.labelnames}, "
                    f"got {tuple(labelkwargs)}"
                )
        else:
            labelvalues = tuple(str(value) for value in labelvalues)
        if len(labelvalues) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects {len(self.labelnames)} label values, "
                f"got {len(labelvalues)}"
            )
        with self._lock:
            child = self._children.get(labelvalues)
            if child is None:
                child = self._make_child()
                self._children[labelvalues] = child
            return child

    def children(self) -> list[tuple[tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._children.items())

    # -- unlabeled convenience: the family acts as its single child ---------

    def _solo(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labeled {self.labelnames}; use .labels(...)"
            )
        return self.labels()


class CounterFamily(_Family):
    kind = "counter"

    def _make_child(self) -> Counter:
        return Counter()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    @property
    def value(self) -> float:
        return self._solo().value


class GaugeFamily(_Family):
    kind = "gauge"

    def _make_child(self) -> Gauge:
        return Gauge()

    def set(self, value: float) -> None:
        self._solo().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    @property
    def value(self) -> float:
        return self._solo().value


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float],
    ):
        super().__init__(name, help, labelnames)
        boundaries = tuple(sorted(buckets))
        if not boundaries:
            raise ValueError("histogram needs at least one bucket boundary")
        self.buckets = boundaries

    def _make_child(self) -> Histogram:
        return Histogram(self.buckets)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def count(self) -> int:
        return self._solo().count

    @property
    def sum(self) -> float:
        return self._solo().sum


class MetricsRegistry:
    """All metric families of one process (or one test's worth of nodes).

    Registration is idempotent: asking for an existing name returns the
    existing family, so several cores sharing a registry (broker +
    providers + consumers in one process) share the same families.  A
    kind or label mismatch on re-registration is a programming error and
    raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _register(self, family: _Family) -> _Family:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is not None:
                if (
                    existing.kind != family.kind
                    or existing.labelnames != family.labelnames
                ):
                    raise ValueError(
                        f"metric {family.name!r} re-registered as {family.kind}"
                        f"{family.labelnames}, already {existing.kind}"
                        f"{existing.labelnames}"
                    )
                return existing
            self._families[family.name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> CounterFamily:
        return self._register(CounterFamily(name, help, labelnames))  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> GaugeFamily:
        return self._register(GaugeFamily(name, help, labelnames))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> HistogramFamily:
        return self._register(HistogramFamily(name, help, labelnames, buckets))  # type: ignore[return-value]

    def get(self, name: str) -> _Family | None:
        with self._lock:
            return self._families.get(name)

    def families(self) -> list[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # -- output -------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The text exposition format, families in name order."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labelvalues, child in family.children():
                suffix = _label_suffix(family.labelnames, labelvalues)
                if isinstance(child, Histogram):
                    for boundary, cumulative in child.cumulative_buckets():
                        le = _label_suffix(
                            (*family.labelnames, "le"),
                            (*labelvalues, _format_value(boundary)),
                        )
                        lines.append(f"{family.name}_bucket{le} {cumulative}")
                    lines.append(
                        f"{family.name}_sum{suffix} {_format_value(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{suffix} {child.count}")
                else:
                    lines.append(
                        f"{family.name}{suffix} {_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe dump: ``{name: {kind, help, samples: [...]}}``."""
        out: dict[str, Any] = {}
        for family in self.families():
            samples: list[dict[str, Any]] = []
            for labelvalues, child in family.children():
                labels = dict(zip(family.labelnames, labelvalues))
                if isinstance(child, Histogram):
                    samples.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "buckets": [
                                {"le": boundary, "count": cumulative}
                                for boundary, cumulative in child.cumulative_buckets()
                            ],
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "samples": samples,
            }
        return out


def parse_prometheus(text: str) -> dict[str, dict[str, float]]:
    """Parse text exposition back into ``{metric: {labelset: value}}``.

    A deliberately small parser for tests and the CLI round trip — it
    handles exactly what :meth:`MetricsRegistry.render_prometheus` emits.
    """
    out: dict[str, dict[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_and_labels, _, value_text = line.rpartition(" ")
        name, _, labels = name_and_labels.partition("{")
        labels = labels.rstrip("}")
        value = float(value_text)
        out.setdefault(name, {})[labels] = value
    return out


def iter_metric_names(text: str) -> Iterable[str]:
    """Family names declared by ``# TYPE`` lines of an exposition."""
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            yield line.split()[2]
