"""Feed simulator and bench-harness summaries into a metrics registry.

The simulator's :class:`~repro.sim.metrics.MetricsCollector` samples
virtual-time gauges and reduces them to a
:class:`~repro.sim.metrics.MetricsSummary`; the broker keeps raw
:class:`~repro.broker.core.BrokerStats` counters.  This module publishes
both into the same :class:`~repro.obs.metrics.MetricsRegistry` the live
instrumentation writes to, so one exposition covers live and simulated
runs alike (and the bench harness can scrape its own runs).

Published names live under ``repro_sim_*`` to keep post-run summary
values visually distinct from live counters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..broker.core import BrokerStats
    from ..sim.metrics import MetricsSummary


def publish_broker_stats(registry: MetricsRegistry, stats: "BrokerStats") -> None:
    """Publish end-of-run broker counters as ``repro_sim_broker_*`` gauges."""
    family = registry.gauge(
        "repro_sim_broker_stat",
        "End-of-run broker counter, by name",
        labelnames=("name",),
    )
    for name, value in vars(stats).items():
        family.labels(name=name).set(float(value))


def publish_summary(registry: MetricsRegistry, summary: "MetricsSummary") -> None:
    """Publish a reduced simulation timeline summary as gauges."""
    utilization = registry.gauge(
        "repro_sim_provider_utilization",
        "Mean sampled utilization per simulated provider",
        labelnames=("provider",),
    )
    availability = registry.gauge(
        "repro_sim_provider_availability",
        "Fraction of samples each simulated provider was up",
        labelnames=("provider",),
    )
    executed = registry.gauge(
        "repro_sim_provider_executed",
        "Executions run per simulated provider",
        labelnames=("provider",),
    )
    for node_id, provider in summary.providers.items():
        utilization.labels(provider=node_id).set(provider.mean_utilization)
        availability.labels(provider=node_id).set(provider.availability)
        executed.labels(provider=node_id).set(float(provider.executed))
    registry.gauge(
        "repro_sim_pool_mean_utilization",
        "Pool-wide mean sampled utilization",
    ).set(summary.pool_mean_utilization)
    registry.gauge(
        "repro_sim_peak_backlog",
        "Peak queued-replica backlog over the run",
    ).set(summary.peak_backlog)
    registry.gauge(
        "repro_sim_peak_pending_tasklets",
        "Peak pending-tasklet count over the run",
    ).set(summary.peak_pending_tasklets)
    registry.gauge(
        "repro_sim_samples",
        "Timeline samples taken by the collector",
    ).set(float(summary.samples))
    messages = registry.gauge(
        "repro_sim_messages_delivered",
        "Messages delivered by the simulated network, by type",
        labelnames=("type",),
    )
    for message_type, count in summary.message_type_counts.items():
        messages.labels(type=message_type).set(float(count))
