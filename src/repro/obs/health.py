"""Broker-side cluster health: per-provider scorecards and stragglers.

Raw telemetry (heartbeat gaps, execution outcomes, learned speeds) only
becomes operationally useful once it is reduced to *signals*: which
providers are healthy, which are degrading, and which executions are
stuck.  This module does that reduction on the broker, where all the
inputs already live in the :class:`~repro.broker.registry.ProviderRegistry`.

Two pieces:

* :class:`HealthModel` — folds registry records plus its own flap history
  into :class:`ProviderScorecard` grades (``healthy`` / ``degraded`` /
  ``unhealthy``), exactly what ``/healthz`` and ``repro top`` display;
* :class:`StragglerWatchdog` — learns the expected instruction count of
  each program (EWMA over completed executions, keyed by the program
  fingerprint), derives an expected runtime per issued execution from the
  executing provider's effective speed, and raises an alert when an
  outstanding execution exceeds a configurable multiple of it.

The watchdog is advisory: :class:`~repro.broker.core.BrokerCore` records
the alert (event + metric) and exposes the straggler set, but the
re-issue policy is unchanged — reacting to the signal is the operator's
(or a future scheduler's) decision.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from ..common.stats import EwmaTracker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..broker.registry import ProviderRecord
    from .metrics import MetricsRegistry

GRADE_HEALTHY = "healthy"
GRADE_DEGRADED = "degraded"
GRADE_UNHEALTHY = "unhealthy"

#: Grade ordering used when aggregating ("worst wins") and for the
#: ``repro_health_provider_grade`` gauge value.
GRADE_RANK = {GRADE_HEALTHY: 0, GRADE_DEGRADED: 1, GRADE_UNHEALTHY: 2}


class HealthMetrics:
    """Health/alert metric families (broker-side)."""

    def __init__(self, registry: "MetricsRegistry"):
        self.provider_grade = registry.gauge(
            "repro_health_provider_grade",
            "Provider health grade (0 healthy, 1 degraded, 2 unhealthy)",
            labelnames=("provider",),
        )
        self.providers_by_grade = registry.gauge(
            "repro_health_providers",
            "Registered providers currently at each health grade",
            labelnames=("grade",),
        )
        self.alerts = registry.counter(
            "repro_health_alerts_total",
            "Operator-grade health alerts raised, by kind",
            labelnames=("kind",),
        )
        self.stragglers_active = registry.gauge(
            "repro_health_stragglers_active",
            "Outstanding executions currently past their straggler deadline",
        )


@dataclass(frozen=True)
class StragglerAlert:
    """One execution that exceeded its expected runtime."""

    execution_id: str
    provider_id: str
    tasklet_id: str
    expected_s: float
    elapsed_s: float
    multiple: float


@dataclass(frozen=True)
class ProviderScorecard:
    """One provider's aggregated health view (what ``/healthz`` serves)."""

    provider_id: str
    device_class: str
    grade: str
    alive: bool
    capacity: int
    outstanding: int
    reliability: float
    effective_speed: float
    benchmark_score: float
    heartbeat_age: float
    flaps: int
    straggling: int  # outstanding executions currently past deadline

    def to_dict(self) -> dict:
        return {
            "provider_id": self.provider_id,
            "device_class": self.device_class,
            "grade": self.grade,
            "alive": self.alive,
            "capacity": self.capacity,
            "outstanding": self.outstanding,
            "reliability": round(self.reliability, 4),
            "effective_speed": self.effective_speed,
            "benchmark_score": self.benchmark_score,
            "heartbeat_age": round(self.heartbeat_age, 4),
            "flaps": self.flaps,
            "straggling": self.straggling,
        }


@dataclass
class _Watch:
    """Watchdog bookkeeping for one outstanding execution."""

    execution_id: str
    provider_id: str
    tasklet_id: str
    fingerprint: str
    issued_at: float
    expected_s: float | None  # None until the program has a profile
    alerted: bool = False


class StragglerWatchdog:
    """Tracks expected vs actual runtime of outstanding executions.

    Expected runtime for an execution is::

        max(min_expected_s, instructions_estimate / provider_speed)

    where ``instructions_estimate`` is an EWMA over the instruction counts
    of *completed* executions of the same program fingerprint (the program
    profile), and ``provider_speed`` is the broker's effective-speed
    estimate for the executing provider at issue time — i.e. the promise
    the provider benchmark made.  An execution still outstanding after
    ``multiple ×`` that expectation is a straggler; each one alerts once.

    Executions of programs never seen before have no expectation and never
    alert (cold start is not an anomaly).
    """

    def __init__(
        self,
        multiple: float = 4.0,
        min_expected_s: float = 0.05,
        alpha: float = 0.3,
    ):
        if multiple <= 1.0:
            raise ValueError(f"multiple must be > 1, got {multiple}")
        if min_expected_s <= 0:
            raise ValueError(f"min_expected_s must be positive, got {min_expected_s}")
        self.multiple = multiple
        self.min_expected_s = min_expected_s
        self._profiles: dict[str, EwmaTracker] = {}
        self._alpha = alpha
        self._watches: dict[str, _Watch] = {}

    # -- program profile -----------------------------------------------------

    def instructions_estimate(self, fingerprint: str) -> float | None:
        """Learned instruction count for a program, if any."""
        tracker = self._profiles.get(fingerprint)
        return tracker.value if tracker is not None else None

    def expected_runtime(self, fingerprint: str, speed_ips: float) -> float | None:
        """Expected service time on a provider of the given speed."""
        estimate = self.instructions_estimate(fingerprint)
        if estimate is None or speed_ips <= 0:
            return None
        return max(self.min_expected_s, estimate / speed_ips)

    # -- execution lifecycle hooks (called by the broker) ---------------------

    def on_issue(
        self,
        execution_id: str,
        provider_id: str,
        tasklet_id: str,
        fingerprint: str,
        speed_ips: float,
        now: float,
    ) -> None:
        self._watches[execution_id] = _Watch(
            execution_id=execution_id,
            provider_id=provider_id,
            tasklet_id=tasklet_id,
            fingerprint=fingerprint,
            issued_at=now,
            expected_s=self.expected_runtime(fingerprint, speed_ips),
        )

    def on_result(
        self, execution_id: str, ok: bool, instructions: int
    ) -> None:
        """Fold a terminal result: drop the watch, learn the profile."""
        watch = self._watches.pop(execution_id, None)
        if not ok or instructions <= 0:
            return
        fingerprint = watch.fingerprint if watch is not None else None
        if not fingerprint:
            return
        tracker = self._profiles.get(fingerprint)
        if tracker is None:
            tracker = self._profiles[fingerprint] = EwmaTracker(alpha=self._alpha)
        tracker.add(float(instructions))

    def on_lost(self, execution_id: str) -> None:
        """Drop a watch without learning (cancelled/lost/timed out)."""
        self._watches.pop(execution_id, None)

    # -- the watchdog itself -------------------------------------------------

    def check(self, now: float) -> list[StragglerAlert]:
        """Alerts for overdue executions not yet reported (once each)."""
        alerts: list[StragglerAlert] = []
        for watch in self._watches.values():
            if watch.alerted or watch.expected_s is None:
                continue
            elapsed = now - watch.issued_at
            if elapsed > watch.expected_s * self.multiple:
                watch.alerted = True
                alerts.append(
                    StragglerAlert(
                        execution_id=watch.execution_id,
                        provider_id=watch.provider_id,
                        tasklet_id=watch.tasklet_id,
                        expected_s=watch.expected_s,
                        elapsed_s=elapsed,
                        multiple=self.multiple,
                    )
                )
        return alerts

    def active_stragglers(self) -> list[_Watch]:
        """Watches that have already alerted and are still outstanding."""
        return [watch for watch in self._watches.values() if watch.alerted]

    def straggling_by_provider(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for watch in self.active_stragglers():
            out[watch.provider_id] = out.get(watch.provider_id, 0) + 1
        return out

    @property
    def outstanding(self) -> int:
        return len(self._watches)


class HealthModel:
    """Grades providers and hosts the straggler watchdog.

    Grading rules, worst grade wins:

    * dead (failure detector fired, or heartbeat silence past the
      detection horizon) → ``unhealthy``;
    * success ratio below ``reliability_floor`` → ``unhealthy``; below
      ``reliability_warn`` → ``degraded``;
    * flapped ``flap_threshold``+ times within ``flap_window_s`` →
      ``degraded`` (and a ``flapping_alert`` is raised once per burst);
    * delivering less than ``speed_warn_ratio`` of its self-reported
      benchmark (throughput-normalised speed) → ``degraded``;
    * any outstanding execution past its straggler deadline → ``degraded``.
    """

    def __init__(
        self,
        heartbeat_interval: float = 1.0,
        heartbeat_tolerance: float = 3.0,
        flap_window_s: float = 60.0,
        flap_threshold: int = 3,
        reliability_warn: float = 0.75,
        reliability_floor: float = 0.4,
        reliability_min_samples: int = 4,
        speed_warn_ratio: float = 0.5,
        watchdog: StragglerWatchdog | None = None,
    ):
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_tolerance = heartbeat_tolerance
        self.flap_window_s = flap_window_s
        self.flap_threshold = flap_threshold
        self.reliability_warn = reliability_warn
        self.reliability_floor = reliability_floor
        self.reliability_min_samples = reliability_min_samples
        self.speed_warn_ratio = speed_warn_ratio
        self.watchdog = watchdog or StragglerWatchdog()
        self._flap_times: dict[str, deque[float]] = {}
        self._flap_counts: dict[str, int] = {}
        #: Providers already alerted for the current flap burst; cleared
        #: when their window drains so a later burst alerts again.
        self._flap_alerted: set[str] = set()

    # -- flap history ---------------------------------------------------------

    def record_flap(self, provider_id: str, now: float) -> bool:
        """Record one crash-and-return; True when a flapping alert fires."""
        provider_id = str(provider_id)
        times = self._flap_times.setdefault(provider_id, deque())
        times.append(now)
        self._flap_counts[provider_id] = self._flap_counts.get(provider_id, 0) + 1
        self._prune_flaps(provider_id, now)
        if len(times) >= self.flap_threshold:
            if provider_id not in self._flap_alerted:
                self._flap_alerted.add(provider_id)
                return True
        return False

    def _prune_flaps(self, provider_id: str, now: float) -> None:
        times = self._flap_times.get(provider_id)
        if times is None:
            return
        while times and now - times[0] > self.flap_window_s:
            times.popleft()
        if len(times) < self.flap_threshold:
            self._flap_alerted.discard(provider_id)

    def is_flapping(self, provider_id: str, now: float) -> bool:
        self._prune_flaps(str(provider_id), now)
        return len(self._flap_times.get(str(provider_id), ())) >= self.flap_threshold

    def flap_count(self, provider_id: str) -> int:
        """Total flaps ever recorded for a provider."""
        return self._flap_counts.get(str(provider_id), 0)

    # -- scorecards -----------------------------------------------------------

    def grade(self, record: "ProviderRecord", now: float, straggling: int = 0) -> str:
        horizon = (
            max(self.heartbeat_interval, record.heartbeat_interval)
            * self.heartbeat_tolerance
        )
        heartbeat_age = max(0.0, now - record.last_heartbeat)
        if not record.alive or heartbeat_age > horizon:
            return GRADE_UNHEALTHY
        # Laplace smoothing pins a provider with no history at 0.5, so
        # reliability only judges providers with actual evidence.
        samples = record.completed + record.failed
        if samples >= self.reliability_min_samples:
            if record.reliability < self.reliability_floor:
                return GRADE_UNHEALTHY
        grade = GRADE_HEALTHY
        if (
            samples >= self.reliability_min_samples
            and record.reliability < self.reliability_warn
        ):
            grade = GRADE_DEGRADED
        if self.is_flapping(record.provider_id, now):
            grade = GRADE_DEGRADED
        if (
            record.benchmark_score > 0
            and record.observed_speed.value is not None
            and record.effective_speed
            < record.benchmark_score * self.speed_warn_ratio
        ):
            grade = GRADE_DEGRADED
        if straggling > 0:
            grade = GRADE_DEGRADED
        return grade

    def scorecards(
        self, records: Iterable["ProviderRecord"], now: float
    ) -> list[ProviderScorecard]:
        straggling = self.watchdog.straggling_by_provider()
        cards: list[ProviderScorecard] = []
        for record in sorted(records, key=lambda item: item.provider_id):
            stuck = straggling.get(str(record.provider_id), 0)
            cards.append(
                ProviderScorecard(
                    provider_id=str(record.provider_id),
                    device_class=record.device_class,
                    grade=self.grade(record, now, straggling=stuck),
                    alive=record.alive,
                    capacity=record.capacity,
                    outstanding=record.outstanding,
                    reliability=record.reliability,
                    effective_speed=record.effective_speed,
                    benchmark_score=record.benchmark_score,
                    heartbeat_age=max(0.0, now - record.last_heartbeat),
                    flaps=self.flap_count(record.provider_id),
                    straggling=stuck,
                )
            )
        return cards


def overall_status(cards: Iterable[ProviderScorecard]) -> str:
    """Aggregate a pool's scorecards into one status string.

    No providers at all, or none alive, means the cluster cannot execute
    anything: ``unhealthy``.  Any degraded/unhealthy member degrades the
    pool; otherwise ``ok``.
    """
    cards = list(cards)
    if not cards or not any(card.alive for card in cards):
        return GRADE_UNHEALTHY
    worst = max(GRADE_RANK[card.grade] for card in cards)
    if worst >= GRADE_RANK[GRADE_UNHEALTHY]:
        return GRADE_DEGRADED  # pool still has healthy members
    if worst >= GRADE_RANK[GRADE_DEGRADED]:
        return GRADE_DEGRADED
    return "ok"
