"""The :class:`Telemetry` facade and per-subsystem metric bundles.

Cores accept ``telemetry: Telemetry | None``.  ``None`` (the default)
means *fully disabled*: the instrumented code paths reduce to one
``is not None`` check per event, and no obs object is ever allocated.
When enabled, each core builds its metric bundle once at construction —
:class:`BrokerMetrics`, :class:`ProviderMetrics`, :class:`ConsumerMetrics`,
:class:`TransportMetrics` — so the hot path only touches pre-resolved
family/child handles.

Several cores sharing one :class:`Telemetry` (the normal single-process
arrangement: simulator, tests, broker+providers co-located) share its
registry and span store, which is what makes the cross-node span tree
reconstructable from one place.
"""

from __future__ import annotations

from .events import FlightRecorder
from .metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from .trace import SpanStore, Tracer

#: Buckets for per-execution VM wall/service time in seconds.
EXECUTION_TIME_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0,
)

#: Buckets for heartbeat round-trip times in seconds.
RTT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)


class Telemetry:
    """Bundle of metrics registry, tracer/span store, and flight recorder.

    Pass ``events=FlightRecorder(jsonl_path=...)`` to mirror lifecycle
    events into rotating JSONL files; the default recorder is in-memory
    only.  Event volume is always visible in the exposition through the
    ``repro_events_total{kind=...}`` counter attached here.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        span_capacity: int = 4096,
        events: FlightRecorder | None = None,
    ):
        self.registry = registry or MetricsRegistry()
        self.tracer = tracer or Tracer(SpanStore(span_capacity))
        # Not `or`: an empty FlightRecorder is falsy (len 0), which would
        # silently discard a caller's JSONL-backed recorder.
        self.events = events if events is not None else FlightRecorder()
        self.events.attach_counter(
            self.registry.counter(
                "repro_events_total",
                "Flight-recorder events recorded, by kind",
                labelnames=("kind",),
            )
        )

    @property
    def spans(self) -> SpanStore:
        return self.tracer.store


class BrokerMetrics:
    """Broker-side families (shared across brokers on one registry)."""

    def __init__(self, registry: MetricsRegistry):
        self.tasklets_submitted = registry.counter(
            "repro_broker_tasklets_submitted_total",
            "Tasklets admitted for scheduling",
        )
        self.tasklets_completed = registry.counter(
            "repro_broker_tasklets_completed_total",
            "Tasklets that reached a final result, by outcome",
            labelnames=("outcome",),
        )
        self.executions_issued = registry.counter(
            "repro_broker_executions_issued_total",
            "Execution replicas assigned to providers",
        )
        self.executions_reissued = registry.counter(
            "repro_broker_executions_reissued_total",
            "Replicas issued to replace a failed/lost/timed-out execution",
        )
        self.execution_results = registry.counter(
            "repro_broker_execution_results_total",
            "Terminal execution records folded into votes, by status",
            labelnames=("status",),
        )
        self.placements = registry.counter(
            "repro_broker_placements_total",
            "Providers chosen by the scheduling strategy",
            labelnames=("strategy",),
        )
        self.replicas_queued = registry.counter(
            "repro_broker_replicas_queued_total",
            "Replicas that could not be placed immediately and were queued",
        )
        self.providers_failed = registry.counter(
            "repro_broker_providers_failed_total",
            "Providers declared dead by the heartbeat failure detector",
        )
        self.pending_tasklets = registry.gauge(
            "repro_broker_pending_tasklets",
            "Tasklets admitted but not yet completed",
        )
        self.backlog_replicas = registry.gauge(
            "repro_broker_backlog_replicas",
            "Replicas queued waiting for provider capacity",
        )
        self.providers_alive = registry.gauge(
            "repro_broker_providers_alive",
            "Registered providers currently considered alive",
        )
        self.heartbeat_gap = registry.histogram(
            "repro_broker_heartbeat_gap_seconds",
            "Observed gap between consecutive heartbeats of one provider",
            buckets=RTT_BUCKETS + (2.5, 5.0, 10.0),
        )
        self.memo_cache = registry.counter(
            "repro_broker_memo_cache_total",
            "Result-memoization lookups at admission, by result",
            labelnames=("result",),
        )
        self.journal_records = registry.counter(
            "repro_broker_journal_records_total",
            "Work-journal records appended, by kind",
            labelnames=("kind",),
        )
        self.tasklets_recovered = registry.counter(
            "repro_broker_tasklets_recovered_total",
            "Pending tasklets re-admitted from the work journal at startup",
        )
        self.completions_redelivered = registry.counter(
            "repro_broker_completions_redelivered_total",
            "Journalled completions re-delivered on idempotent resubmit",
        )
        self.replicas_overflowed = registry.counter(
            "repro_broker_replicas_overflowed_total",
            "Replicas dropped because the scheduling backlog was full",
        )
        self.journal_compactions = registry.counter(
            "repro_broker_journal_compactions_total",
            "Automatic in-place rewrites of the work journal",
        )


class FederationMetrics:
    """Broker federation families (peer gossip, forwarding, handoff)."""

    def __init__(self, registry: MetricsRegistry):
        self.gossip = registry.counter(
            "repro_federation_gossip_total",
            "Gossip digests exchanged with peer brokers, by direction",
            labelnames=("direction",),
        )
        self.forwards = registry.counter(
            "repro_federation_forwards_total",
            "Tasklets forwarded between brokers, by direction",
            labelnames=("direction",),
        )
        self.forward_results = registry.counter(
            "repro_federation_forward_results_total",
            "Forwarded tasklets that reached a terminal state, by outcome",
            labelnames=("outcome",),
        )
        self.peers_alive = registry.gauge(
            "repro_federation_peers_alive",
            "Configured peer brokers currently considered alive",
        )
        self.handoff = registry.counter(
            "repro_federation_handoff_total",
            "Journal records adopted from dead peers' journals, by kind",
            labelnames=("kind",),
        )


class WorkflowMetrics:
    """DAG-workflow families (broker-held dependency scheduling)."""

    def __init__(self, registry: MetricsRegistry):
        self.submitted = registry.counter(
            "repro_workflows_submitted_total",
            "Workflow (DAG) submissions admitted or rejected",
        )
        self.completed = registry.counter(
            "repro_workflows_completed_total",
            "Workflows that reached a terminal state, by outcome",
            labelnames=("outcome",),
        )
        self.nodes = registry.counter(
            "repro_workflow_nodes_total",
            "Workflow nodes that reached a terminal state, by outcome",
            labelnames=("outcome",),
        )
        self.active = registry.gauge(
            "repro_workflows_active",
            "Workflows admitted and not yet terminal",
        )


class ProviderMetrics:
    """Provider-side families."""

    def __init__(self, registry: MetricsRegistry):
        self.executions = registry.counter(
            "repro_provider_executions_total",
            "Execution attempts run on this provider pool, by status",
            labelnames=("status",),
        )
        self.rejected = registry.counter(
            "repro_provider_rejected_total",
            "Assignments refused (queue full, draining)",
        )
        self.busy_slots = registry.gauge(
            "repro_provider_busy_slots",
            "Execution slots currently occupied, per provider",
            labelnames=("provider",),
        )
        self.program_cache = registry.counter(
            "repro_provider_program_cache_total",
            "Program-LRU lookups, by result",
            labelnames=("result",),
        )
        self.execution_seconds = registry.histogram(
            "repro_provider_execution_seconds",
            "Service time of one execution (queue excluded)",
            buckets=EXECUTION_TIME_BUCKETS,
        )
        self.vm_instructions = registry.counter(
            "repro_provider_vm_instructions_total",
            "TVM instructions retired across all executions",
        )
        self.vm_opcodes = registry.counter(
            "repro_provider_vm_opcodes_total",
            "TVM instructions retired by opcode group (profiled executions only)",
            labelnames=("group",),
        )


class ConsumerMetrics:
    """Consumer-side families."""

    def __init__(self, registry: MetricsRegistry):
        self.submitted = registry.counter(
            "repro_consumer_tasklets_submitted_total",
            "Tasklets handed to the middleware",
        )
        self.completed = registry.counter(
            "repro_consumer_tasklets_completed_total",
            "Tasklet futures resolved, by outcome",
            labelnames=("outcome",),
        )
        self.failures = registry.counter(
            "repro_consumer_failures_total",
            "Failed Tasklets by error family",
            labelnames=("kind",),
        )
        self.latency = registry.histogram(
            "repro_consumer_latency_seconds",
            "Submit-to-resolve latency of completed Tasklets",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )


class TransportMetrics:
    """TCP transport families (bytes, connections, heartbeat RTT)."""

    def __init__(self, registry: MetricsRegistry):
        self.bytes = registry.counter(
            "repro_transport_bytes_total",
            "Framed bytes moved over TCP, by direction and wire codec",
            labelnames=("direction", "codec"),
        )
        self.messages = registry.counter(
            "repro_transport_messages_total",
            "Envelopes moved over TCP, by direction and wire codec",
            labelnames=("direction", "codec"),
        )
        self.flushes = registry.counter(
            "repro_transport_flushes_total",
            "Coalesced socket writes (messages/flushes = mean batch size)",
        )
        self.connections = registry.gauge(
            "repro_transport_connections",
            "Open TCP connections",
        )
        self.reconnects = registry.counter(
            "repro_transport_reconnects_total",
            "Successful provider reconnections after a lost broker link",
        )
        self.heartbeat_rtt = registry.histogram(
            "repro_transport_heartbeat_rtt_seconds",
            "Provider-measured heartbeat round-trip time",
            buckets=RTT_BUCKETS,
        )
        self.heartbeats_unechoed = registry.counter(
            "repro_transport_heartbeats_unechoed_total",
            "Heartbeat acks carrying no RTT echo (silent RTT gaps)",
        )
