"""The flight recorder: a structured log of middleware lifecycle events.

Metrics answer *how much*; the flight recorder answers *what happened*.
Every notable state transition — a provider joining or dying, a replica
placed or re-issued, an execution faulting, a straggler alert — becomes a
typed :class:`Event` appended to a bounded in-memory ring, and optionally
to rotating JSONL files for post-mortem analysis (the CI smoke job
uploads these as artifacts).

Events are cheap: recording one is a lock, a dataclass, and a deque
append.  Like the rest of :mod:`repro.obs` the recorder is strictly
opt-in — cores only touch it through ``telemetry.events``, and with
telemetry disabled no recorder exists at all.

Timestamps come from the caller's clock (virtual in the simulator, wall
on TCP) via the ``ts`` argument; ``record`` falls back to ``time.time``
only when no timestamp is supplied, so simulated and live event logs are
both internally consistent.

The event schema on the wire (one JSON object per JSONL line) is
documented in ``docs/PROTOCOL.md``, "Observability event schema".
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .metrics import CounterFamily

#: Default ring capacity; bounds memory for arbitrarily long deployments.
DEFAULT_EVENT_CAPACITY = 2048

# -- well-known event kinds -------------------------------------------------
# The recorder accepts any string kind; these constants are the vocabulary
# the middleware itself emits (and PROTOCOL.md documents).
NODE_JOIN = "node_join"  # provider registered
NODE_LEAVE = "node_leave"  # provider unregistered gracefully
NODE_DEAD = "node_dead"  # heartbeat failure detector fired
NODE_FLAP = "node_flap"  # known provider re-registered (crash + return)
PLACEMENT = "placement"  # one replica assigned to a provider
REISSUE = "reissue"  # replica re-issued after a failure/loss/timeout
EXECUTION_FAULT = "execution_fault"  # terminal non-ok execution record
RECONNECT = "reconnect"  # provider re-established its broker link
DISCONNECT = "disconnect"  # node lost its broker link
STRAGGLER_ALERT = "straggler_alert"  # execution exceeded expected runtime
FLAPPING_ALERT = "flapping_alert"  # provider flapped repeatedly in a window
SLO_BREACH = "slo_breach"  # tasklet finished past its QoC deadline
TASKLET_FAILED = "tasklet_failed"  # tasklet completed without a result
JOURNAL_RECOVERED = "journal_recovered"  # broker replayed its work journal
MEMO_HIT = "memo_hit"  # submission served from the result cache
RESULT_REDELIVERED = "result_redelivered"  # journalled outcome re-sent on resubmit
BACKLOG_OVERFLOW = "backlog_overflow"  # replicas dropped: scheduling backlog full
JOURNAL_COMPACTED = "journal_compacted"  # work journal rewritten in place
PEER_UP = "peer_up"  # federation peer became reachable (hello/digest seen)
PEER_DOWN = "peer_down"  # federation peer's digests stopped arriving
TASKLET_FORWARDED = "tasklet_forwarded"  # placement forwarded to a peer broker
FORWARD_RECLAIMED = "forward_reclaimed"  # forwarded work taken back (peer lost)
JOURNAL_HANDOFF = "journal_handoff"  # dead peer's journal adopted by successor
BROKER_FAILOVER = "broker_failover"  # consumer/provider switched brokers
FEDERATION_EXHAUSTED = "federation_exhausted"  # every listed broker unreachable
WORKFLOW_ADMITTED = "workflow_admitted"  # a DAG of tasklets passed admission
WORKFLOW_NODE_RELEASED = "workflow_node_released"  # deps met, node issued
WORKFLOW_COMPLETE = "workflow_complete"  # every node done, outputs delivered
WORKFLOW_FAILED = "workflow_failed"  # a node exhausted retries; graph failed
WORKFLOW_RECOVERED = "workflow_recovered"  # in-flight DAG resumed from journal

#: Kinds that represent actionable operator alerts (``repro top`` surfaces
#: these first).
ALERT_KINDS = frozenset(
    {
        STRAGGLER_ALERT,
        FLAPPING_ALERT,
        SLO_BREACH,
        TASKLET_FAILED,
        DISCONNECT,
        BACKLOG_OVERFLOW,
        PEER_DOWN,
        FEDERATION_EXHAUSTED,
        WORKFLOW_FAILED,
    }
)


@dataclass(frozen=True)
class Event:
    """One recorded lifecycle event."""

    seq: int
    ts: float
    kind: str
    node: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "node": self.node,
            "attrs": dict(self.attrs),
        }


class _JsonlSink:
    """Append-only JSONL file with size-based rotation.

    When the active file would exceed ``max_bytes`` the sink rotates:
    ``events.jsonl`` becomes ``events.jsonl.1``, the previous ``.1``
    becomes ``.2``, and so on up to ``max_files`` rotated generations
    (older ones are deleted).  Not thread-safe by itself — the owning
    :class:`FlightRecorder` serialises access.
    """

    def __init__(self, path: str, max_bytes: int = 1 << 20, max_files: int = 3):
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if max_files < 1:
            raise ValueError(f"max_files must be >= 1, got {max_files}")
        self.path = path
        self.max_bytes = max_bytes
        self.max_files = max_files
        self._file = open(path, "a", encoding="utf-8")
        self._size = self._file.tell()

    def write(self, line: str) -> None:
        encoded = line + "\n"
        if self._size > 0 and self._size + len(encoded) > self.max_bytes:
            self._rotate()
        self._file.write(encoded)
        self._file.flush()
        self._size += len(encoded)

    def _rotate(self) -> None:
        self._file.close()
        oldest = f"{self.path}.{self.max_files}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.max_files - 1, 0, -1):
            source = f"{self.path}.{index}"
            if os.path.exists(source):
                os.replace(source, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._file = open(self.path, "a", encoding="utf-8")
        self._size = 0

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:  # pragma: no cover - close race on shutdown
            pass


class FlightRecorder:
    """Bounded, thread-safe ring of events, optionally mirrored to JSONL.

    ``attach_counter`` (called by :class:`~repro.obs.telemetry.Telemetry`)
    links a ``repro_events_total{kind=...}`` counter family so the metrics
    exposition reflects event volume without scraping ``/events``.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_EVENT_CAPACITY,
        jsonl_path: str | None = None,
        jsonl_max_bytes: int = 1 << 20,
        jsonl_max_files: int = 3,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0
        self._counter: "CounterFamily | None" = None
        self._sink = (
            _JsonlSink(jsonl_path, jsonl_max_bytes, jsonl_max_files)
            if jsonl_path
            else None
        )

    def attach_counter(self, family: "CounterFamily") -> None:
        """Mirror per-kind event counts into a labeled counter family."""
        self._counter = family

    def record(
        self, kind: str, node: str = "", ts: float | None = None, **attrs: Any
    ) -> Event:
        """Append one event; returns it (mostly for tests)."""
        if ts is None:
            ts = time.time()
        with self._lock:
            self._seq += 1
            event = Event(seq=self._seq, ts=ts, kind=kind, node=node, attrs=attrs)
            if len(self._events) == self.capacity:
                self._dropped += 1
            self._events.append(event)
            if self._sink is not None:
                self._sink.write(json.dumps(event.to_dict(), sort_keys=True))
        if self._counter is not None:
            self._counter.labels(kind=kind).inc()
        return event

    def events(self, kind: str | None = None, limit: int | None = None) -> list[Event]:
        """Events oldest-first; optionally filtered by kind, keeping the
        most recent ``limit``."""
        with self._lock:
            snapshot = list(self._events)
        if kind is not None:
            snapshot = [event for event in snapshot if event.kind == kind]
        if limit is not None and limit >= 0:
            snapshot = snapshot[-limit:]
        return snapshot

    def alerts(self, limit: int | None = None) -> list[Event]:
        """Recent events of alert-class kinds (see :data:`ALERT_KINDS`)."""
        with self._lock:
            snapshot = list(self._events)
        snapshot = [event for event in snapshot if event.kind in ALERT_KINDS]
        if limit is not None and limit >= 0:
            snapshot = snapshot[-limit:]
        return snapshot

    def counts(self) -> dict[str, int]:
        """Events currently in the ring, by kind."""
        out: dict[str, int] = {}
        for event in self.events():
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    @property
    def dropped(self) -> int:
        """Events evicted from the ring since creation."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def close(self) -> None:
        """Close the JSONL sink (ring stays readable)."""
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None
