"""Distributed Tasklet tracing: spans, contexts, and the ring-buffer store.

One Tasklet's life is a tree of spans::

    tasklet                      (consumer: submit -> resolve)
    └─ broker.tasklet            (broker: admission -> voted completion)
       ├─ broker.assign          (broker: issue -> terminal result)   × replicas
       │  └─ provider.execute    (provider: start -> finish)
       └─ broker.assign
          └─ provider.execute

A :class:`TraceContext` — ``(trace_id, span_id)`` — rides on every
relevant :class:`~repro.transport.message.Envelope` (the optional
``trace`` field), so each node can parent its spans on the sender's
without any shared state.  Spans land in each node's :class:`SpanStore`,
a bounded ring buffer; in single-process deployments (the simulator,
tests, co-located TCP nodes) the nodes share one store and the full tree
is reconstructable with :func:`build_trace_tree`.

Recording is append-only and terminal: cores compute start/end from
their own clock (virtual in the simulator, wall on TCP) and record the
finished span in one call — there is no "current span" ambient state to
leak across threads.
"""

from __future__ import annotations

import itertools
import threading
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

#: Default ring-buffer capacity: bounds memory no matter how long a
#: deployment runs (~a few hundred bytes per span).
DEFAULT_SPAN_CAPACITY = 4096


@dataclass(frozen=True)
class TraceContext:
    """What travels on the wire: which trace, and which span to parent on."""

    trace_id: str
    span_id: str

    def to_dict(self) -> dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: dict[str, Any] | None) -> "TraceContext | None":
        if not data:
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not trace_id or not span_id:
            return None  # malformed context: drop, never fail the message
        return cls(trace_id=str(trace_id), span_id=str(span_id))


@dataclass
class Span:
    """One finished operation inside a trace."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    node: str
    start: float
    end: float
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Rebuild a span scraped from another node's ``/traces`` dump."""
        parent = data.get("parent_id")
        attrs = data.get("attrs")
        return cls(
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=str(parent) if parent else None,
            name=str(data.get("name", "")),
            node=str(data.get("node", "")),
            start=float(data.get("start", 0.0)),
            end=float(data.get("end", 0.0)),
            status=str(data.get("status", "ok")),
            attrs=dict(attrs) if isinstance(attrs, dict) else {},
        )


class SpanStore:
    """Bounded, thread-safe ring buffer of finished spans."""

    def __init__(self, capacity: int = DEFAULT_SPAN_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._dropped = 0

    def add(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self.capacity:
                self._dropped += 1
            self._spans.append(span)

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def for_trace(self, trace_id: str) -> list[Span]:
        return [span for span in self.spans() if span.trace_id == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids, oldest first."""
        seen: dict[str, None] = {}
        for span in self.spans():
            seen.setdefault(span.trace_id, None)
        return list(seen)

    @property
    def dropped(self) -> int:
        """Spans evicted by the ring buffer since creation."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class Tracer:
    """Mints trace/span ids and records spans into a store.

    Ids are a per-tracer random prefix plus a counter — unique within a
    process, collision-resistant across processes, and cheap (no uuid
    per span).  Tests may pin ``prefix`` for readable ids.
    """

    def __init__(self, store: SpanStore | None = None, prefix: str | None = None):
        self.store = store or SpanStore()
        self._prefix = prefix if prefix is not None else uuid.uuid4().hex[:6]
        self._trace_counter = itertools.count(1)
        self._span_counter = itertools.count(1)

    def start_trace(self) -> TraceContext:
        """A fresh trace with its root span id."""
        trace_id = f"tr-{self._prefix}-{next(self._trace_counter):x}"
        return TraceContext(trace_id=trace_id, span_id=self._next_span_id())

    def child(self, parent: TraceContext) -> TraceContext:
        """A child context in the same trace (new span id)."""
        return TraceContext(trace_id=parent.trace_id, span_id=self._next_span_id())

    def _next_span_id(self) -> str:
        return f"sp-{self._prefix}-{next(self._span_counter):x}"

    def record(
        self,
        name: str,
        context: TraceContext,
        node: str,
        start: float,
        end: float,
        parent_id: str | None = None,
        status: str = "ok",
        attrs: dict[str, Any] | None = None,
    ) -> Span:
        """Record one finished span; returns it (mostly for tests)."""
        span = Span(
            trace_id=context.trace_id,
            span_id=context.span_id,
            parent_id=parent_id,
            name=name,
            node=node,
            start=start,
            end=end,
            status=status,
            attrs=attrs or {},
        )
        self.store.add(span)
        return span


@dataclass
class SpanNode:
    """One node of a reconstructed span tree."""

    span: Span
    children: list["SpanNode"] = field(default_factory=list)


def build_trace_tree(spans: Iterable[Span]) -> list[SpanNode]:
    """Reconstruct the tree(s) for the given spans.

    Spans whose parent is missing (evicted from the ring, or recorded on
    a node whose store was not merged) stay connected: a placeholder span
    named ``(evicted)`` with ``attrs["evicted"] = True`` is synthesized
    for the missing parent and the subtree hangs under it, so a partial
    trace degrades visibly instead of silently shedding subtrees.  Roots
    and children are ordered by start time.
    """
    nodes = {span.span_id: SpanNode(span) for span in spans}
    roots: list[SpanNode] = []
    placeholders: dict[str, SpanNode] = {}
    for node in nodes.values():
        parent_id = node.span.parent_id
        parent = nodes.get(parent_id) if parent_id else None
        if parent is node:
            parent = None
        if parent is not None:
            parent.children.append(node)
        elif parent_id:
            holder = placeholders.get(parent_id)
            if holder is None:
                holder = SpanNode(
                    Span(
                        trace_id=node.span.trace_id,
                        span_id=parent_id,
                        parent_id=None,
                        name="(evicted)",
                        node="?",
                        start=node.span.start,
                        end=node.span.end,
                        status="evicted",
                        attrs={"evicted": True},
                    )
                )
                placeholders[parent_id] = holder
                roots.append(holder)
            holder.span.start = min(holder.span.start, node.span.start)
            holder.span.end = max(holder.span.end, node.span.end)
            holder.children.append(node)
        else:
            roots.append(node)
    for node in list(nodes.values()) + list(placeholders.values()):
        node.children.sort(key=lambda child: (child.span.start, child.span.span_id))
    roots.sort(key=lambda root: (root.span.start, root.span.span_id))
    return roots


def merge_spans(*stores: SpanStore) -> list[Span]:
    """All spans of several stores (one per node), in start order."""
    merged: list[Span] = []
    for store in stores:
        merged.extend(store.spans())
    merged.sort(key=lambda span: (span.trace_id, span.start, span.span_id))
    return merged


def format_trace(spans: Sequence[Span]) -> str:
    """Human-readable dump of one trace's span tree."""
    if not spans:
        return "(no spans)"
    lines: list[str] = []

    def render(node: SpanNode, depth: int) -> None:
        span = node.span
        indent = "  " * depth
        extras = " ".join(f"{key}={value}" for key, value in sorted(span.attrs.items()))
        suffix = f" [{extras}]" if extras else ""
        lines.append(
            f"{indent}{span.name} ({span.node}) {span.duration * 1e3:.3f}ms "
            f"status={span.status}{suffix}"
        )
        for child in node.children:
            render(child, depth + 1)

    for root in build_trace_tree(spans):
        lines.append(f"trace {root.span.trace_id}")
        render(root, 1)
    return "\n".join(lines)
