#!/usr/bin/env python
"""Federated workflow tracing smoke (run in CI).

Proves the cluster-wide trace plane over real TCP sockets:

1. three federated brokers come up, each with its own Telemetry (so
   spans land in three separate stores) and its own ObsServer, each
   naming the other two as ``peer_obs_urls``;
2. providers attach to b2 and b3 only, so b1 — where the workflow is
   submitted — must forward every node to a peer;
3. a chain workflow runs to completion through b1;
4. one HTTP query against b1 — ``/traces?workflow_id=`` — must return a
   SINGLE trace: the federated span pull merges b2/b3's spans, the tree
   reconstructs with one connected root, every node of the DAG appears,
   at least one ``broker.forward`` span proves the cross-broker hop, and
   the critical path is non-empty with phase totals within 10% of the
   makespan;
5. the Chrome trace-event export is written as a CI artifact and
   structurally validated.

Exit code 0 when every assertion holds; stack trace otherwise.
"""

import argparse
import json
import socket
import sys
import time
import urllib.request

from repro.broker.core import BrokerConfig
from repro.dag.patterns import chain, reference_values
from repro.obs import Telemetry, analyze_workflow, build_trace_tree
from repro.obs.trace import Span
from repro.transport.tcp import TcpBroker, TcpConsumer, TcpProvider

BROKER_IDS = ("b1", "b2", "b3")
CONFIG = dict(heartbeat_interval=0.2, heartbeat_tolerance=3.0, execution_timeout=30.0)


def free_ports(count):
    sockets = []
    for _ in range(count):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sockets.append(sock)
    ports = [sock.getsockname()[1] for sock in sockets]
    for sock in sockets:
        sock.close()
    return ports


def wait_for(predicate, deadline_s: float, what: str):
    deadline = time.perf_counter() + deadline_s
    while time.perf_counter() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.05)
    raise AssertionError(f"timed out after {deadline_s}s waiting for {what}")


def peer_has_slots(broker, peer_id):
    peer = broker.core.federation.peers.get(peer_id)
    return peer is not None and peer.alive and peer.free_slots > 0


def get_json(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.load(response)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--chrome-out", default="trace_smoke_chrome.json",
        help="Chrome trace-event JSON artifact path",
    )
    args = parser.parse_args()

    ports = free_ports(2 * len(BROKER_IDS))
    addresses = {
        bid: ("127.0.0.1", port)
        for bid, port in zip(BROKER_IDS, ports[: len(BROKER_IDS)])
    }
    obs_urls = {
        bid: f"http://127.0.0.1:{port}"
        for bid, port in zip(BROKER_IDS, ports[len(BROKER_IDS):])
    }
    telemetries = {bid: Telemetry() for bid in BROKER_IDS}

    brokers = {}
    for bid in BROKER_IDS:
        obs_port = int(obs_urls[bid].rsplit(":", 1)[1])
        brokers[bid] = TcpBroker(
            host="127.0.0.1",
            port=addresses[bid][1],
            config=BrokerConfig(**CONFIG),
            telemetry=telemetries[bid],
            obs_port=obs_port,
            broker_id=bid,
            peers={o: addresses[o] for o in BROKER_IDS if o != bid},
            peer_obs_urls={o: obs_urls[o] for o in BROKER_IDS if o != bid},
            gossip_interval=0.2,
        ).start()
    print(
        "federation up: "
        + ", ".join(f"{b}@{addresses[b][1]} obs={obs_urls[b]}" for b in BROKER_IDS)
    )

    providers = []
    consumer = None
    try:
        # Each provider shares its broker's telemetry (the co-located
        # deployment shape): its ``provider.execute`` spans land in that
        # broker's store and travel with the federated span pull.
        for bid, name in (("b2", "p2"), ("b3", "p3")):
            providers.append(
                TcpProvider(
                    *addresses[bid], node_id=name, capacity=2,
                    benchmark_score=1e7, telemetry=telemetries[bid],
                ).start()
            )
        wait_for(
            lambda: peer_has_slots(brokers["b1"], "b2")
            and peer_has_slots(brokers["b1"], "b3"),
            15, "gossip to carry peer capacity to b1",
        )

        # The consumer shares b1's telemetry: its root ``workflow`` span
        # lands in b1's store, next to b1's broker-side spans.
        consumer = TcpConsumer(
            *addresses["b1"], node_id="trace-consumer",
            telemetry=telemetries["b1"],
        ).start()
        spec = chain(4, work=200, salt=11)
        reference = reference_values(spec)
        handle = consumer.submit_workflow(spec)
        outputs = handle.result(timeout=60)
        assert outputs == {
            node_id: reference[node_id]
            for node_id in outputs
        }, (outputs, reference)
        print(f"workflow {spec.workflow_id} completed: {outputs}")

        # b1 never had a provider: every node must have been forwarded.
        forwarded = brokers["b1"].core.stats.tasklets_forwarded
        assert forwarded >= 1, "b1 forwarded nothing despite having no providers"
        print(f"b1 forwarded {forwarded} node tasklet(s) to peers")

        # One HTTP query against b1 merges the whole federation's spans.
        doc = wait_for(
            lambda: (
                lambda d: d if any(
                    s["name"] == "provider.execute" for s in d["spans"]
                ) else None
            )(
                get_json(
                    f"{obs_urls['b1']}/traces?format=json"
                    f"&workflow_id={spec.workflow_id}"
                )
            ),
            15, "federated span pull to include peer executions",
        )
        spans = [Span.from_dict(item) for item in doc["spans"]]
        assert spans, "no spans for the workflow"
        trace_ids = {span.trace_id for span in spans}
        assert len(trace_ids) == 1, f"expected one trace id, got {trace_ids}"
        print(f"single trace id across the federation: {trace_ids.pop()}")

        nodes_seen = {
            span.attrs["node_id"] for span in spans if span.name == "wf.node"
        }
        want = {node.node_id for node in spec.nodes}
        assert nodes_seen == want, (nodes_seen, want)
        recording_nodes = {span.node for span in spans}
        assert len(recording_nodes & {"b2", "b3"}) >= 1, recording_nodes
        forwards = [span for span in spans if span.name == "broker.forward"]
        assert forwards, "no broker.forward span in the merged trace"

        roots = build_trace_tree(spans)
        assert len(roots) == 1, [root.span.name for root in roots]
        assert roots[0].span.name == "workflow", roots[0].span.name
        assert not roots[0].span.attrs.get("evicted"), "root was synthesized"
        print(
            f"connected tree: one root ({roots[0].span.name}), "
            f"{len(spans)} spans, {len(forwards)} forward hop(s), "
            f"recorded on {sorted(recording_nodes)}"
        )

        analysis = analyze_workflow(spans, spec.workflow_id)
        assert analysis is not None
        assert analysis.critical_path, "empty critical path"
        totals = analysis.phase_totals()
        total = sum(totals.values())
        assert analysis.makespan > 0
        drift = abs(total - analysis.makespan) / analysis.makespan
        assert drift < 0.10, f"phase totals drift {drift:.1%} from makespan"
        print(
            f"critical path {' -> '.join(analysis.critical_path)}; "
            f"phases sum {total * 1e3:.1f}ms vs makespan "
            f"{analysis.makespan * 1e3:.1f}ms (drift {drift:.1%})"
        )

        with urllib.request.urlopen(
            f"{obs_urls['b1']}/traces?format=chrome"
            f"&workflow_id={spec.workflow_id}",
            timeout=10,
        ) as response:
            chrome = json.load(response)
        events = chrome["traceEvents"]
        assert events, "empty chrome trace"
        for event in events:
            assert event["ph"] in ("X", "M"), event
            assert isinstance(event["pid"], int)
        with open(args.chrome_out, "w") as handle_out:
            json.dump(chrome, handle_out)
        print(f"chrome trace artifact: {args.chrome_out} ({len(events)} events)")
    finally:
        if consumer is not None:
            consumer.stop()
        for provider in providers:
            provider.stop()
        for broker in brokers.values():
            try:
                broker.stop()
            except Exception:
                pass

    print("trace smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
