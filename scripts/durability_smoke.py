#!/usr/bin/env python
"""Broker durability smoke (run in CI).

Drives the full crash-recovery story over real TCP sockets:

1. a journal-backed broker admits a bag of tasklets — two complete,
   three are still pending when the broker is killed;
2. a second broker incarnation replays the journal on the same port:
   the three pending tasklets are recovered and re-issued, and the
   reconnecting consumer's resubmission of the two completed ids is
   answered from the journal without re-executing anything;
3. identical submissions (same program/entry/args/seed/fuel) are served
   from the result cache — the hit shows up on ``/metrics``;
4. ``python -m repro journal`` summarises the journal file (kept as a
   CI artifact on failure).

Exit code 0 when every assertion holds; stack trace otherwise.
"""

import argparse
import json
import sys
import time
import urllib.request

from repro.broker.core import BrokerConfig
from repro.cli import main as cli_main
from repro.common.errors import BrokerUnreachable
from repro.core import kernels
from repro.obs import Telemetry, parse_prometheus
from repro.transport.tcp import TcpBroker, TcpConsumer, TcpProvider

DONE = [("done-0", 150), ("done-1", 151)]
LOST = [("lost-0", 152), ("lost-1", 153), ("lost-2", 154)]
CONFIG = dict(heartbeat_interval=0.2, heartbeat_tolerance=3.0, execution_timeout=30.0)


def fetch(url: str):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.read().decode()


def start_broker(journal_path: str, port: int = 0) -> TcpBroker:
    deadline = time.perf_counter() + 10.0
    while True:
        try:
            return TcpBroker(
                port=port,
                config=BrokerConfig(**CONFIG),
                telemetry=Telemetry(),
                obs_port=0,
                journal_path=journal_path,
            ).start()
        except OSError:
            if port == 0 or time.perf_counter() > deadline:
                raise
            time.sleep(0.1)


def wait_for(predicate, deadline_s: float, what: str):
    deadline = time.perf_counter() + deadline_s
    while time.perf_counter() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.05)
    raise AssertionError(f"timed out after {deadline_s}s waiting for {what}")


def submit_bag(consumer, bag):
    return [
        consumer.library.submit(kernels.PRIME_COUNT, args=[limit], tasklet_id=tid)
        for tid, limit in bag
    ]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--journal", default="work_journal.jsonl",
        help="journal path (CI artifact on failure)",
    )
    args = parser.parse_args()

    # -- incarnation 1: admit work, complete some, crash --------------------
    first = start_broker(args.journal)
    host, port = first.address
    consumer = TcpConsumer(host, port, node_id="smoke-consumer").start()
    try:
        provider = TcpProvider(
            host, port, node_id="p1", benchmark_score=1e7, capacity=2
        ).start()
        wait_for(lambda: len(first.core.registry) >= 1, 10, "registration")
        done_values = [f.result(timeout=60) for f in submit_bag(consumer, DONE)]
        assert done_values == [kernels.python_prime_count(n) for _, n in DONE]
        provider.stop()  # nothing left to run the next bag
        wait_for(
            lambda: len(first.core.registry) == 0, 10, "provider unregistration"
        )
        pending = submit_bag(consumer, LOST)
        wait_for(
            lambda: first.core.pending_tasklets == len(LOST), 10, "admission"
        )
        print(f"incarnation 1: {len(DONE)} completed, {len(LOST)} pending — killing broker")
        first.stop()
        for future in pending:
            try:
                future.result(timeout=10)
                raise AssertionError("pending future survived the crash")
            except BrokerUnreachable:
                pass  # typed, immediate — the documented failure surface
    except BaseException:
        consumer.stop()
        first.stop()
        raise

    # -- incarnation 2: replay, recover, redeliver, memoize -----------------
    second = start_broker(args.journal, port=port)
    provider = None
    try:
        stats = second.core.stats
        assert stats.tasklets_recovered == len(LOST), stats.tasklets_recovered
        print(f"incarnation 2: recovered {stats.tasklets_recovered} pending tasklet(s)")

        consumer.reconnect()
        futures = submit_bag(consumer, DONE + LOST)
        provider = TcpProvider(
            host, port, node_id="p1", benchmark_score=1e7, capacity=2
        ).start()
        values = consumer.library.gather(futures, timeout=120)
        assert values == [kernels.python_prime_count(n) for _, n in DONE + LOST]
        assert stats.completions_redelivered == len(DONE), stats.completions_redelivered
        assert stats.executions_issued == len(LOST), stats.executions_issued
        print(
            f"recovery: {len(DONE + LOST)} results, "
            f"{stats.completions_redelivered} redelivered from the journal, "
            f"{stats.executions_issued} executed (exactly once each)"
        )

        # Identical computations: once the first completes, the second
        # submission is answered from the result cache without executing.
        first_value = consumer.library.submit(
            kernels.PRIME_COUNT, args=[400], seed=7, tasklet_id="memo-a"
        ).result(timeout=60)
        second_value = consumer.library.submit(
            kernels.PRIME_COUNT, args=[400], seed=7, tasklet_id="memo-b"
        ).result(timeout=60)
        assert first_value == second_value
        assert stats.memo_hits == 1, stats.memo_hits
        assert stats.executions_issued == len(LOST) + 1, stats.executions_issued

        parsed = parse_prometheus(fetch(second.obs.url + "/metrics"))
        cache = parsed.get("repro_broker_memo_cache_total", {})
        assert cache.get('result="hit"') == 1, cache
        recovered = parsed.get("repro_broker_tasklets_recovered_total", {})
        assert recovered.get("") == len(LOST), recovered
        redelivered = parsed.get("repro_broker_completions_redelivered_total", {})
        assert redelivered.get("") == len(DONE), redelivered
        records = parsed.get("repro_broker_journal_records_total", {})
        assert records.get('kind="admitted"', 0) >= 1, records
        hits, misses = cache.get('result="hit"'), cache.get('result="miss"')
        print(f"/metrics: memo_cache hit={hits} miss={misses}, journal records {records}")
    finally:
        if provider is not None:
            provider.stop()
        consumer.stop()
        second.stop()

    assert cli_main(["journal", args.journal]) == 0
    document = json.loads(fetch_journal_json(args.journal))
    assert document["pending"] == [], document["pending"]
    print("durability smoke OK")
    return 0


def fetch_journal_json(path: str) -> str:
    from io import StringIO
    from contextlib import redirect_stdout

    buffer = StringIO()
    with redirect_stdout(buffer):
        assert cli_main(["journal", path, "--format", "json"]) == 0
    return buffer.getvalue()


if __name__ == "__main__":
    sys.exit(main())
