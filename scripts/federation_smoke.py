#!/usr/bin/env python
"""Broker federation smoke (run in CI).

Drives the broker-loss survival story over real TCP sockets:

1. three federated brokers come up, each journal-backed and each naming
   the other two as peers (and their journal paths for handoff);
2. providers attach to b2 and b3 only, so b1 — the consumer's first
   choice — forwards every admission it accepts;
3. a bag of tasklets is submitted through b1, which is then killed
   mid-workload (no drain, no goodbye);
4. the consumer fails over to a surviving broker on its own, in-flight
   futures fail typed, and idempotent resubmission recovers the rest;
5. the cross-journal audit proves exactly-once: every tasklet value is
   correct, and each tasklet's ``executed_by`` names exactly one broker
   — never the one that died.

Exit code 0 when every assertion holds; stack trace otherwise.  The
journals and the flight-recorder event log are CI artifacts on failure.
"""

import argparse
import socket
import sys
import time

from repro.broker.core import BrokerConfig
from repro.broker.journal import replay_journal
from repro.common.errors import BrokerUnreachable
from repro.core import kernels
from repro.obs import FlightRecorder, Telemetry
from repro.transport.tcp import TcpBroker, TcpConsumer, TcpProvider

BROKER_IDS = ("b1", "b2", "b3")
CONFIG = dict(heartbeat_interval=0.2, heartbeat_tolerance=3.0, execution_timeout=30.0)
BAG = [(f"fed-{i}", 200 + 10 * i) for i in range(8)]


def free_ports(count):
    sockets = []
    for _ in range(count):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sockets.append(sock)
    ports = [sock.getsockname()[1] for sock in sockets]
    for sock in sockets:
        sock.close()
    return ports


def wait_for(predicate, deadline_s: float, what: str):
    deadline = time.perf_counter() + deadline_s
    while time.perf_counter() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.05)
    raise AssertionError(f"timed out after {deadline_s}s waiting for {what}")


def peer_has_slots(broker, peer_id):
    peer = broker.core.federation.peers.get(peer_id)
    return peer is not None and peer.alive and peer.free_slots > 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--journal-dir", default=".",
        help="directory for the three broker journals (CI artifacts)",
    )
    parser.add_argument(
        "--events-log", default="federation_events.jsonl",
        help="flight-recorder JSONL (CI artifact on failure)",
    )
    args = parser.parse_args()

    ports = free_ports(len(BROKER_IDS))
    addresses = {bid: ("127.0.0.1", p) for bid, p in zip(BROKER_IDS, ports)}
    journals = {
        bid: f"{args.journal_dir}/journal_{bid}.jsonl" for bid in BROKER_IDS
    }
    telemetry = Telemetry(events=FlightRecorder(jsonl_path=args.events_log))

    brokers = {}
    for bid in BROKER_IDS:
        brokers[bid] = TcpBroker(
            host="127.0.0.1",
            port=addresses[bid][1],
            config=BrokerConfig(**CONFIG),
            telemetry=telemetry if bid == "b1" else None,
            journal_path=journals[bid],
            broker_id=bid,
            peers={o: addresses[o] for o in BROKER_IDS if o != bid},
            peer_journals={o: journals[o] for o in BROKER_IDS if o != bid},
            gossip_interval=0.2,
        ).start()
    print(f"federation up: {', '.join(f'{b}@{addresses[b][1]}' for b in BROKER_IDS)}")

    providers = []
    consumer = None
    try:
        for bid, name in (("b2", "p2"), ("b3", "p3")):
            providers.append(
                TcpProvider(
                    *addresses[bid], node_id=name, capacity=2,
                    benchmark_score=1e7,
                ).start()
            )
        wait_for(
            lambda: peer_has_slots(brokers["b1"], "b2")
            and peer_has_slots(brokers["b1"], "b3"),
            15, "gossip to carry peer capacity to b1",
        )

        consumer = TcpConsumer(
            node_id="smoke-consumer",
            brokers=[addresses[b] for b in BROKER_IDS],
            telemetry=telemetry,
        ).start()
        arguments = dict(BAG)
        futures = {
            tid: consumer.library.submit(
                kernels.PRIME_COUNT, args=[limit], tasklet_id=tid
            )
            for tid, limit in BAG
        }
        wait_for(
            lambda: brokers["b1"].core.stats.tasklets_submitted >= len(BAG),
            15, "b1 to admit the bag",
        )
        print(f"killing b1 with {len(BAG)} tasklets in flight")
        brokers["b1"].stop()

        values = {}
        for tid, future in futures.items():
            try:
                values[tid] = future.result(timeout=30)
            except BrokerUnreachable:
                pass
        lost = [tid for tid, _ in BAG if tid not in values]
        print(f"{len(values)} results before the kill, {len(lost)} to recover")

        wait_for(
            lambda: not consumer._disconnected.is_set(),
            15, "consumer failover to a surviving broker",
        )
        for tid in lost:
            values[tid] = consumer.library.submit(
                kernels.PRIME_COUNT, args=[arguments[tid]], tasklet_id=tid
            ).result(timeout=60)

        for tid, limit in BAG:
            expected = kernels.python_prime_count(limit)
            assert values[tid] == expected, (tid, values[tid], expected)
        print(f"all {len(BAG)} tasklets completed with correct values")

        executed_by = {tid: set() for tid, _ in BAG}
        for path in journals.values():
            snapshot = replay_journal(path)
            for completion in snapshot.completions.values():
                tid = completion.tasklet_id
                if tid in executed_by and completion.executed_by:
                    executed_by[tid].add(completion.executed_by)
        for tid, _ in BAG:
            assert len(executed_by[tid]) == 1, (
                f"{tid} executed by {sorted(executed_by[tid]) or 'nobody'}"
            )
        winners = set().union(*executed_by.values())
        assert winners <= {"b2", "b3"}, winners
        print(f"cross-journal audit: exactly one executor per tasklet {sorted(winners)}")

        failovers = telemetry.events.events(kind="broker_failover")
        assert failovers, "no broker_failover event recorded"
        print(f"events: {len(failovers)} broker_failover recorded")
    finally:
        if consumer is not None:
            consumer.stop()
        for provider in providers:
            provider.stop()
        for broker in brokers.values():
            try:
                broker.stop()
            except Exception:
                pass

    print("federation smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
