#!/usr/bin/env python
"""DAG-workflow durability smoke (run in CI).

Drives the broker-held DAG scheduler through a crash over real TCP:

1. a journal-backed broker admits a 3-stage workflow (a reduction tree:
   4 leaves -> 2 combines -> 1 root); the provider finishes part of the
   graph, then drains away, and the broker is killed mid-workflow;
2. a second broker incarnation replays the journal on the same port:
   the workflow is resumed, journalled-done nodes short-circuit with
   zero re-execution, and the reconnecting consumer's resubmission of
   the same workflow id re-attaches to the in-flight graph;
3. the workflow completes with outputs matching the pure-python oracle,
   and the journal's ``executed_by`` audit shows every node executed
   exactly once across both incarnations;
4. ``python -m repro journal`` renders the workflow records (the file is
   kept as a CI artifact on failure).

Exit code 0 when every assertion holds; stack trace otherwise.
"""

import argparse
import json
import sys
import time

from repro.broker.core import BrokerConfig
from repro.broker.journal import replay_journal
from repro.cli import main as cli_main
from repro.common.errors import BrokerUnreachable
from repro.dag.patterns import reference_values, tree
from repro.obs import Telemetry
from repro.transport.tcp import TcpBroker, TcpConsumer, TcpProvider

CONFIG = dict(heartbeat_interval=0.2, heartbeat_tolerance=3.0, execution_timeout=30.0)
#: Per-node busy-loop iterations (~0.5s each): big enough that, with a
#: capacity-1 provider serialising the tree, the graph is guaranteed
#: still in flight when we pull the plug; small enough to keep CI fast.
WORK = 150_000


def start_broker(journal_path: str, port: int = 0) -> TcpBroker:
    deadline = time.perf_counter() + 10.0
    while True:
        try:
            return TcpBroker(
                port=port,
                config=BrokerConfig(**CONFIG),
                telemetry=Telemetry(),
                journal_path=journal_path,
            ).start()
        except OSError:
            if port == 0 or time.perf_counter() > deadline:
                raise
            time.sleep(0.1)


def start_provider(host: str, port: int) -> TcpProvider:
    # capacity=1 serialises the graph: after the wait below triggers,
    # the next node is mid-execution for a whole node's runtime — a wide
    # window in which the broker kill lands mid-workflow.
    return TcpProvider(
        host, port, node_id="p1", benchmark_score=1e7, capacity=1
    ).start()


def wait_for(predicate, deadline_s: float, what: str):
    deadline = time.perf_counter() + deadline_s
    while time.perf_counter() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.05)
    raise AssertionError(f"timed out after {deadline_s}s waiting for {what}")


def ok_completions(path: str) -> int:
    return sum(1 for c in replay_journal(path).completions.values() if c.ok)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--journal", default="dag_journal.jsonl",
        help="journal path (CI artifact on failure)",
    )
    args = parser.parse_args()

    # max_attempts=3: a node must survive transient provider loss around
    # the crash window instead of failing the whole graph.
    spec = tree(branching=2, depth=2, work=WORK, salt=5, max_attempts=3)  # 4 -> 2 -> 1
    nodes_total = len(spec.nodes)
    reference = reference_values(spec)
    expected = {sink: reference[sink] for sink in spec.sinks()}

    # -- incarnation 1: admit the DAG, finish part of it, crash -------------
    first = start_broker(args.journal)
    host, port = first.address
    consumer = TcpConsumer(host, port, node_id="dag-consumer").start()
    try:
        provider = start_provider(host, port)
        wait_for(lambda: len(first.core.registry) >= 1, 10, "registration")
        handle = consumer.submit_workflow(spec)
        wait_for(lambda: ok_completions(args.journal) >= 2, 60, "partial progress")
        # Pull the plug with the graph guaranteed unfinished: in-flight
        # results die with the connection; the journal is the only truth.
        assert first.core.pending_workflows == 1, first.core.pending_workflows
        first.stop()
        provider.stop()
        provider = None
        done_before = ok_completions(args.journal)
        assert done_before < nodes_total, "workflow finished before the kill"
        print(
            f"incarnation 1: {done_before}/{nodes_total} nodes journalled done "
            "- killed broker mid-workflow"
        )
        try:
            handle.result(timeout=10)
            raise AssertionError("workflow handle survived the crash")
        except BrokerUnreachable:
            pass  # typed, immediate — the documented failure surface
    except BaseException:
        consumer.stop()
        first.stop()
        raise

    # -- incarnation 2: replay, resume, re-attach, finish -------------------
    second = start_broker(args.journal, port=port)
    provider = None
    try:
        stats = second.core.stats
        assert stats.workflows_recovered == 1, stats.workflows_recovered
        assert second.core.pending_workflows == 1, second.core.pending_workflows
        assert stats.workflow_nodes_memoized == done_before, (
            stats.workflow_nodes_memoized, done_before
        )
        print(
            f"incarnation 2: workflow resumed from the journal, "
            f"{stats.workflow_nodes_memoized} node(s) short-circuited"
        )

        consumer.reconnect()
        handle = consumer.submit_workflow(spec)  # idempotent: re-attaches
        provider = start_provider(host, port)
        outputs = handle.result(timeout=120)
        assert outputs == expected, (outputs, expected)
        assert handle.nodes_total == nodes_total, handle.nodes_total
        remaining = nodes_total - done_before
        assert stats.executions_issued == remaining, (
            stats.executions_issued, remaining
        )
        print(
            f"recovery: outputs match the oracle; "
            f"{remaining} node(s) executed by incarnation 2, "
            f"{done_before} redelivered from the journal"
        )
    finally:
        if provider is not None:
            provider.stop()
        consumer.stop()
        second.stop()

    # -- exactly-once audit across both incarnations ------------------------
    snapshot = replay_journal(args.journal)
    executed: dict[str, int] = {}
    for completion in snapshot.completions.values():
        if completion.ok and completion.executed_by:
            executed[completion.key] = executed.get(completion.key, 0) + 1
    assert len(executed) == nodes_total, (len(executed), nodes_total)
    duplicates = {key: n for key, n in executed.items() if n != 1}
    assert not duplicates, f"nodes executed more than once: {duplicates}"
    outcome = next(iter(snapshot.workflow_completions.values()))["outcome"]
    assert outcome["ok"] and outcome["outputs"] == expected, outcome
    assert not snapshot.workflows, "workflow still pending after completion"
    print(
        f"audit: {nodes_total} nodes, each with exactly one executed_by "
        "completion record - zero lost, zero duplicated"
    )

    # The CLI renders the workflow records (text and JSON forms).
    assert cli_main(["journal", args.journal, "--pending"]) == 0
    from contextlib import redirect_stdout
    from io import StringIO

    buffer = StringIO()
    with redirect_stdout(buffer):
        assert cli_main(["journal", args.journal, "--format", "json"]) == 0
    document = json.loads(buffer.getvalue())
    assert document["workflows"] == [], document["workflows"]
    assert len(document["workflow_completions"]) == 1
    print("dag smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
