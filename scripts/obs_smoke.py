#!/usr/bin/env python
"""End-to-end observability smoke (run in CI).

Boots a TCP broker and two providers, all with live ObsServer
endpoints, runs a small workload with one provider artificially slowed,
and asserts the operational plane sees it:

* ``/metrics`` carries the straggler alert counter and health gauges;
* ``/events`` holds the ``straggler_alert`` flight-recorder event;
* ``/healthz`` and ``/readyz`` answer on broker and providers;
* the broker's flight recorder mirrored every event to a JSONL file
  (uploaded as a CI artifact).

The slow provider over-claims its benchmark score, so the
``fastest_first`` strategy reliably routes work to it, and its injected
execution delay blows straight through the watchdog's expected runtime
— the same overpromising-device scenario the health model exists for.

Exit code 0 when every assertion holds; stack trace otherwise.
"""

import argparse
import json
import sys
import time
import urllib.request

from repro.core import kernels
from repro.obs import FlightRecorder, Telemetry, parse_prometheus
from repro.obs import events as ev
from repro.transport.tcp import TcpBroker, TcpConsumer, TcpProvider

WARMUP_TASKS = 2  # teach the watchdog the program's runtime profile
MAIN_TASKS = 4
LIMIT = 300  # prime_count argument; small, so honest runs are fast


def fetch(url: str):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.read().decode()


def wait_for(predicate, deadline_s: float, what: str):
    deadline = time.perf_counter() + deadline_s
    while time.perf_counter() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.1)
    raise AssertionError(f"timed out after {deadline_s}s waiting for {what}")


def alive_providers(base: str) -> int:
    return json.loads(fetch(base + "/healthz")).get("providers_alive", 0)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--events-log", default="obs_events.jsonl",
        help="JSONL flight-recorder mirror (CI artifact)",
    )
    parser.add_argument(
        "--delay", type=float, default=3.0,
        help="injected per-execution delay on the slow provider",
    )
    args = parser.parse_args()

    telemetry = Telemetry(events=FlightRecorder(jsonl_path=args.events_log))
    broker = TcpBroker(
        strategy="fastest_first", telemetry=telemetry, obs_port=0
    ).start()
    fast = slow = None
    try:
        host, port = broker.address
        base = broker.obs.url
        print(f"broker obs plane at {base}")

        fast = TcpProvider(
            host, port, node_id="fast", benchmark_score=1e5, capacity=2,
            obs_port=0,
        ).start()
        wait_for(lambda: alive_providers(base) >= 1, 10, "fast registration")

        # Warmup on the honest provider teaches the watchdog how long
        # this program actually takes.
        with TcpConsumer(host, port) as consumer:
            futures = consumer.library.map(
                kernels.PRIME_COUNT, [[LIMIT]] * WARMUP_TASKS
            )
            consumer.library.gather(futures, timeout=60)
        print(f"warmup: {WARMUP_TASKS} tasklets on the honest provider")

        # The straggler: claims a fantasy benchmark score (so
        # fastest_first prefers it) and sleeps before every execution.
        slow = TcpProvider(
            host, port, node_id="slow-liar", benchmark_score=1e12,
            capacity=2, obs_port=0,
        )
        real_execute = slow._executor.execute

        def delayed_execute(request):
            time.sleep(args.delay)
            return real_execute(request)

        slow._executor.execute = delayed_execute
        slow.start()
        wait_for(lambda: alive_providers(base) >= 2, 10, "slow registration")

        with TcpConsumer(host, port) as consumer:
            futures = consumer.library.map(
                kernels.PRIME_COUNT, [[LIMIT]] * MAIN_TASKS
            )
            # The watchdog alert fires on a broker tick mid-execution,
            # well before the delayed results land.
            wait_for(
                lambda: parse_prometheus(fetch(base + "/metrics"))
                .get("repro_health_alerts_total", {})
                .get('kind="straggler_alert"'),
                30,
                "straggler alert on /metrics",
            )
            values = consumer.library.gather(futures, timeout=120)
        expected = kernels.python_prime_count(LIMIT)
        assert values == [expected] * MAIN_TASKS, values
        print(f"workload: {MAIN_TASKS} tasklets completed correctly")

        parsed = parse_prometheus(fetch(base + "/metrics"))
        alerts = parsed["repro_health_alerts_total"]['kind="straggler_alert"']
        assert alerts >= 1, parsed.get("repro_health_alerts_total")
        print(f"/metrics: repro_health_alerts_total straggler_alert={alerts}")

        events = json.loads(fetch(f"{base}/events?kind={ev.STRAGGLER_ALERT}"))
        straggler_events = events["events"]
        assert straggler_events, "no straggler_alert events on /events"
        assert all(
            event["node"] == "slow-liar" for event in straggler_events
        ), straggler_events
        print(f"/events: {len(straggler_events)} straggler_alert event(s) "
              "on slow-liar")

        health = json.loads(fetch(base + "/healthz"))
        assert health["role"] == "broker"
        assert health["status"] in ("ok", "degraded"), health
        grades = {
            card["provider_id"]: card["grade"] for card in health["providers"]
        }
        assert set(grades) == {"fast", "slow-liar"}, grades
        print(f"/healthz: status={health['status']} grades={grades}")

        assert json.loads(fetch(base + "/readyz"))["ready"] is True
        for provider in (fast, slow):
            doc = json.loads(fetch(provider.obs.url + "/healthz"))
            assert doc["connected"] is True, doc
            assert fetch(provider.obs.url + "/metrics")
        print("/readyz + both provider obs planes answered")

        with open(args.events_log, encoding="utf-8") as handle:
            logged = [json.loads(line) for line in handle if line.strip()]
        kinds = {event["kind"] for event in logged}
        assert ev.STRAGGLER_ALERT in kinds, sorted(kinds)
        assert ev.NODE_JOIN in kinds, sorted(kinds)
        print(f"{args.events_log}: {len(logged)} events, kinds={sorted(kinds)}")
        print("obs smoke OK")
        return 0
    finally:
        for provider in (slow, fast):
            if provider is not None:
                provider.stop()
        broker.stop()


if __name__ == "__main__":
    sys.exit(main())
