"""F5 — reliability under provider failures.

Regenerates experiment F5 from DESIGN.md §3 and asserts its
reconstructed shape claims.  See repro/bench/experiments/exp_f5_reliability.py
for the experiment definition and EXPERIMENTS.md for recorded results.
"""

from repro.bench.experiments import exp_f5_reliability


def test_f5_reliability(run_experiment):
    experiment = run_experiment(exp_f5_reliability)
    assert experiment.experiment_id == "F5"
