"""F6 — the cost of redundant execution.

Regenerates experiment F6 from DESIGN.md §3 and asserts its
reconstructed shape claims.  See repro/bench/experiments/exp_f6_redundancy.py
for the experiment definition and EXPERIMENTS.md for recorded results.
"""

from repro.bench.experiments import exp_f6_redundancy


def test_f6_redundancy(run_experiment):
    experiment = run_experiment(exp_f6_redundancy)
    assert experiment.experiment_id == "F6"
