"""A3 — provider program cache ablation.

Regenerates experiment A3 from DESIGN.md §3 and asserts its
reconstructed shape claims.  See repro/bench/experiments/exp_a3_cache.py
for the experiment definition and EXPERIMENTS.md for recorded results.
"""

from repro.bench.experiments import exp_a3_cache


def test_a3_cache(run_experiment):
    experiment = run_experiment(exp_a3_cache)
    assert experiment.experiment_id == "A3"
