"""F9 — broker-held DAG scheduling vs per-stage round-trips.

Regenerates experiment F9 from DESIGN.md §3 and asserts its
reconstructed shape claims.  See repro/bench/experiments/exp_f9_dag.py
for the experiment definition and EXPERIMENTS.md for recorded results.
"""

from repro.bench.experiments import exp_f9_dag


def test_f9_dag(run_experiment):
    experiment = run_experiment(exp_f9_dag)
    assert experiment.experiment_id == "F9"
