"""T2 — QoC goals and their measured signatures.

Regenerates experiment T2 from DESIGN.md §3 and asserts its
reconstructed shape claims.  See repro/bench/experiments/exp_t2_qoc.py
for the experiment definition and EXPERIMENTS.md for recorded results.
"""

from repro.bench.experiments import exp_t2_qoc


def test_t2_qoc(run_experiment):
    experiment = run_experiment(exp_t2_qoc)
    assert experiment.experiment_id == "T2"
