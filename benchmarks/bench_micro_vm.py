"""VM dispatch microbenchmark: quickened vs baseline engine.

Measures the speedup of the provider's quickened (superinstruction-fused)
engine over the baseline portable-bytecode engine on four kernel shapes —
tight counter loops, float arithmetic, array traffic, and call-heavy
recursion — and records the ratios in ``BENCH_vm.json`` at the repo root.
This is the perf guard for :mod:`repro.tvm.quicken`: the loop kernel must
stay at least ``LOOP_FLOOR``× faster or the run fails, so a regression in
the fused handlers or the dispatch order cannot land silently.

Every measurement first asserts *equivalence*: both engines must produce
the same result and the same ``ExecutionStats.instructions`` (the fuel
invariant that billing and redundant-execution voting depend on).

Runs standalone (``PYTHONPATH=src python benchmarks/bench_micro_vm.py``,
the CI perf-smoke step) or under pytest (``pytest benchmarks/bench_micro_vm.py``).
"""

from __future__ import annotations

import json
import math
import sys
import time
from pathlib import Path

try:
    from repro.core import kernels
except ImportError:  # running as a plain script without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.core import kernels

from repro.tvm.compiler import compile_source
from repro.tvm.vm import TVM, VMLimits

#: Minimum acceptable speedup on the tight counter loop (the shape
#: quickening targets most directly; ISSUE acceptance asks >= 1.5x,
#: the guard trips earlier at 1.3x to stay robust to CI noise).
LOOP_FLOOR = 1.3

_LOOP = """
func main(n: int) -> int {
    var s: int = 0;
    for (var i: int = 0; i < n; i = i + 1) {
        s = s + 3;
    }
    return s;
}
"""

_ARITH = """
func main(n: int) -> float {
    var x: float = 1.5;
    var s: float = 0.0;
    for (var i: int = 0; i < n; i = i + 1) {
        x = x * 1.0000001 + 0.0000003;
        s = s + x * 0.5;
    }
    return s;
}
"""

_ARRAY = """
func main(n: int) -> int {
    var a: array = array(n);
    for (var i: int = 0; i < n; i = i + 1) {
        a[i] = i * 2;
    }
    var s: int = 0;
    for (var j: int = 0; j < n; j = j + 1) {
        s = s + int(a[j]);
    }
    return s;
}
"""

#: kernel name -> (source, entry args); sizes give ~100-300 ms baseline
#: runs so best-of timing dominates interpreter warm-up and clock noise.
KERNELS: dict[str, tuple[str, list]] = {
    "loop": (_LOOP, [300_000]),
    "arith": (_ARITH, [120_000]),
    "array": (_ARRAY, [120_000]),
    "call": (kernels.FIBONACCI, [24]),
}


def _run_once(program, args: list, quickened: bool):
    machine = TVM(
        program, limits=VMLimits(), seed=0, verify=False, quickened=quickened
    )
    result = machine.run("main", list(args))
    return result, machine.stats.instructions


def measure(rounds: int = 5) -> dict:
    """Benchmark every kernel; returns the BENCH_vm.json payload."""
    per_kernel: dict[str, dict] = {}
    for name, (source, args) in KERNELS.items():
        program = compile_source(source)
        program.verify()

        # Equivalence gate before timing: identical result and identical
        # instruction count, or the speedup number is meaningless.
        base_result, base_instructions = _run_once(program, args, quickened=False)
        quick_result, quick_instructions = _run_once(program, args, quickened=True)
        assert base_result == quick_result, (
            f"{name}: result diverged ({base_result!r} vs {quick_result!r})"
        )
        assert base_instructions == quick_instructions, (
            f"{name}: instruction count diverged "
            f"({base_instructions} vs {quick_instructions})"
        )

        # Interleaved best-of: alternate engines each round so thermal /
        # scheduler drift hits both equally; keep the fastest of each.
        best_base = best_quick = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            _run_once(program, args, quickened=False)
            best_base = min(best_base, time.perf_counter() - start)
            start = time.perf_counter()
            _run_once(program, args, quickened=True)
            best_quick = min(best_quick, time.perf_counter() - start)

        per_kernel[name] = {
            "baseline_s": round(best_base, 6),
            "quickened_s": round(best_quick, 6),
            "speedup": round(best_base / best_quick, 3),
            "instructions": base_instructions,
        }

    geomean = math.exp(
        sum(math.log(entry["speedup"]) for entry in per_kernel.values())
        / len(per_kernel)
    )
    return {
        "benchmark": "vm_quickening",
        "kernels": per_kernel,
        "geomean_speedup": round(geomean, 3),
        "loop_floor": LOOP_FLOOR,
    }


def write_report(payload: dict) -> Path:
    path = Path(__file__).resolve().parents[1] / "BENCH_vm.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def check(payload: dict) -> None:
    """The perf guard: loop-kernel speedup must clear the floor."""
    loop_speedup = payload["kernels"]["loop"]["speedup"]
    assert loop_speedup >= LOOP_FLOOR, (
        f"quickening regression: loop kernel speedup {loop_speedup}x "
        f"below the {LOOP_FLOOR}x floor"
    )


def test_quickening_speedup():
    """Pytest entry point: measure, record, and enforce the floor."""
    payload = measure()
    write_report(payload)
    check(payload)


def main() -> int:
    payload = measure()
    path = write_report(payload)
    print(f"{'kernel':<8} {'baseline':>10} {'quickened':>10} {'speedup':>8}")
    for name, entry in payload["kernels"].items():
        print(
            f"{name:<8} {entry['baseline_s'] * 1e3:>8.1f}ms "
            f"{entry['quickened_s'] * 1e3:>8.1f}ms {entry['speedup']:>7.2f}x"
        )
    print(f"geomean speedup: {payload['geomean_speedup']:.2f}x  -> {path}")
    try:
        check(payload)
    except AssertionError as failure:
        print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
