"""A5 — pipelined dispatch ablation (queue-ahead vs assign-on-free-slot).

Regenerates experiment A5 from DESIGN.md §3 and asserts its
reconstructed shape claims.  See ``repro/bench/experiments/exp_a5_pipeline.py``
for the experiment definition and EXPERIMENTS.md for recorded results.
"""

from repro.bench.experiments import exp_a5_pipeline


def test_a5_pipeline(run_experiment):
    experiment = run_experiment(exp_a5_pipeline)
    assert experiment.experiment_id == "A5"
