"""Microbenchmarks of the substrate hot paths.

Unlike the experiment wrappers (one macro run each), these are classic
pytest-benchmark microbenchmarks with statistical rounds: the VM's
dispatch loop, the compiler pipeline, the wire codec, the scheduler's
selection path, and the vote key.  They catch performance regressions in
the pieces every experiment sits on.
"""

import random

from repro.broker.registry import ProviderRegistry
from repro.broker.scheduling import make_strategy
from repro.common.ids import NodeId
from repro.common.serde import FrameReader, pack_frame
from repro.core import kernels
from repro.core.qoc import QoC
from repro.core.results import _vote_key
from repro.tvm.compiler import compile_source
from repro.tvm.vm import TVM, VMLimits


def test_vm_dispatch_throughput(benchmark):
    """Raw interpreter speed on the integer benchmark kernel."""
    program = compile_source(kernels.PRIME_COUNT)

    def run():
        machine = TVM(program, limits=VMLimits(), seed=0, verify=False)
        machine.run("main", [1500])
        return machine.stats.instructions

    instructions = benchmark(run)
    assert instructions > 10_000


def test_vm_float_kernel(benchmark):
    """Float-heavy dispatch (mandelbrot row)."""
    program = compile_source(kernels.MANDELBROT_ROW)
    result = benchmark(
        lambda: TVM(program, verify=False).run("main", [5, 64, 48, 24])
    )
    assert len(result) == 64


def test_compile_pipeline(benchmark):
    """Lex+parse+check+compile of a realistic kernel."""
    program = benchmark(lambda: compile_source(kernels.MANDELBROT_ROW))
    assert program.has_function("main")


def test_program_wire_roundtrip(benchmark):
    """Serialise + frame + parse one compiled program."""
    program = compile_source(kernels.MANDELBROT_ROW)

    def roundtrip():
        frame = pack_frame(program.to_dict())
        return FrameReader().feed(frame)[0]

    payload = benchmark(roundtrip)
    assert payload["version"] == 1


def test_scheduler_selection(benchmark):
    """One placement decision over a 100-provider registry."""
    registry = ProviderRegistry()
    rng = random.Random(7)
    for index in range(100):
        record = registry.register(
            provider_id=NodeId(f"p{index:03d}"),
            device_class=rng.choice(["server", "desktop", "sbc"]),
            capacity=rng.randint(1, 8),
            benchmark_score=rng.uniform(1e6, 2e8),
            price=rng.uniform(0.5, 8.0),
            now=0.0,
        )
        record.outstanding = rng.randint(0, record.capacity)
    strategy = make_strategy("qoc", seed=1)
    qoc = QoC.reliable(redundancy=3)

    def select():
        return strategy.select(registry.views(require_free_slot=True), 3, qoc)

    chosen = benchmark(select)
    assert len(chosen) == 3


def test_vote_key_structured_result(benchmark):
    """Canonical vote key of a nested result (the voting hot path)."""
    value = [[float(i), i, f"s{i}", i % 2 == 0] for i in range(50)]
    key = benchmark(lambda: _vote_key(value))
    assert isinstance(key, str)


def test_fingerprint_memoised(benchmark):
    """Fingerprint access after memoisation must be trivially cheap."""
    program = compile_source(kernels.MANDELBROT_ROW)
    program.fingerprint()  # warm
    assert benchmark(program.fingerprint) == program.fingerprint()
