"""A4 — bytecode optimizer ablation (constant folding / DCE / threading).

Regenerates experiment A4 from DESIGN.md §3 and asserts its
reconstructed shape claims.  See ``repro/bench/experiments/exp_a4_optimizer.py``
for the experiment definition and EXPERIMENTS.md for recorded results.
"""

from repro.bench.experiments import exp_a4_optimizer


def test_a4_optimizer(run_experiment):
    experiment = run_experiment(exp_a4_optimizer)
    assert experiment.experiment_id == "A4"
