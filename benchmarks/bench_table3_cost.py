"""T3 — billed cost vs makespan across QoC goals (the compute market).

Regenerates experiment T3 from DESIGN.md §3 and asserts its
reconstructed shape claims.  See ``repro/bench/experiments/exp_t3_cost.py``
for the experiment definition and EXPERIMENTS.md for recorded results.
"""

from repro.bench.experiments import exp_t3_cost


def test_t3_cost(run_experiment):
    experiment = run_experiment(exp_t3_cost)
    assert experiment.experiment_id == "T3"
