"""F7 — churn tolerance (duty-cycle sweep).

Regenerates experiment F7 from DESIGN.md §3 and asserts its
reconstructed shape claims.  See repro/bench/experiments/exp_f7_churn.py
for the experiment definition and EXPERIMENTS.md for recorded results.
"""

from repro.bench.experiments import exp_f7_churn


def test_f7_churn(run_experiment):
    experiment = run_experiment(exp_f7_churn)
    assert experiment.experiment_id == "F7"
