"""F4 — scheduling strategies under heterogeneity.

Regenerates experiment F4 from DESIGN.md §3 and asserts its
reconstructed shape claims.  See repro/bench/experiments/exp_f4_heterogeneity.py
for the experiment definition and EXPERIMENTS.md for recorded results.
"""

from repro.bench.experiments import exp_f4_heterogeneity


def test_f4_heterogeneity(run_experiment):
    experiment = run_experiment(exp_f4_heterogeneity)
    assert experiment.experiment_id == "F4"
