"""Microbenchmarks guarding the cost of the telemetry subsystem.

Two claims are kept honest here:

1. *Disabled telemetry is free.*  Every instrumented hot path reduces to
   one ``is not None`` test when no :class:`~repro.obs.Telemetry` is
   attached.  Since the un-instrumented code no longer exists as a
   baseline, we assert the next best measurable property: a workload run
   with telemetry **disabled** must not be slower than the same run with
   telemetry fully **enabled** beyond measurement noise (5%) — if the
   disabled guards cost anything real, this inverts.
2. *Enabled telemetry is cheap enough to leave on.*  The enabled run is
   benchmarked alongside the disabled one so a regression in either
   path shows up in the pytest-benchmark tables.

The TVM's per-instruction profiling guard gets the same treatment at
the dispatch-loop level, and the flight recorder's per-event guard at
the event-emission level.
"""

import time

from repro.core import kernels
from repro.obs import Telemetry
from repro.sim.devices import make_pool
from repro.sim.runner import Simulation
from repro.tvm.compiler import compile_source
from repro.tvm.vm import TVM


def run_sim_workload(telemetry, tasks=6, limit=300):
    simulation = Simulation(seed=3, telemetry=telemetry)
    for config in make_pool({"desktop": 2}, seed=3):
        simulation.add_provider(config)
    consumer = simulation.add_consumer()
    futures = consumer.library.map(kernels.PRIME_COUNT, [[limit]] * tasks)
    simulation.run(max_time=1e5)
    assert all(future.done and future.wait(0).ok for future in futures)


def interleaved_best_of(first, second, rounds=5):
    """Best wall time of each callable, alternating to average out drift."""
    best_first = best_second = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        first()
        best_first = min(best_first, time.perf_counter() - start)
        start = time.perf_counter()
        second()
        best_second = min(best_second, time.perf_counter() - start)
    return best_first, best_second


def test_disabled_telemetry_within_noise_of_enabled():
    """The disabled guards must cost less than full instrumentation."""
    # Warm both paths (imports, program cache, code objects).
    run_sim_workload(None)
    run_sim_workload(Telemetry())
    disabled, enabled = interleaved_best_of(
        lambda: run_sim_workload(None),
        lambda: run_sim_workload(Telemetry()),
    )
    assert disabled <= enabled * 1.05, (
        f"telemetry-disabled run ({disabled * 1e3:.1f}ms) slower than "
        f"enabled run ({enabled * 1e3:.1f}ms) beyond 5% noise"
    )


def run_workflow_workload(telemetry, width=3, depth=2, work=120):
    """A small DAG through the full stack — the workflow tracing path."""
    from repro.dag.patterns import stencil

    simulation = Simulation(seed=3, telemetry=telemetry)
    for config in make_pool({"desktop": 2}, seed=3):
        simulation.add_provider(config)
    consumer = simulation.add_consumer()
    handle = consumer.submit_workflow(stencil(width, depth, work=work))
    simulation.run(max_time=1e5)
    assert handle.result(0)


def test_workflow_tracing_disabled_within_noise_of_enabled():
    """Workflow tracing (wf.node spans, trace propagation through the
    DAG release path and forwarding hooks) must keep the tracing-off run
    at least as fast as the fully traced one, within 5% noise."""
    run_workflow_workload(None)
    run_workflow_workload(Telemetry())  # warm both paths
    disabled, enabled = interleaved_best_of(
        lambda: run_workflow_workload(None),
        lambda: run_workflow_workload(Telemetry()),
    )
    assert disabled <= enabled * 1.05, (
        f"tracing-disabled workflow run ({disabled * 1e3:.1f}ms) slower "
        f"than traced run ({enabled * 1e3:.1f}ms) beyond 5% noise"
    )


def test_vm_unprofiled_within_noise_of_profiled():
    """The per-instruction ``profile`` guard must be cheaper than profiling."""
    program = compile_source(kernels.PRIME_COUNT)

    def run(profile):
        machine = TVM(program, verify=False, profile=profile)
        machine.run("main", [1500])
        return machine.stats.instructions

    run(False), run(True)  # warm
    unprofiled, profiled = interleaved_best_of(
        lambda: run(False), lambda: run(True), rounds=7
    )
    assert unprofiled <= profiled * 1.05, (
        f"unprofiled dispatch ({unprofiled * 1e3:.2f}ms) slower than "
        f"profiled ({profiled * 1e3:.2f}ms) beyond 5% noise"
    )


def test_event_emission_disabled_guard_is_free():
    """Per-event emission reduces to one ``is not None`` test when off.

    The cores guard every flight-recorder emission with the same check;
    this measures that guard against real ring appends.
    """
    from repro.obs.events import FlightRecorder

    def spin(events, n=100_000):
        total = 0
        for i in range(n):
            if events is not None:
                events.record("placement", node="p1", ts=float(i))
            total += i
        return total

    spin(None), spin(FlightRecorder())  # warm
    disabled, enabled = interleaved_best_of(
        lambda: spin(None), lambda: spin(FlightRecorder())
    )
    assert disabled <= enabled * 1.05, (
        f"event-emission-disabled loop ({disabled * 1e3:.2f}ms) slower "
        f"than recording loop ({enabled * 1e3:.2f}ms) beyond 5% noise"
    )


def test_sim_workload_telemetry_disabled(benchmark):
    benchmark.pedantic(lambda: run_sim_workload(None), rounds=3, iterations=1)


def test_sim_workload_telemetry_enabled(benchmark):
    benchmark.pedantic(
        lambda: run_sim_workload(Telemetry()), rounds=3, iterations=1
    )
