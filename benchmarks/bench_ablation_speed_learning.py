"""A1 — EWMA speed learning ablation.

Regenerates experiment A1 from DESIGN.md §3 and asserts its
reconstructed shape claims.  See repro/bench/experiments/exp_a1_misreport.py
for the experiment definition and EXPERIMENTS.md for recorded results.
"""

from repro.bench.experiments import exp_a1_misreport


def test_a1_misreport(run_experiment):
    experiment = run_experiment(exp_a1_misreport)
    assert experiment.experiment_id == "A1"
