"""A2 — result voting ablation.

Regenerates experiment A2 from DESIGN.md §3 and asserts its
reconstructed shape claims.  See repro/bench/experiments/exp_a2_voting.py
for the experiment definition and EXPERIMENTS.md for recorded results.
"""

from repro.bench.experiments import exp_a2_voting


def test_a2_voting(run_experiment):
    experiment = run_experiment(exp_a2_voting)
    assert experiment.experiment_id == "A2"
