"""F8 — real-transport wall-clock scaling.

Regenerates experiment F8 from DESIGN.md §3 and asserts its
reconstructed shape claims.  See repro/bench/experiments/exp_f8_tcp.py
for the experiment definition and EXPERIMENTS.md for recorded results.
"""

from repro.bench.experiments import exp_f8_tcp


def test_f8_tcp(run_experiment):
    experiment = run_experiment(exp_f8_tcp)
    assert experiment.experiment_id == "F8"
